"""The instruction interpreter, shared by both ISAs.

Semantics are defined over the architecture-neutral mnemonics (see
``repro.isa.isa``); the per-ISA differences (encodings, call/return
convention, push/pop vs ldp/stp availability) were resolved either at
decode time or via the ABI descriptor.

Decoded instructions are cached per process keyed by pc; the cache is
versioned so privileged code writes (``write_code``) invalidate it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import DecodingError, KernelError, SegmentationFault
from ..isa.isa import Instruction
from .cpu import ThreadContext, ThreadStatus, to_i64, to_u64

if TYPE_CHECKING:
    from .kernel import Machine, Process

_MAX_INSTR_LEN = 10

#: (isa name, pc, raw bytes) -> decoded Instruction, shared by every
#: process. Content-addressed, so live-update rewrites are naturally
#: correct (changed bytes are a different key), and each binary's
#: instructions decode once per interpreter lifetime rather than once
#: per process — re-spawns and CRIU restores skip the decoder entirely.
#: Decoded Instructions are immutable after decode, which is what makes
#: sharing them across processes (and baking them into superblocks,
#: see ``repro.vm.blocks``) safe.
_GLOBAL_DECODE: dict = {}


class CpuFault(KernelError):
    """Raised when a thread performs an illegal operation; kills the process."""

    def __init__(self, thread: ThreadContext, message: str):
        super().__init__(f"thread {thread.tid} @pc={thread.pc:#x}: {message}")
        self.thread = thread


def fetch_decode(process: "Process", pc: int) -> Instruction:
    cached = process.decode_cache.get(pc)
    if cached is not None and cached[0] == process.code_version:
        return cached[1]
    window = process.aspace.fetch(pc, _MAX_INSTR_LEN)
    key = (process.isa.name, pc, window)
    instr = _GLOBAL_DECODE.get(key)
    if instr is None:
        instr = process.isa.decode(window, 0, pc)
        _GLOBAL_DECODE[key] = instr
    process.decode_cache[pc] = (process.code_version, instr)
    return instr


def step(machine: "Machine", process: "Process",
         thread: ThreadContext) -> None:
    """Execute exactly one instruction on ``thread``."""
    try:
        instr = fetch_decode(process, thread.pc)
        _execute(machine, process, thread, instr)
    except SegmentationFault as exc:
        raise CpuFault(thread, str(exc)) from exc
    except DecodingError as exc:
        # SIGILL: undecodable bytes at the program counter.
        raise CpuFault(thread, f"illegal instruction: {exc}") from exc
    thread.instr_count += 1
    process.instr_total += 1
    process.cycle_total += process.isa.cost(instr)


def _execute(machine: "Machine", process: "Process", thread: ThreadContext,
             instr: Instruction) -> None:
    op = instr.op
    regs = thread.regs
    aspace = process.aspace
    next_pc = thread.pc + instr.size

    if op == "nop":
        pass
    elif op == "mov":
        regs[instr.rd] = regs[instr.rn]
    elif op in ("movi", "movi_full"):
        regs[instr.rd] = to_i64(instr.imm)
    elif op == "movz":
        regs[instr.rd] = to_i64(instr.imm & 0xFFFF)
    elif op == "movk1":
        regs[instr.rd] = to_i64((to_u64(regs[instr.rd]) & ~(0xFFFF << 16))
                                | ((instr.imm & 0xFFFF) << 16))
    elif op == "movk2":
        regs[instr.rd] = to_i64((to_u64(regs[instr.rd]) & ~(0xFFFF << 32))
                                | ((instr.imm & 0xFFFF) << 32))
    elif op == "movk3":
        regs[instr.rd] = to_i64((to_u64(regs[instr.rd]) & ~(0xFFFF << 48))
                                | ((instr.imm & 0xFFFF) << 48))
    elif op == "load":
        addr = to_u64(regs[instr.rn] + (instr.imm or 0))
        regs[instr.rd] = to_i64(aspace.read_u64(addr))
    elif op == "store":
        addr = to_u64(regs[instr.rn] + (instr.imm or 0))
        aspace.write_u64(addr, to_u64(regs[instr.rd]))
    elif op == "ldp":
        base = thread.fp
        regs[instr.rd] = to_i64(aspace.read_u64(to_u64(base + instr.imm)))
        regs[instr.rm] = to_i64(aspace.read_u64(to_u64(base + instr.imm + 8)))
    elif op == "stp":
        base = thread.fp
        aspace.write_u64(to_u64(base + instr.imm), to_u64(regs[instr.rd]))
        aspace.write_u64(to_u64(base + instr.imm + 8), to_u64(regs[instr.rm]))
    elif op == "lea":
        regs[instr.rd] = to_i64(regs[instr.rn] + (instr.imm or 0))
    elif op == "push":
        thread.sp = thread.sp - 8
        aspace.write_u64(to_u64(thread.sp), to_u64(regs[instr.rd]))
    elif op == "pop":
        value = aspace.read_u64(to_u64(thread.sp))
        sp_index = process.isa.reg(process.isa.abi.stack_pointer)
        regs[instr.rd] = to_i64(value)
        # pop sp itself would be odd; ordinary pops must bump sp after.
        if instr.rd != sp_index:
            thread.sp = thread.sp + 8
    elif op in _BINOPS:
        regs[instr.rd] = _BINOPS[op](thread, regs[instr.rn], regs[instr.rm])
    elif op == "addi":
        regs[instr.rd] = to_i64(regs[instr.rn] + (instr.imm or 0))
    elif op == "cmp":
        thread.flags = _sign(regs[instr.rn] - regs[instr.rm])
    elif op == "cmpi":
        thread.flags = _sign(regs[instr.rn] - (instr.imm or 0))
    elif op == "b":
        next_pc = instr.target
    elif op == "bcc":
        if _cond_holds(instr.cond, thread.flags):
            next_pc = instr.target
    elif op == "call":
        if process.isa.abi.link_register is None:
            thread.sp = thread.sp - 8
            aspace.write_u64(to_u64(thread.sp), next_pc)
        else:
            thread.set(process.isa.abi.link_register, next_pc)
        next_pc = instr.target
    elif op == "ret":
        if process.isa.abi.link_register is None:
            next_pc = aspace.read_u64(to_u64(thread.sp))
            thread.sp = thread.sp + 8
        else:
            next_pc = to_u64(thread.get(process.isa.abi.link_register))
    elif op == "syscall":
        number = thread.get(process.isa.abi.syscall_number_reg)
        args = [thread.get(r) for r in process.isa.abi.syscall_arg_regs]
        result = machine.dispatch_syscall(process, thread, number, args)
        if result is not None:
            thread.set(process.isa.abi.return_reg, result)
    elif op == "trap":
        # int3 / brk: the thread stops with SIGTRAP. Like x86 int3, the
        # saved pc points *after* the trap instruction, so a subsequent
        # resume (or a CRIU restore of the unmodified image) continues at
        # the equivalence point.
        thread.status = ThreadStatus.TRAPPED
        thread.trap_pc = next_pc
        machine.on_trap(process, thread)
    elif op == "tlsload":
        addr = to_u64(thread.tp + (instr.imm or 0))
        regs[instr.rd] = to_i64(aspace.read_u64(addr))
    elif op == "tlsstore":
        addr = to_u64(thread.tp + (instr.imm or 0))
        aspace.write_u64(addr, to_u64(regs[instr.rd]))
    elif op == ".byte":
        raise CpuFault(thread, f"illegal instruction byte {instr.imm:#x}")
    else:
        raise CpuFault(thread, f"unimplemented op {op!r}")

    thread.pc = next_pc


def _sign(value: int) -> int:
    return (value > 0) - (value < 0)


def _cond_holds(cond: str, flags: int) -> bool:
    if cond == "eq":
        return flags == 0
    if cond == "ne":
        return flags != 0
    if cond == "lt":
        return flags < 0
    if cond == "le":
        return flags <= 0
    if cond == "gt":
        return flags > 0
    if cond == "ge":
        return flags >= 0
    raise KernelError(f"bad condition {cond!r}")


def _div(thread: ThreadContext, a: int, b: int) -> int:
    if b == 0:
        raise CpuFault(thread, "integer division by zero")
    # C-style truncation toward zero.
    q = abs(a) // abs(b)
    return to_i64(-q if (a < 0) != (b < 0) else q)


def _rem(thread: ThreadContext, a: int, b: int) -> int:
    if b == 0:
        raise CpuFault(thread, "integer remainder by zero")
    r = abs(a) % abs(b)
    return to_i64(-r if a < 0 else r)


_BINOPS = {
    "add": lambda t, a, b: to_i64(a + b),
    "sub": lambda t, a, b: to_i64(a - b),
    "mul": lambda t, a, b: to_i64(a * b),
    "sdiv": _div,
    "srem": _rem,
    "and": lambda t, a, b: to_i64(to_u64(a) & to_u64(b)),
    "orr": lambda t, a, b: to_i64(to_u64(a) | to_u64(b)),
    "eor": lambda t, a, b: to_i64(to_u64(a) ^ to_u64(b)),
    "lsl": lambda t, a, b: to_i64(to_u64(a) << (b & 63)),
    "lsr": lambda t, a, b: to_i64(to_u64(a) >> (b & 63)),
}
