"""The superblock execution engine: predecoded trace dispatch.

The per-instruction ``interp.step`` path pays, on every instruction, for
a decode-cache probe, a ~30-arm mnemonic dispatch chain, named-register
ABI lookups, and allocating word-sized memory accesses. This module
removes all of that from the hot path: a *superblock* (a straight-line
trace that extends through unconditional branches, calls, and the
fall-through edge of conditional branches) is decoded **once** into a
cached :class:`Block`, and a block that proves hot is *specialized* —
:func:`codegen` emits one Python function whose body is the
concatenation of every op with operand indices, immediates, and the u64
memory fast path (a per-site last-page cache indexing straight into the
page store) baked in. A ``bcc`` inside the trace becomes a *side exit*: taken, the
generated function sets ``pc``, accounts the executed prefix, and
returns; not taken, execution falls through with zero dispatch. Every
generated function returns the number of instructions it executed.
Cold blocks execute on ``interp.step`` (tier 0), which keeps the
semantics reference in exactly one place and keeps run-once startup
code off the specializer.

Correctness invariants (each one is load-bearing):

* **Identical architectural semantics.** Generated code reproduces the
  corresponding ``interp._execute`` arm bit-for-bit, including signed
  64-bit wrapping and fault behaviour; instruction/cycle accounting is
  batched but arithmetically identical (side exits account their exact
  prefix), and a faulting instruction is never counted, just as in
  ``interp.step``. Tier 0 *is* the per-step engine, so it is correct by
  construction.
* **Block boundaries.** A trace never contains ``syscall``, ``trap``,
  or undecodable bytes — those always fall back to ``interp.step`` so
  kernel entry and parking semantics live in exactly one place.
  Because ``trap`` always terminates a trace, a thread parking at an
  equivalence point stops with ``pc`` exactly at the eqpoint — the
  Dapper runtime's stackmap verification is unchanged.
* **Scheduling determinism.** A block never executes past the caller's
  remaining quantum: each generated block also has a *partial* variant
  that executes at most the first ``m`` ops, leaving ``pc`` mid-trace
  (the next quantum compiles a block from there). Round-robin
  interleaving is therefore instruction-for-instruction identical to
  the per-step engine — the cross-ISA migration tests rely on that.
* **Invalidation.** The cache is keyed by pc and versioned by
  ``Process.code_version``; ``Process.invalidate_code`` (hooked to every
  privileged ``write_code``) bumps the version and drops all blocks, so
  stack-shuffle and live-update code rewrites can never execute stale
  superblocks.

Generated closures capture ``aspace``/``aspace._pages`` — safe because
``Process.aspace`` is never rebound, and because the live kernel only
ever *adds* VMAs during a process lifetime (there is no munmap or
mprotect syscall), a page a memory site has cached can never become
unmapped or change protection behind it. Rewrites (stack shuffle, live
update) go through restore-into-a-new-Process, which starts with empty
caches.
"""

from __future__ import annotations

import hashlib
import struct
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, List, Optional

from ..errors import SegmentationFault
from ..isa.isa import Instruction
from ..mem.paging import LAST_U64_SLOT, PAGE_MASK
from .cpu import ThreadContext, ThreadStatus, to_i64
from . import interp
from .interp import CpuFault

if TYPE_CHECKING:
    from .kernel import Machine, Process

#: Upper bound on predecoded ops per trace. Long traces are split; the
#: tail compiles as its own block on first execution. Kept at half the
#: scheduler quantum (64) so a typical trace executes whole on the
#: one-call specialized path rather than the partial variant.
MAX_BLOCK_INSTRS = 32

#: Full executions of a block before it is specialized by
#: :func:`codegen`. Low enough that every loop tiers up almost
#: immediately; high enough that cold startup/exit code never pays the
#: ``compile()`` cost. Tests may set this to 0 to force every block
#: through the generated tier; steady-state benchmarks lower it to
#: shorten warmup.
HOT_THRESHOLD = 4

_U64M = 0xFFFFFFFFFFFFFFFF
_TWO64 = 1 << 64
_U64S = struct.Struct("<Q")
_PAGE_MASK = PAGE_MASK
_LAST_SLOT = LAST_U64_SLOT

#: Handler signature: ``handler(thread, regs) -> instructions executed``.
Handler = Callable[[ThreadContext, List[int]], int]

#: Body mnemonics :func:`codegen` has a template for. Everything the
#: decoders can produce except the kernel-entry terminators — an op
#: outside this set ends the trace and executes via ``interp.step``.
CODEGEN_OPS = frozenset((
    "nop", "mov", "movi", "movi_full", "movz", "movk1", "movk2", "movk3",
    "load", "store", "ldp", "stp", "lea", "addi", "push", "pop",
    "cmp", "cmpi", "tlsload", "tlsstore",
    "add", "sub", "mul", "sdiv", "srem", "and", "orr", "eor",
    "lsl", "lsr",
))


class Block:
    """One predecoded superblock (trace) starting at ``pc``.

    ``instrs`` holds the decoded ops along the trace — including the
    ``b``/``call`` ops it was extended through and the ``bcc`` side
    exits it falls through; ``pcs[i]`` is the address of op ``i``
    (``pcs[len]`` is the successor address of the whole trace);
    ``cost_prefix[i]`` is the summed cycle cost of the first ``i``
    ops. ``term_instr`` is a trailing ``ret`` or backward ``b``/``bcc``
    when the trace ends in one (the loop-closing and dynamic-successor
    terminators codegen specializes), else None and whatever follows
    the trace executes
    via ``interp.step``. ``full`` is the maximum number of
    instructions one execution of the trace can retire.
    """

    __slots__ = ("pc", "version", "pcs", "cost_prefix", "body_len",
                 "full", "instrs", "term_instr", "term_cost",
                 "fn", "pfn", "heat", "chain", "chain_m", "chain_heat",
                 "chain_epoch", "chain_key", "chain_web", "succ_pcs",
                 "demoted")

    def __init__(self, pc: int, version: int, instrs: List[Instruction],
                 pcs: List[int], cost_prefix: List[int],
                 term_instr: Optional[Instruction], term_cost: int):
        self.pc = pc
        self.version = version
        self.instrs = instrs
        self.pcs = pcs
        self.cost_prefix = cost_prefix
        self.body_len = len(instrs)
        self.full = self.body_len + (1 if term_instr is not None else 0)
        self.term_instr = term_instr
        self.term_cost = term_cost
        self.fn: Optional[Handler] = None  # specialized: whole trace
        self.pfn = None                    # specialized: first <= m ops
        self.heat = 0                      # tier-0 executions so far
        self.chain = None                  # tier-3 chain (or NO_CHAIN)
        self.chain_m = None                # (run, metered label) pair
        self.chain_heat = 0                # tier-2 dispatches so far
        self.chain_epoch = -1              # process.hot_epoch at build
        self.chain_key = None              # memoized factory-cache key
        self.chain_web = None              # pcs the chain was built over
        self.succ_pcs = None               # memoized static successors
        self.demoted = False               # codegen refused: tier 0 only

    def __repr__(self) -> str:
        return (f"<Block @{self.pc:#x} v{self.version} "
                f"body={self.body_len} term={self.term_instr is not None}>")


# -- driving a thread ----------------------------------------------------------


def run_thread(machine: "Machine", process: "Process",
               thread: ThreadContext, quantum: int) -> int:
    """Execute up to ``quantum`` instructions on ``thread`` via cached
    superblocks; returns the number executed. Drop-in replacement for
    the per-instruction loop in ``Machine._run_thread``.

    Specialized traces contain no kernel entry (no syscall/trap), so
    they cannot change thread status, stop or exit the process, or
    invalidate code — status and version are re-checked only around
    tier-0 stepping, which is where those transitions can happen. The
    scheduler-visible behaviour is identical to checking before every
    instruction, as the per-step engine does.
    """
    running = ThreadStatus.RUNNING
    if (thread.status != running or process.stopped or process.exited):
        return 0
    count = 0
    cache = process.block_cache
    step = interp.step
    regs = thread.regs
    version = process.code_version
    chains_on = machine.chain_engine
    no_chain = chains.NO_CHAIN
    eget = process.chain_entries.get
    cget = cache.get
    while count < quantum:
        pc = thread.pc
        if chains_on:
            # A pc inside a chained trace (a quantum boundary parked
            # there last slice) resumes through the chain's metered
            # arm — never by decoding a duplicate trace one phase
            # over. Entries are cleared with the block cache, so a
            # hit is always current.
            ce = eget(pc)
            if ce is not None:
                run, lab, k = ce
                count += run(thread, regs, quantum - count, lab, k)
                continue
        block = cget(pc)
        if block is None or block.version != version:
            block = compile_block(process, pc)
            cache[pc] = block
        fn = block.fn
        if fn is None and not block.demoted:
            heat = block.heat
            if heat >= HOT_THRESHOLD:
                fn = block.fn = codegen(process, block)
                if fn is None:             # shape codegen can't express:
                    block.demoted = True   # stay on tier 0 for good
                else:
                    process.hot_epoch += 1
            elif heat == 0:
                # First dispatch: if this trace shape was already
                # specialized anywhere (another process, an earlier
                # run), binding the cached factory is nearly free —
                # tier up immediately instead of re-warming.
                block.heat = 1
                fn = codegen(process, block, bind_only=True)
                if fn is not None:
                    block.fn = fn
                    process.hot_epoch += 1
            else:
                block.heat = heat + 1
        remaining = quantum - count
        if fn is not None:
            if block.full <= remaining:
                # Tier 3: a block that keeps coming back hot gets linked
                # with its hot compiled successors into one chain
                # function that transfers control internally (including
                # loop back-edges) and only returns at a quantum
                # boundary, an unlinked exit, or a fault. A chain (or a
                # no-linkable-successor verdict) is stamped with the
                # hot epoch it was formed at; tier-up of any block
                # bumps the epoch, so webs frozen while their
                # neighbours were still warming get relinked instead
                # of permanently exiting at once-cold edges.
                if chains_on:
                    chain = block.chain
                    if (chain is not None
                            and block.chain_epoch == process.hot_epoch):
                        if chain is not no_chain:
                            count += chain(thread, regs, remaining)
                            continue
                    else:
                        ch = block.chain_heat + 1
                        block.chain_heat = ch
                        if (chain is not None
                                or ch >= chains.CHAIN_THRESHOLD):
                            block.chain_epoch = process.hot_epoch
                            chain = block.chain = chains.build_chain(
                                process, block, cache)
                            if chain is not no_chain:
                                count += chain(thread, regs, remaining)
                                continue
                # One call runs the trace — side exits and accounting
                # included — and returns how many instructions retired;
                # faults arrive as CpuFault with pc and counters
                # already positioned at the faulting op.
                count += fn(thread, regs)
                continue
            # The quantum may end inside this trace. A chained block
            # finishes the quantum through its metered arm (which
            # parks pc mid-trace at exactly `remaining` retired);
            # otherwise the tier-2 partial variant does the same.
            if chains_on:
                chain = block.chain
                if (chain is not None and chain is not no_chain
                        and block.chain_epoch == process.hot_epoch):
                    run, lab = block.chain_m
                    count += run(thread, regs, remaining, lab)
                    continue
            pfn = block.pfn
            if pfn is None:
                pfn = block.pfn = codegen(process, block, partial=True)
            count += pfn(thread, regs, remaining)
            continue
        # Tier 0 is literally the per-step engine, per-instruction
        # status checks included — a side exit taken mid-trace may land
        # on a syscall or trap, so every transition must be observed.
        k = block.full or 1
        if k > remaining:
            k = remaining
        while k > 0:
            step(machine, process, thread)
            count += 1
            k -= 1
            if (thread.status != running or process.stopped
                    or process.exited):
                return count
        version = process.code_version
    return count


# -- block compilation ---------------------------------------------------------

#: Upper bound on shared decoded traces. The cache spans every process
#: and binary the interpreter ever runs, so without a cap a long-lived
#: cluster simulation (many re-spawns, many rewritten binaries) grows
#: it without limit; LRU keeps the working set of live binaries and
#: ages out traces of dead code versions.
GLOBAL_TRACES_CAP = 4096

#: (exec-page content hash, pc) -> decoded trace metadata, shared by
#: every process running byte-identical code. Decoded traces are
#: treated as immutable, so re-spawns of the same binary skip the
#: whole decode pass. Ordered, LRU-evicted at GLOBAL_TRACES_CAP.
_GLOBAL_TRACES: OrderedDict = OrderedDict()

_trace_stats = {"hits": 0, "misses": 0, "evictions": 0}


def trace_cache_info() -> dict:
    """Shared-trace-cache statistics, exposed for benchmarks and tests."""
    info = dict(_trace_stats)
    info["size"] = len(_GLOBAL_TRACES)
    info["cap"] = GLOBAL_TRACES_CAP
    return info


def _content_key(process: "Process") -> Optional[bytes]:
    """Content hash of the process's executable pages, or None when
    sharing decoded traces would be unsafe: after any code rewrite
    (``code_version`` moved) or under lazy post-copy restore (exec
    pages may not all be resident yet, so their hash is not a complete
    description of the code).
    """
    if (process.code_version != 0
            or process.aspace.missing_page_hook is not None):
        return None
    key = process.trace_content_key
    if key is None:
        digest = hashlib.blake2b(process.isa.name.encode(), digest_size=16)
        aspace = process.aspace
        for vma in aspace.vmas:
            if not vma.executable:
                continue
            digest.update(b"%x:%x" % (vma.start, vma.end))
            for base in range(vma.start, vma.end, _PAGE_MASK + 1):
                store = aspace._pages.get(base)
                if store is not None:
                    digest.update(b"%x" % base)
                    digest.update(store)
        key = process.trace_content_key = digest.digest()
    return key


def compile_block(process: "Process", pc: int) -> Block:
    """Decode the superblock trace starting at ``pc`` (no
    specialization yet).

    Beyond the straight-line run, the trace is extended through every
    control transfer with a static successor: an unconditional ``b``
    adds no work at all (the successor pc is baked into ``pcs``), a
    ``call`` contributes just its return-address write with decoding
    continuing at the callee's entry, and a *forward* ``bcc`` becomes
    a side exit with decoding continuing on the fall-through edge.
    ``ret`` and *backward* ``bcc`` (predicted-taken loop back-edges)
    have dynamic successors and end the trace (specialized as its
    terminator); ``trap``/``syscall``/undecodable bytes end it and
    stay on the ``interp.step`` path.
    """
    ck = _content_key(process)
    if ck is None:
        return Block(pc, process.code_version, *_decode_trace(process, pc))
    meta = _GLOBAL_TRACES.get((ck, pc))
    if meta is None:
        _trace_stats["misses"] += 1
        meta = _decode_trace(process, pc)
        _GLOBAL_TRACES[(ck, pc)] = meta
        if len(_GLOBAL_TRACES) > GLOBAL_TRACES_CAP:
            _GLOBAL_TRACES.popitem(last=False)
            _trace_stats["evictions"] += 1
    else:
        _trace_stats["hits"] += 1
        _GLOBAL_TRACES.move_to_end((ck, pc))
    return Block(pc, process.code_version, *meta)


def _decode_trace(process: "Process", pc: int) -> tuple:
    """The decode pass behind :func:`compile_block`; returns
    ``(instrs, pcs, cost_prefix, term_instr, term_cost)``.
    """
    isa = process.isa

    def fetch(addr: int) -> Instruction:
        return interp.fetch_decode(process, addr)

    instrs: List[Instruction] = []
    pcs = [pc]
    cost_prefix = [0]
    cursor = pc
    total_cost = 0
    term_instr = None
    term_cost = 0
    complete = True
    while complete and len(instrs) < MAX_BLOCK_INSTRS:
        run = isa.decode_straight_line(fetch, cursor,
                                       MAX_BLOCK_INSTRS - len(instrs))
        for instr in run:
            if instr.op not in CODEGEN_OPS:
                # Unknown non-terminator op: end the trace here and let
                # interp.step raise its "unimplemented op" fault.
                complete = False
                break
            instrs.append(instr)
            cursor += instr.size
            total_cost += isa.cost(instr)
            pcs.append(cursor)
            cost_prefix.append(total_cost)
        if not complete or len(instrs) >= MAX_BLOCK_INSTRS:
            break
        try:
            term = fetch(cursor)
        except Exception:
            break                          # step() reports the real fault
        op = term.op
        if op == "ret":
            term_instr = term
            term_cost = isa.cost(term)
            break
        if op not in ("b", "call", "bcc"):
            break                          # trap / syscall / .byte
        if op == "b" and term.target <= cursor:
            # Backward unconditional branch: a loop back-edge. Inlining
            # it would wrap the trace around the loop, so consecutive
            # traces tile the loop at stride MAX_BLOCK_INSTRS and spiral
            # through every offset of the body — no canonical tiling,
            # one near-duplicate trace per offset. Ending the trace here
            # instead makes the loop tile exactly once from its head,
            # which is what lets the chain layer treat the back-edge as
            # a loop-closing jump.
            term_instr = term
            term_cost = isa.cost(term)
            break
        if op == "bcc":
            if term.cond not in _COND_SYMS:
                break                      # bad condition: fault via step
            if term.target <= cursor:
                # Backward branch: statically predicted taken (a loop
                # back-edge). Extending past it would inflate the trace
                # with code that rarely runs, so it ends the trace as a
                # specialized two-way terminator instead — the hot loop
                # body becomes exactly one trace, re-dispatched at the
                # loop head every iteration.
                term_instr = term
                term_cost = isa.cost(term)
                break
        # Extend the trace: b/call continue at the static target; a
        # forward bcc (statically predicted not taken) continues on the
        # fall-through edge, with taken becoming a side exit.
        instrs.append(term)
        total_cost += isa.cost(term)
        cursor = cursor + term.size if op == "bcc" else term.target
        pcs.append(cursor)
        cost_prefix.append(total_cost)

    return instrs, pcs, cost_prefix, term_instr, term_cost


# -- specialization: whole-trace code generation -------------------------------
#
# A hot block is specialized into ONE Python function whose body is the
# straight-line concatenation of every op, with operand indices and
# immediates baked in as literals and the u64 memory fast path (a
# per-site last-page cache, direct page-store indexing) expanded
# inline — the generated code makes zero Python calls on the
# all-fast-path execution of an ALU-only trace, and one ``unpack_from``
# per memory access that hits its site's cached page. Fault behaviour is identical to interp.step: ``i``
# tracks the op index at every potentially-faulting call site, the
# ``except SegmentationFault`` epilogue accounts the completed prefix
# and positions ``thread.pc`` at the faulting op before wrapping into
# CpuFault; division by zero accounts and raises inline.

_BINOP_SYMS = {"add": "+", "sub": "-", "mul": "*",
               "and": "&", "orr": "|", "eor": "^"}
_COND_SYMS = {"eq": "==", "ne": "!=", "lt": "<",
              "le": "<=", "gt": ">", "ge": ">="}
_MOVK_SHIFTS = {"movk1": 16, "movk2": 32, "movk3": 48}

#: Generated source -> compiled code object. ``compile()`` dominates
#: specialization cost (~1ms per block); identical trace shapes recur
#: across processes running the same binary (every re-spawn, every
#: benchmark iteration, every restore-after-rewrite), and the source
#: string is a complete description of the specialization, so it is
#: the cache key.
_CODE_CACHE: dict = {}

#: Trace shape -> the exec'd ``_make`` factory, so a recurring shape
#: skips source generation *and* exec and only pays the per-process
#: closure binding. Keyed by content (never object identity).
_FACTORY_CACHE: dict = {}

_NO_FACTORY = object()                     # cached "shape unsupported"


def _factory_key(isa_name: str, block: Block, partial: bool) -> tuple:
    term = block.term_instr
    return (isa_name, partial, tuple(block.pcs),
            tuple((i.op, i.rd, i.rn, i.rm, i.imm, i.cond, i.target)
                  for i in block.instrs),
            None if term is None else
            (term.op, term.cond, term.target, term.size),
            block.term_cost)


def codegen(process: "Process", block: Block, partial: bool = False,
            bind_only: bool = False) -> Optional[Handler]:
    """Emit the specialized function for ``block``; None if some op has
    no template (the block then stays on tier 0 forever).

    With ``partial=True`` the generated function takes an extra ``m``
    and executes at most the first ``m`` ops — an inline ``if m == k:
    account; return k`` is threaded between ops, which is what lets a
    quantum boundary land mid-trace without falling off the generated
    tier. The ``ret`` terminator is never part of a partial run.

    With ``bind_only=True``, only bind an already-cached factory (a
    cheap closure call); return None rather than generate anything new.
    """
    aspace = process.aspace
    key = _factory_key(process.isa.name, block, partial)
    factory = _FACTORY_CACHE.get(key)
    if factory is not None:
        if factory is _NO_FACTORY:
            return None
        return factory(process, aspace, aspace._pages, aspace.read_u64,
                       aspace.write_u64, aspace.page, _U64S.pack_into,
                       _U64S.unpack_from, tuple(block.pcs),
                       tuple(block.cost_prefix), CpuFault,
                       SegmentationFault)
    if bind_only:
        return None
    isa = process.isa
    abi = isa.abi
    sp = isa.reg(abi.stack_pointer)
    fp = isa.reg(abi.frame_pointer)
    lr = (isa.reg(abi.link_register)
          if abi.link_register is not None else None)
    pcs = block.pcs
    cp = block.cost_prefix
    n = block.body_len
    body: List[str] = []
    hots: List[str] = []

    def site() -> tuple:
        # Each memory site caches the last page it touched as a
        # (page base, page store) pair in two closure cells. The page
        # store for a base is only ever mutated in place once it
        # exists (install_page/drop_page only run while building a
        # restore aspace, before any code executes, and there is no
        # mprotect or munmap), so a hit needs no VMA or protection
        # re-check: the slow path performed the full check the first
        # time this site touched the page, and the same site always
        # performs the same kind of access.
        pair = (f"p{len(hots) // 2}", f"s{len(hots) // 2}")
        hots.extend(pair)
        return pair

    def read(k: int, addr: str, dest: str) -> None:
        p, s = site()
        body.extend([
            f"a = {addr}",
            f"o = a & {_PAGE_MASK}",
            f"if a - o == {p} and o <= {_LAST_SLOT}:",
            f"    v = UPK({s}, o)[0]",
            "else:",
            f"    i = {k}",
            "    v = RU(a)",
            "    q = PAGES_GET(a - o)",
            "    if q is not None:",
            f"        {p} = a - o",
            f"        {s} = q",
            f"{dest} = v - {_TWO64} if v >> 63 else v",
        ])

    def write(k: int, addr: str, value: str) -> None:
        p, s = site()
        body.extend([
            f"a = {addr}",
            f"o = a & {_PAGE_MASK}",
            f"if a - o == {p} and o <= {_LAST_SLOT}:",
            f"    PK({s}, o, ({value}) & {_U64M})",
            "else:",
            f"    i = {k}",
            f"    WU(a, {value})",
            "    q = PAGES_GET(a - o)",
            "    if q is not None:",
            f"        {p} = a - o",
            f"        {s} = q",
        ])

    def account(indent: str, instrs_done: int, cycles_done: int) -> None:
        body.extend([
            f"{indent}thread.instr_count += {instrs_done}",
            f"{indent}process.instr_total += {instrs_done}",
            f"{indent}process.cycle_total += {cycles_done}",
        ])

    def wrap_assign(dest: str, expr: str) -> None:
        body.append(f"v = {expr}")
        body.append(f"{dest} = v - {_TWO64} if v >> 63 else v")

    def emit_call(k: int, instr: Instruction) -> None:
        return_to = pcs[k] + instr.size
        if lr is None:                     # x86: push the return address
            body.append(f"a2 = (regs[{sp}] - 8) & {_U64M}")
            body.append(f"regs[{sp}] = a2 - {_TWO64} if a2 >> 63 else a2")
            write(k, "a2", str(return_to))
        else:                              # arm: link register
            body.append(f"regs[{lr}] = {to_i64(return_to)}")

    def fail() -> None:
        _FACTORY_CACHE[key] = _NO_FACTORY
        return None

    for k, instr in enumerate(block.instrs):
        if partial and k:
            # The quantum boundary may land here: account the executed
            # prefix and stop with pc at the next op (never past m).
            body.append(f"if m == {k}:")
            account("    ", k, cp[k])
            body.append(f"    thread.pc = {pcs[k]}")
            body.append(f"    return {k}")
        op = instr.op
        rd, rn, rm = instr.rd, instr.rn, instr.rm
        imm = instr.imm if instr.imm is not None else 0
        if op in ("nop", "b"):             # extension b: pc baked in pcs
            continue
        elif op == "bcc":
            # Side exit: taken, the trace ends here — account the exact
            # prefix (this bcc included) and return its pc and count.
            sym = _COND_SYMS[instr.cond]
            body.append(f"if thread.flags {sym} 0:")
            body.append(f"    thread.pc = {instr.target}")
            account("    ", k + 1, cp[k + 1])
            body.append(f"    return {k + 1}")
        elif op == "mov":
            body.append(f"regs[{rd}] = regs[{rn}]")
        elif op in ("movi", "movi_full"):
            body.append(f"regs[{rd}] = {to_i64(imm)}")
        elif op == "movz":
            body.append(f"regs[{rd}] = {to_i64(imm & 0xFFFF)}")
        elif op in _MOVK_SHIFTS:
            shift = _MOVK_SHIFTS[op]
            keep = _U64M & ~(0xFFFF << shift)
            part = (imm & 0xFFFF) << shift
            wrap_assign(f"regs[{rd}]", f"(regs[{rd}] & {keep}) | {part}")
        elif op == "load":
            read(k, f"(regs[{rn}] + {imm}) & {_U64M}", f"regs[{rd}]")
        elif op == "store":
            write(k, f"(regs[{rn}] + {imm}) & {_U64M}", f"regs[{rd}]")
        elif op == "ldp":
            body.append(f"t = regs[{fp}]")
            read(k, f"(t + {imm}) & {_U64M}", f"regs[{rd}]")
            read(k, f"(t + {imm + 8}) & {_U64M}", f"regs[{rm}]")
        elif op == "stp":
            body.append(f"t = regs[{fp}]")
            write(k, f"(t + {imm}) & {_U64M}", f"regs[{rd}]")
            write(k, f"(t + {imm + 8}) & {_U64M}", f"regs[{rm}]")
        elif op in ("lea", "addi"):
            wrap_assign(f"regs[{rd}]", f"(regs[{rn}] + {imm}) & {_U64M}")
        elif op == "push":
            body.append(f"a2 = (regs[{sp}] - 8) & {_U64M}")
            body.append(f"regs[{sp}] = a2 - {_TWO64} if a2 >> 63 else a2")
            write(k, "a2", f"regs[{rd}]")
        elif op == "pop":
            read(k, f"regs[{sp}] & {_U64M}", f"regs[{rd}]")
            if rd != sp:                   # pop sp: no post-increment
                body.append(f"a2 = (regs[{sp}] + 8) & {_U64M}")
                body.append(
                    f"regs[{sp}] = a2 - {_TWO64} if a2 >> 63 else a2")
        elif op == "cmp":
            body.append(f"v = regs[{rn}] - regs[{rm}]")
            body.append("thread.flags = (v > 0) - (v < 0)")
        elif op == "cmpi":
            body.append(f"v = regs[{rn}] - {imm}")
            body.append("thread.flags = (v > 0) - (v < 0)")
        elif op == "tlsload":
            read(k, f"(thread.tp + {imm}) & {_U64M}", f"regs[{rd}]")
        elif op == "tlsstore":
            write(k, f"(thread.tp + {imm}) & {_U64M}", f"regs[{rd}]")
        elif op in _BINOP_SYMS:
            wrap_assign(f"regs[{rd}]",
                        f"(regs[{rn}] {_BINOP_SYMS[op]} regs[{rm}])"
                        f" & {_U64M}")
        elif op == "lsl":
            wrap_assign(f"regs[{rd}]",
                        f"((regs[{rn}] & {_U64M}) << (regs[{rm}] & 63))"
                        f" & {_U64M}")
        elif op == "lsr":
            wrap_assign(f"regs[{rd}]",
                        f"(regs[{rn}] & {_U64M}) >> (regs[{rm}] & 63)")
        elif op in ("sdiv", "srem"):
            msg = ("integer division by zero" if op == "sdiv"
                   else "integer remainder by zero")
            body.append(f"x = regs[{rn}]")
            body.append(f"y = regs[{rm}]")
            body.append("if y == 0:")
            if k:
                account("    ", k, cp[k])
            body.append(f"    thread.pc = {pcs[k]}")
            body.append(f"    raise CpuFault(thread, {msg!r})")
            if op == "sdiv":
                body.append("v = abs(x) // abs(y)")
                body.append(f"v = (-v if (x < 0) != (y < 0) else v)"
                            f" & {_U64M}")
            else:
                body.append("v = abs(x) % abs(y)")
                body.append(f"v = (-v if x < 0 else v) & {_U64M}")
            body.append(f"regs[{rd}] = v - {_TWO64} if v >> 63 else v")
        elif op == "call":                 # extension call: pc baked in
            emit_call(k, instr)
        else:
            return fail()

    total = n
    cycles = cp[n]
    term = block.term_instr
    tail_pc: Optional[int] = pcs[n]
    if not partial and term is not None:   # ret or backward b/bcc
        tail_pc = None
        if term.op == "b":
            body.append(f"thread.pc = {term.target}")
        elif term.op == "bcc":
            sym = _COND_SYMS[term.cond]
            body.append(f"thread.pc = {term.target} if thread.flags"
                        f" {sym} 0 else {pcs[n] + term.size}")
        elif lr is None:                   # x86 ret: pop the return pc
            read(n, f"regs[{sp}] & {_U64M}", "rv")
            body.append(f"a2 = (regs[{sp}] + 8) & {_U64M}")
            body.append(f"regs[{sp}] = a2 - {_TWO64} if a2 >> 63 else a2")
            body.append(f"thread.pc = rv & {_U64M}")
        else:                              # arm ret: link register
            body.append(f"thread.pc = regs[{lr}] & {_U64M}")
        total += 1
        cycles += block.term_cost
    elif total == 0:
        return fail()                      # empty trace: nothing to gain

    src = ["def _make(process, AS, pages, RU, WU, PG, PK, UPK, PCS, CP,"
           " CpuFault, SegmentationFault):",
           "    PAGES_GET = pages.get"]
    for h in hots:
        src.append(f"    {h} = None")
    src.append("    def run(thread, regs"
               + (", m):" if partial else "):"))
    if hots:
        src.append("        nonlocal " + ", ".join(hots))
    src.append("        i = 0")
    src.append("        try:")
    if body:
        src.extend("            " + line for line in body)
    else:
        src.append("            pass")
    src.extend([
        "        except SegmentationFault as exc:",
        "            if i:",
        "                thread.instr_count += i",
        "                process.instr_total += i",
        "                process.cycle_total += CP[i]",
        "            thread.pc = PCS[i]",
        "            raise CpuFault(thread, str(exc)) from exc",
    ])
    if tail_pc is not None:
        src.append(f"        thread.pc = {tail_pc}")
    src.extend([
        f"        thread.instr_count += {total}",
        f"        process.instr_total += {total}",
        f"        process.cycle_total += {cycles}",
        f"        return {total}",
        "    return run",
    ])
    text = "\n".join(src)
    code = _CODE_CACHE.get(text)
    if code is None:
        code = compile(text, f"<block@{block.pc:#x}>", "exec")
        _CODE_CACHE[text] = code
    ns: dict = {}
    exec(code, ns)
    factory = ns["_make"]
    _FACTORY_CACHE[key] = factory
    return factory(process, aspace, aspace._pages, aspace.read_u64,
                   aspace.write_u64, aspace.page, _U64S.pack_into,
                   _U64S.unpack_from, tuple(pcs), tuple(cp),
                   CpuFault, SegmentationFault)


# Imported last: chains.py refers back to this module's codegen tables
# and caches, so the circular import must resolve after they exist.
from . import chains  # noqa: E402
