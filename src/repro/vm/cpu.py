"""Per-thread architectural state."""

from __future__ import annotations

from typing import List, Optional

from ..isa.isa import Isa

U64 = 0xFFFFFFFFFFFFFFFF
I64_MIN = -(1 << 63)


def to_i64(value: int) -> int:
    """Wrap an arbitrary Python int to signed 64-bit."""
    value &= U64
    if value >> 63:
        value -= 1 << 64
    return value


def to_u64(value: int) -> int:
    return value & U64


class ThreadStatus:
    RUNNING = "running"
    TRAPPED = "trapped"     # executed the trap instruction (SIGTRAP)
    STOPPED = "stopped"     # SIGSTOP (whole-process stop)
    DEAD = "dead"


class ThreadContext:
    """Registers + pc + flags + TLS pointer of one simulated thread.

    ``__slots__`` matters here: the superblock engine's generated code
    reads and writes ``pc``/``flags``/``instr_count`` on every trace,
    so attribute access on threads is one of the hottest operations in
    the interpreter.
    """

    __slots__ = ("tid", "isa", "regs", "pc", "flags", "tp", "status",
                 "instr_count", "trap_pc")

    def __init__(self, tid: int, isa: Isa):
        self.tid = tid
        self.isa = isa
        self.regs: List[int] = [0] * len(isa.registers)
        self.pc = 0
        #: sign of the last cmp/cmpi: -1, 0, or 1
        self.flags = 0
        #: TLS base pointer (fs_base on x86-64, TPIDR on aarch64)
        self.tp = 0
        self.status = ThreadStatus.RUNNING
        self.instr_count = 0
        #: set when the thread traps: the eqpoint address (== pc)
        self.trap_pc: Optional[int] = None

    # -- named register access ------------------------------------------------

    def get(self, name: str) -> int:
        return self.regs[self.isa.reg(name)]

    def set(self, name: str, value: int) -> None:
        self.regs[self.isa.reg(name)] = to_i64(value)

    @property
    def sp(self) -> int:
        return self.get(self.isa.abi.stack_pointer)

    @sp.setter
    def sp(self, value: int) -> None:
        self.set(self.isa.abi.stack_pointer, value)

    @property
    def fp(self) -> int:
        return self.get(self.isa.abi.frame_pointer)

    @fp.setter
    def fp(self, value: int) -> None:
        self.set(self.isa.abi.frame_pointer, value)

    def runnable(self) -> bool:
        return self.status == ThreadStatus.RUNNING

    def snapshot_regs(self) -> List[int]:
        return list(self.regs)

    def __repr__(self) -> str:
        return (f"<Thread {self.tid} [{self.isa.name}] pc={self.pc:#x} "
                f"{self.status}>")
