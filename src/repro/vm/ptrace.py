"""A ptrace-like tracer interface over the simulated kernel.

Mirrors the subset the paper's runtime monitor uses (§III-D2a):
``PTRACE_ATTACH``, ``PTRACE_POKEDATA`` (to flip the transformation
flag), waiting for per-thread SIGTRAPs, and ``PTRACE_DETACH``.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import PtraceError
from .cpu import ThreadContext, ThreadStatus
from .kernel import Machine, Process


class Tracer:
    """One tracer; the Dapper runtime creates one *per target thread*
    (the paper's "helper monitors"), all sharing this implementation."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.attached: Set[int] = set()
        self._process: Process = None

    # -- PTRACE_ATTACH ------------------------------------------------------

    def attach(self, process: Process, tid: int) -> None:
        if tid not in process.threads:
            raise PtraceError(f"no thread {tid} in process {process.pid}")
        if self._process is not None and self._process is not process:
            raise PtraceError("tracer already attached to another process")
        self._process = process
        self.attached.add(tid)

    def attach_all(self, process: Process) -> None:
        live = process.live_threads()
        if not live:
            raise PtraceError(
                f"process {process.pid} has no live threads to attach "
                f"(already exited?)")
        for thread in live:
            self.attach(process, thread.tid)

    # -- PTRACE_POKEDATA / PEEKDATA ---------------------------------------------

    def poke_data(self, addr: int, value: int) -> None:
        self._require_attached()
        self._process.aspace.write_u64(addr, value)
        # Not a journaled event (replay re-runs the same runtime code),
        # but journal-driven seekers must know guest state changed
        # outside the slice stream — see FlightRecorder.on_poke.
        if self.machine.recorder is not None:
            self.machine.recorder.on_poke(self.machine, self._process, addr)

    def peek_data(self, addr: int) -> int:
        self._require_attached()
        return self._process.aspace.read_u64(addr)

    def get_regs(self, tid: int) -> ThreadContext:
        self._require_attached()
        return self._process.threads[tid]

    # -- waiting ------------------------------------------------------------------

    def wait_all_trapped(self, max_steps: int = 20_000_000) -> List[int]:
        """Run the machine until every live thread of the traced process
        is TRAPPED (parked at an equivalence point). Threads created
        while waiting are attached automatically.

        Returns the list of trapped tids.
        """
        self._require_attached()
        process = self._process
        remaining = max_steps
        while remaining > 0:
            live = process.live_threads()
            for thread in live:
                if thread.tid not in self.attached:
                    self.attach(process, thread.tid)
            if process.exited:
                raise PtraceError("traced process exited while waiting")
            if live and all(t.status == ThreadStatus.TRAPPED for t in live):
                return [t.tid for t in live]
            done = self.machine.step_all(min(remaining, 10_000))
            if done == 0:
                live = process.live_threads()
                if live and all(t.status == ThreadStatus.TRAPPED
                                for t in live):
                    return [t.tid for t in live]
                raise PtraceError("no progress while waiting for traps")
            remaining -= done
        raise PtraceError(f"threads did not all trap in {max_steps} steps")

    # -- resume / detach -------------------------------------------------------------

    def cont(self, tid: int) -> None:
        self._require_attached()
        thread = self._process.threads[tid]
        if thread.status == ThreadStatus.TRAPPED:
            thread.status = ThreadStatus.RUNNING
            thread.trap_pc = None

    def detach(self, tid: int) -> None:
        self.attached.discard(tid)

    def detach_all(self) -> None:
        self.attached.clear()
        self._process = None

    def _require_attached(self) -> None:
        if self._process is None:
            raise PtraceError("tracer not attached")
