"""DAP wire framing: Content-Length headers around JSON bodies.

The Debug Adapter Protocol frames every message the LSP way::

    Content-Length: 119\\r\\n
    \\r\\n
    {"seq": 1, "type": "request", "command": "initialize", ...}

This module is the transport-independent half: :func:`encode_message`
turns one message dict into framed bytes, and :class:`StreamDecoder`
incrementally consumes an arbitrary byte stream (TCP segments, pipe
reads) and yields complete message dicts, tolerating messages split
across — or coalesced within — reads. Malformed framing raises
:class:`~repro.errors.DebugError` rather than desynchronizing the
stream.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..errors import DebugError

_SEPARATOR = b"\r\n\r\n"
#: backstop against a corrupt or hostile length header
MAX_MESSAGE = 64 * 1024 * 1024


def encode_message(message: Dict) -> bytes:
    body = json.dumps(message, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    return b"Content-Length: %d\r\n\r\n%b" % (len(body), body)


class StreamDecoder:
    """Incremental DAP frame decoder over a byte stream."""

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict]:
        """Consume ``data``; return every message completed by it."""
        self._buffer.extend(data)
        messages: List[Dict] = []
        while True:
            end = self._buffer.find(_SEPARATOR)
            if end < 0:
                if len(self._buffer) > 4096:
                    raise DebugError("DAP stream desynchronized: no "
                                     "header separator in 4 KiB")
                break
            length = self._parse_length(bytes(self._buffer[:end]))
            start = end + len(_SEPARATOR)
            if len(self._buffer) < start + length:
                break
            body = bytes(self._buffer[start:start + length])
            del self._buffer[:start + length]
            try:
                message = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise DebugError(f"bad DAP message body: {exc}")
            if not isinstance(message, dict):
                raise DebugError("DAP message body is not an object")
            messages.append(message)
        return messages

    @staticmethod
    def _parse_length(header: bytes) -> int:
        for line in header.split(b"\r\n"):
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise DebugError(f"bad Content-Length {value!r}")
                if not 0 <= length <= MAX_MESSAGE:
                    raise DebugError(f"unreasonable Content-Length "
                                     f"{length}")
                return length
        raise DebugError("DAP header carries no Content-Length")
