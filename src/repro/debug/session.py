"""The time-travel debug session: seek, step, reverse, inspect.

``repro-debug`` is an rr-style time-travel debugger over the flight
recorder. A :class:`DebugSession` turns one recorded journal into a
freely navigable timeline in two phases:

**Phase 1 — capture.** The journal's scenario is re-executed once,
end to end, by the ordinary :class:`~repro.replay.engine.Replayer`
with a :class:`~repro.replay.recorder.ReplayObserver` attached. The
observer dumps store-backed :class:`~repro.debug.snapshots.
WorldSnapshot`\\ s every ``snapshot_every`` scheduling slices, *and* —
crucially — at every journal event that mutates guest state outside
the slice stream (spawn, restore, kill, injected fault, migration
bookkeeping) and at every un-journaled ptrace poke the runtime
performs. The re-execution also produces a *complete* timeline
journal, which is validated digest-for-digest against the loaded one;
for a truncated journal (a crashed recorder) the recording must be a
prefix of the re-derived timeline, so crashed runs debug like whole
ones.

**Phase 2 — navigation.** Positions on the timeline are
``(events_applied, micro)`` pairs — instruction counts alone are
ambiguous at migration boundaries, where pre- and post-migration
states coexist at the same count. Seeking restores the latest
snapshot at or before the target into a *fresh* world of
per-instruction interpreter machines (no recorder attached) and then
re-executes the journaled scheduling slices — the journal is the
schedule; each slice must retire exactly the recorded instruction
count or the session raises :class:`~repro.errors.DebugError`. The
snapshot guarantee above means a seek never needs to re-apply a
mutation event, so every re-executed segment is pure slice replay,
and reverse operations cost O(snapshot gap), not O(run).

On top of seek the session offers breakpoints by pc (per-ISA), by
source line (via the embedded DapperC source and each function's
entry equivalence point), and by scheduling quantum; forward and
reverse step/continue; watchpoints located by value-probe bisection
over the snapshot index (:func:`~repro.replay.divergence.
bisect_last_transition`) plus a micro-scan of the one transition
segment; and inspection — stack unwinding over the ``.frames``
convention, live variables from ``.stackmaps`` records, registers and
raw memory — always decoded against the binary of the machine
currently hosting the process, so a session crossing a cross-ISA
migration re-decodes frames against the destination ISA
automatically.
"""

from __future__ import annotations

import bisect as _bisect
from typing import Dict, List, Optional, Set, Tuple

from ..binfmt.frames import RET_ADDR_OFFSET, SAVED_FP_OFFSET
from ..core.migration import install_program
from ..errors import (CheckpointError, DebugError, MemoryError_,
                      ReproError)
from ..isa import get_isa
from ..replay import journal as jn
from ..replay.digest import machine_digest
from ..replay.divergence import bisect_last_transition
from ..replay.engine import Replayer, _compile
from ..replay.journal import Journal
from ..replay.recorder import FlightRecorder, ReplayObserver, _OutputHash
from ..store import CheckpointStore
from ..vm.kernel import Machine, Process
from .snapshots import Position, SnapshotIndex, WorldSnapshot
from .source import SourceMap

#: journal events whose application mutates guest state outside the
#: scheduling-slice stream — a seeker cannot re-execute these, so the
#: capture phase anchors a snapshot immediately after each one. The
#: remaining kinds are benign for state: digests, syscalls and traps
#: are (re)produced by slice execution itself; store/verify/cluster/
#: rng/barrier/end events are bookkeeping.
MUTATION_KINDS = frozenset({
    jn.EV_SPAWN, jn.EV_RESTORE, jn.EV_EXIT, jn.EV_FAULT,
    jn.EV_CHECKPOINT, jn.EV_REWRITE, jn.EV_MIGRATE,
})

_UNSUPPORTED_SCENARIOS = {
    "rerandomize": "re-randomization rewrites code in place between "
                   "slices; snapshots cannot anchor it yet",
    "fleet": "fleet storms have no per-instruction machine state",
}


class StopInfo:
    """Why navigation stopped, and where."""

    __slots__ = ("reason", "position", "detail")

    def __init__(self, reason: str, position: Position, detail: str = ""):
        self.reason = reason      # breakpoint|quantum|watchpoint|step|
        self.position = position  # entry|end
        self.detail = detail

    def __repr__(self) -> str:
        extra = f" {self.detail}" if self.detail else ""
        return f"<Stop {self.reason}@{self.position}{extra}>"


class ThreadRef:
    """Stable handle for one thread of the debugged world."""

    __slots__ = ("machine_index", "pid", "tid", "isa", "status")

    def __init__(self, machine_index: int, pid: int, tid: int,
                 isa: str, status: str):
        self.machine_index = machine_index
        self.pid = pid
        self.tid = tid
        self.isa = isa
        self.status = status

    @property
    def key(self) -> Tuple[int, int, int]:
        return (self.machine_index, self.pid, self.tid)


class FrameInfo:
    """One unwound stack frame."""

    __slots__ = ("index", "func", "pc", "fp", "line", "isa")

    def __init__(self, index: int, func: Optional[str], pc: int, fp: int,
                 line: Optional[int], isa: str):
        self.index = index
        self.func = func
        self.pc = pc
        self.fp = fp
        self.line = line
        self.isa = isa


class Variable:
    """One decoded value (live variable, slot, or register)."""

    __slots__ = ("name", "value", "location", "address", "size")

    def __init__(self, name: str, value: Optional[int], location: str,
                 address: Optional[int] = None, size: int = 8):
        self.name = name
        self.value = value
        self.location = location   # e.g. "reg r3", "fp-16", "reg+stack"
        self.address = address
        self.size = size

    @property
    def display(self) -> str:
        return "<unreadable>" if self.value is None else str(self.value)


class _Capturer(ReplayObserver):
    """Phase-1 observer: snapshots on cadence + at every mutation."""

    def __init__(self, store: CheckpointStore, snapshot_every: int):
        self.store = store
        self.snapshot_every = snapshot_every
        self.index = SnapshotIndex()
        self.recorder: Optional[FlightRecorder] = None
        self.skipped = 0
        self._since = 0

    def on_recorder(self, recorder: FlightRecorder) -> None:
        self.recorder = recorder

    def after_slice(self, recorder: FlightRecorder) -> None:
        self._since += 1
        if self._since >= self.snapshot_every and self._capture():
            self._since = 0

    def after_event(self, recorder: FlightRecorder, event: Dict) -> None:
        if event["kind"] in MUTATION_KINDS:
            self._capture()
            self._since = 0

    def on_mutation(self, recorder: FlightRecorder, label: str) -> None:
        # e.g. the runtime poking __dapper_flag over ptrace: invisible
        # to the journal, so the snapshot *is* the record of it
        self._capture()
        self._since = 0

    def _capture(self) -> bool:
        position = (len(self.recorder.journal.events), 0)
        try:
            snap = WorldSnapshot.capture(position, self.recorder.machines,
                                         self.store)
        except CheckpointError:
            # a process is mid-exit or all-dead: undumpable, and also
            # never the source of further slices — an earlier snapshot
            # plus forward replay reaches every later position
            self.skipped += 1
            return False
        self.index.add(snap)
        return True


class DebugSession:
    """One journal, navigable in both directions. See module docs."""

    def __init__(self, journal: Journal, snapshot_every: int = 32,
                 engine: Optional[str] = None):
        self.header = dict(journal.header)
        scenario = self.header.get("scenario", "run")
        if scenario in _UNSUPPORTED_SCENARIOS:
            raise DebugError(f"cannot debug a {scenario!r} journal: "
                             f"{_UNSUPPORTED_SCENARIOS[scenario]}")
        if scenario not in ("run", "migrate"):
            raise DebugError(f"cannot debug unknown scenario {scenario!r}")
        if self.header.get("lazy"):
            raise DebugError(
                "cannot debug a lazy (post-copy) migration journal: the "
                "restored world has no page server to fault against — "
                "re-record with lazy=False")
        if not self.header.get("source"):
            raise DebugError("journal header embeds no program source")
        self.snapshot_every = max(1, snapshot_every)
        self.store = CheckpointStore()
        self.source_map = SourceMap(self.header["source"])
        self.program = _compile(self.header["source"],
                                self.header["program"])

        # -- phase 1: capture ------------------------------------------
        capturer = _Capturer(self.store, self.snapshot_every)
        result = Replayer(journal, engine=engine).run(observer=capturer)
        self.timeline: Journal = result.journal
        self.exit_code = result.exit_code
        self.snapshots: SnapshotIndex = capturer.index
        self._validate_against(journal)

        self.events = self.timeline.events
        # cumulative instructions before each event boundary
        self._cum = [0] * (len(self.events) + 1)
        # slice index (count of sched events) before each event
        self._slice_index = [0] * (len(self.events) + 1)
        for k, event in enumerate(self.events):
            sched = event["kind"] == jn.EV_SCHED
            self._cum[k + 1] = self._cum[k] + (event.get("b", 0)
                                               if sched else 0)
            self._slice_index[k + 1] = self._slice_index[k] + int(sched)
        self.total_instructions = self._cum[-1]
        self.total_slices = self._slice_index[-1]

        # -- breakpoints ----------------------------------------------
        #: (address, isa-name-or-None-for-any)
        self.pc_breakpoints: Set[Tuple[int, Optional[str]]] = set()
        self.quantum_breakpoints: Set[int] = set()
        #: id -> (pid, address, size)
        self.watchpoints: Dict[str, Tuple[int, int, int]] = {}

        #: scheduling slices re-executed by phase-2 seeks (the metric
        #: the reverse-seek benchmark asserts O(gap) on)
        self.slices_reexecuted = 0

        # -- phase 2 world --------------------------------------------
        self.machines: List[Machine] = []
        self._pos: Position = (0, 0)
        self.seek(self.start_position())

    # -- timeline validation ------------------------------------------

    def _validate_against(self, recorded: Journal) -> None:
        """The re-derived timeline must reproduce the recording: the
        recorded digest stream is a prefix of the timeline's (a proper
        prefix only for truncated journals)."""
        recorded_digests = recorded.digest_stream()
        timeline_digests = self.timeline.digest_stream()
        n = len(recorded_digests)
        if timeline_digests[:n] != recorded_digests:
            raise DebugError(
                "re-execution diverged from the recording — the journal "
                "is not deterministic on this build; run "
                "`repro-replay replay` to pinpoint the quantum")
        if recorded.sched_stream() != \
                self.timeline.sched_stream()[:len(recorded.of_kind(
                    jn.EV_SCHED))]:
            raise DebugError("re-execution produced a different "
                             "scheduling-slice stream than the recording")

    # -- positions ----------------------------------------------------

    @property
    def position(self) -> Position:
        return self._pos

    def instructions_at(self, position: Position) -> int:
        return self._cum[position[0]] + position[1]

    @property
    def instructions(self) -> int:
        return self.instructions_at(self._pos)

    @property
    def slice_index(self) -> int:
        return self._slice_index[self._pos[0]]

    def start_position(self) -> Position:
        """Just before the first instruction (initial spawns applied)."""
        for k, event in enumerate(self.events):
            if event["kind"] == jn.EV_SCHED:
                return (k, 0)
        return (len(self.events), 0)

    def end_position(self) -> Position:
        return self._canonical((len(self.events), 0))

    def at_end(self) -> bool:
        return self._pos[0] >= len(self.events)

    def _is_benign(self, k: int) -> bool:
        kind = self.events[k]["kind"]
        return kind != jn.EV_SCHED and kind not in MUTATION_KINDS

    def _canonical(self, position: Position) -> Position:
        """Skip benign events (no state change) so every canonical
        position has a sched or mutation event — or the end — next."""
        ei, micro = position
        if micro == 0:
            while ei < len(self.events) and self._is_benign(ei):
                ei += 1
        return (ei, micro)

    def position_of_instr(self, instr: int) -> Position:
        """Canonical position after ``instr`` retired instructions (the
        *post-mutation* side when a boundary is ambiguous)."""
        instr = max(0, min(instr, self.total_instructions))
        k = _bisect.bisect_left(self._cum, instr, 1)
        if self._cum[k] == instr:
            return self._canonical((k, 0))
        return (k - 1, instr - self._cum[k - 1])

    def position_of_slice(self, slice_index: int) -> Position:
        """Canonical position just before the given scheduling slice."""
        k = _bisect.bisect_left(self._slice_index, slice_index + 1) - 1
        return self._canonical((k, 0))

    # -- phase-2 world ------------------------------------------------

    def _world_shape(self) -> List[Tuple[str, str]]:
        if self.header.get("scenario", "run") == "migrate":
            return [(self.header["src_arch"], "src"),
                    (self.header["dst_arch"], "dst")]
        return [(self.header["src_arch"], "node")]

    def _fresh_machines(self) -> List[Machine]:
        machines = []
        for arch, name in self._world_shape():
            machine = Machine(get_isa(arch), name=name,
                              quantum=self.header.get("quantum", 64),
                              block_engine=False, chain_engine=False)
            install_program(machine, self.program)
            machines.append(machine)
        return machines

    def _locate(self, pid: int, tid: int
                ) -> Tuple[Machine, Process, "object"]:
        for machine in self.machines:
            process = machine.processes.get(pid)
            if (process is not None and not process.exited
                    and tid in process.threads):
                return machine, process, process.threads[tid]
        raise DebugError(f"re-execution diverged: journaled slice names "
                         f"pid {pid} tid {tid}, absent from the world")

    def _run_slice(self, event: Dict, budget: int) -> int:
        machine, process, thread = self._locate(event.get("pid", 0),
                                                event.get("tid", 0))
        self.slices_reexecuted += 1
        return machine._run_thread(process, thread, budget)

    def _apply_event(self, k: int) -> None:
        event = self.events[k]
        kind = event["kind"]
        if kind == jn.EV_SCHED:
            executed = self._run_slice(event, event.get("a", 0))
            if executed != event.get("b", 0):
                raise DebugError(
                    f"re-execution diverged at slice "
                    f"#{self._slice_index[k]}: retired {executed} "
                    f"instruction(s), journal says {event.get('b', 0)}")
        elif kind in MUTATION_KINDS:
            raise DebugError(
                f"position unreachable: no snapshot covers the "
                f"{jn.KIND_NAMES.get(kind, kind)} event at timeline "
                f"index {k}")

    # -- seek ----------------------------------------------------------

    def seek(self, position: Position) -> Position:
        """Reconstruct the world at ``position`` (canonicalized)."""
        ei, micro = self._canonical(position)
        ei = min(ei, len(self.events))
        if micro:
            if ei >= len(self.events) \
                    or self.events[ei]["kind"] != jn.EV_SCHED:
                raise DebugError(f"position ({ei}, {micro}) is not "
                                 f"inside a scheduling slice")
            micro = min(micro, self.events[ei].get("b", 0))
        machines = self._fresh_machines()
        snap = self.snapshots.at_or_before((ei, micro))
        start = 0
        if snap is not None:
            # swap the world in only after the restore fully succeeds
            snap.restore(machines, self.store)
            start = snap.position[0]
        self.machines = machines
        for k in range(start, ei):
            self._apply_event(k)
        if micro:
            event = self.events[ei]
            self.slices_reexecuted += 1
            machine, process, thread = self._locate(event.get("pid", 0),
                                                    event.get("tid", 0))
            executed = machine._run_thread(process, thread, micro)
            if executed != micro:
                raise DebugError(
                    f"re-execution diverged mid-slice: retired "
                    f"{executed} of {micro} instruction(s)")
        self._pos = (ei, micro)
        return self._pos

    def seek_instr(self, instr: int) -> Position:
        return self.seek(self.position_of_instr(instr))

    # -- stepping -------------------------------------------------------

    def step(self) -> Optional[StopInfo]:
        """One instruction forward (or one mutation event, at a
        boundary). Returns None at the end of the timeline."""
        ei, micro = self._pos
        if ei >= len(self.events):
            return None
        event = self.events[ei]
        if event["kind"] == jn.EV_SCHED:
            # advance in place on the live world — no restore needed
            machine, process, thread = self._locate(event.get("pid", 0),
                                                    event.get("tid", 0))
            if machine._run_thread(process, thread, 1) != 1:
                raise DebugError("re-execution diverged: thread refused "
                                 "to retire an instruction mid-slice")
            micro += 1
            if micro >= event.get("b", 0):
                self._pos = self._canonical((ei + 1, 0))
            else:
                self._pos = (ei, micro)
        else:
            # mutation boundary: cross it via its snapshot
            self.seek((ei + 1, 0))
        return StopInfo("step", self._pos)

    def step_back(self) -> Optional[StopInfo]:
        """One instruction (or mutation event) backward; None at the
        start. Cost: one snapshot restore + O(gap) slice replay."""
        ei, micro = self._pos
        if micro > 0:
            self.seek((ei, micro - 1))
            return StopInfo("step", self._pos)
        if self._pos <= self.start_position():
            return None  # the pre-spawn world is not a useful stop
        k = ei - 1
        while k >= 0:
            kind = self.events[k]["kind"]
            if kind == jn.EV_SCHED:
                self.seek((k, self.events[k].get("b", 0) - 1))
                return StopInfo("step", self._pos)
            if kind in MUTATION_KINDS:
                self.seek((k, 0))
                return StopInfo("step", self._pos)
            k -= 1
        return None

    # -- breakpoints ----------------------------------------------------

    def resolve_function(self, name: str
                         ) -> List[Tuple[int, str, Optional[int]]]:
        """``(address, isa, line)`` of ``name``'s entry eqpoint in every
        binary of the program (addresses are per-ISA)."""
        out = []
        line = self.source_map.line_of(name)
        for arch in sorted(self.program.binaries):
            binary = self.program.binaries[arch]
            point = binary.stackmaps.entry_for(name)
            if point is not None:
                out.append((point.addr, arch, line))
        return out

    def resolve_line(self, line: int
                     ) -> Tuple[Optional[str], List[Tuple[int, str,
                                                          Optional[int]]]]:
        """Map a source line to its enclosing function's entry eqpoint
        (no statement-level line table exists). Returns
        ``(function, [(address, isa, bound_line)])``."""
        func = self.source_map.function_at_line(line)
        if func is None:
            return None, []
        return func, self.resolve_function(func)

    def _pc_hit(self, machine: Machine, pc: int) -> bool:
        if not self.pc_breakpoints:
            return False
        name = machine.isa.name
        return ((pc, None) in self.pc_breakpoints
                or (pc, name) in self.pc_breakpoints)

    # -- watchpoints ----------------------------------------------------

    def add_watchpoint(self, pid: int, addr: int, size: int = 8) -> str:
        wp_id = f"{pid}:{addr:#x}:{size}"
        self.watchpoints[wp_id] = (pid, addr, size)
        return wp_id

    def clear_watchpoints(self) -> None:
        self.watchpoints.clear()

    def _probe_watchpoints(self) -> Dict[str, Optional[bytes]]:
        values: Dict[str, Optional[bytes]] = {}
        for wp_id, (pid, addr, size) in self.watchpoints.items():
            values[wp_id] = self._read_raw(pid, addr, size)
        return values

    def _read_raw(self, pid: int, addr: int,
                  size: int) -> Optional[bytes]:
        for machine in self.machines:
            process = machine.processes.get(pid)
            if process is None:
                continue
            try:
                return process.aspace.read(addr, size, check=False)
            except (MemoryError_, ReproError):
                return None
        return None

    # -- continue (forward) ---------------------------------------------

    def _quantum_positions(self) -> List[Position]:
        return sorted(self.position_of_slice(q)
                      for q in self.quantum_breakpoints
                      if 0 <= q < self.total_slices)

    def continue_forward(self) -> StopInfo:
        """Run forward to the next breakpoint/watchpoint/quantum hit
        (or the timeline end). Quantum stops are computed directly from
        the timeline; pc and watch stops require scanning execution."""
        origin = self._pos
        end = self.end_position()
        qpos = next((p for p in self._quantum_positions() if p > origin),
                    None)
        stop = qpos if qpos is not None else end
        if self.pc_breakpoints or self.watchpoints:
            hit = self._scan_forward(origin, stop, first_stop=True)
            if hit is not None:
                if self._pos != hit.position:
                    self.seek(hit.position)
                return hit
        if qpos is not None:
            self.seek(qpos)
            return StopInfo("quantum", self._pos,
                            f"slice {self.slice_index}")
        if self._pos != end:
            self.seek(end)
        return StopInfo("end", self._pos)

    def _scan_forward(self, start: Position, stop: Position,
                      first_stop: bool,
                      collect: Optional[List[StopInfo]] = None
                      ) -> Optional[StopInfo]:
        """Walk execution from ``start`` to ``stop``, evaluating pc
        breakpoints (pre-execution, skipping a hit exactly at
        ``start``) and watchpoint value changes (post-execution). With
        ``first_stop`` returns on the first hit; with ``collect`` it
        appends every hit and runs through ``stop`` (the
        reverse-continue primitive). The world is left wherever the
        scan ended — callers re-seek when they need a different spot."""
        if self._pos != start:
            self.seek(start)
        watch_last = self._probe_watchpoints() if self.watchpoints \
            else None
        micro_mode = bool(self.pc_breakpoints) or bool(self.watchpoints)
        moved = False

        def emit(info: StopInfo) -> bool:
            if collect is not None:
                collect.append(info)
            return first_stop

        while self._pos < stop:
            ei, micro = self._pos
            if ei >= len(self.events):
                break
            event = self.events[ei]
            if event["kind"] != jn.EV_SCHED:
                # mutation boundary — cross via its snapshot
                self.seek(self._canonical((ei + 1, 0)))
                moved = True
                if watch_last is not None:
                    delta = self._watch_delta(watch_last)
                    if delta is not None and self._pos <= stop:
                        info = StopInfo("watchpoint", self._pos, delta)
                        if emit(info):
                            return info
                continue
            machine, process, thread = self._locate(event.get("pid", 0),
                                                    event.get("tid", 0))
            budget = event.get("b", 0) - micro
            if not micro_mode:
                if budget > 0:
                    self.slices_reexecuted += 1
                    if machine._run_thread(process, thread,
                                           budget) != budget:
                        raise DebugError("re-execution diverged during "
                                         "a forward scan")
                self._pos = self._canonical((ei + 1, 0))
                moved = True
                continue
            while micro < event.get("b", 0):
                if moved and self._pc_hit(machine, thread.pc):
                    info = StopInfo("breakpoint", (ei, micro),
                                    f"pc={thread.pc:#x}")
                    self._pos = (ei, micro)
                    if emit(info):
                        return info
                if (ei, micro) >= stop:
                    self._pos = (ei, micro)
                    return None
                if machine._run_thread(process, thread, 1) != 1:
                    raise DebugError("re-execution diverged: thread "
                                     "refused to retire an instruction")
                micro += 1
                moved = True
                self._pos = (ei, micro) if micro < event.get("b", 0) \
                    else self._canonical((ei + 1, 0))
                if watch_last is not None:
                    delta = self._watch_delta(watch_last)
                    if delta is not None:
                        info = StopInfo("watchpoint", self._pos, delta)
                        if emit(info):
                            return info
        return None

    def _watch_delta(self,
                     last: Dict[str, Optional[bytes]]) -> Optional[str]:
        """Re-probe; returns a description if any watched value moved
        (and folds the new values into ``last``)."""
        current = self._probe_watchpoints()
        changed = None
        for wp_id, value in current.items():
            old = last.get(wp_id)
            if value != old:
                def _fmt(raw: Optional[bytes]) -> str:
                    return ("?" if raw is None
                            else hex(int.from_bytes(raw, "little")))
                changed = (f"{wp_id} {_fmt(old)} -> "
                           f"{_fmt(value)}")
                last[wp_id] = value
        return changed

    # -- reverse continue -----------------------------------------------

    def reverse_continue(self) -> StopInfo:
        """Run *backward* to the most recent breakpoint or watchpoint
        hit before the current position; lands on the program entry if
        nothing hits. Breakpoint hits are found by scanning snapshot
        segments newest-first (O(gap) when the hit is recent);
        watchpoint writes by value-probe bisection over the snapshot
        index plus a micro-scan of the single transition segment."""
        origin = self._pos
        candidates: List[StopInfo] = []
        qpos = None
        for pos in self._quantum_positions():
            if pos < origin:
                qpos = pos
        if qpos is not None:
            candidates.append(StopInfo("quantum", qpos))
        if self.watchpoints:
            hit = self._last_watch_change(origin)
            if hit is not None:
                candidates.append(hit)
        if self.pc_breakpoints:
            hit = self._last_bp_hit(origin)
            if hit is not None:
                candidates.append(hit)
        if candidates:
            best = max(candidates, key=lambda info: info.position)
            self.seek(best.position)
            return best
        self.seek(self.start_position())
        return StopInfo("entry", self._pos)

    def _segment_starts(self, before: Position) -> List[Position]:
        """Snapshot positions (plus the timeline start) below
        ``before``, ascending."""
        starts = [(0, 0)]
        for pos in self.snapshots.positions():
            if pos < before:
                starts.append(pos)
        return sorted(set(starts))

    def _last_bp_hit(self, origin: Position) -> Optional[StopInfo]:
        starts = self._segment_starts(origin)
        for i in range(len(starts) - 1, -1, -1):
            lo = starts[i]
            hi = starts[i + 1] if i + 1 < len(starts) else origin
            hits: List[StopInfo] = []
            self._scan_forward(lo, min(hi, origin), first_stop=False,
                               collect=hits)
            hits = [h for h in hits if h.reason == "breakpoint"
                    and h.position < origin]
            if hits:
                return hits[-1]
        return None

    def _last_watch_change(self, origin: Position) -> Optional[StopInfo]:
        starts = self._segment_starts(origin)
        last = len(starts) - 1
        # the final (partial) segment first: a change newer than the
        # newest snapshot is invisible to snapshot-granularity bisection
        hit = self._scan_watch_segment(starts[last], origin,
                                       strict_before=origin)
        if hit is not None:
            return hit

        probes: Dict[int, Tuple] = {}

        def probe(i: int) -> Tuple:
            if i not in probes:
                self.seek(starts[i])
                probes[i] = tuple(sorted(self._probe_watchpoints()
                                         .items()))
            return probes[i]

        k = bisect_last_transition(probe, 0, last)
        if k is None:
            return None
        return self._scan_watch_segment(starts[k - 1], starts[k])

    def _scan_watch_segment(self, lo: Position, hi: Position,
                            strict_before: Optional[Position] = None
                            ) -> Optional[StopInfo]:
        """Micro-scan one segment; last watch change in it, if any."""
        hits: List[StopInfo] = []
        self._scan_forward(lo, hi, first_stop=False, collect=hits)
        watch_hits = [h for h in hits if h.reason == "watchpoint"]
        if strict_before is not None:
            watch_hits = [h for h in watch_hits
                          if h.position < strict_before]
        return watch_hits[-1] if watch_hits else None

    # -- inspection -----------------------------------------------------

    def threads(self) -> List[ThreadRef]:
        out = []
        for index, machine in enumerate(self.machines):
            for pid in sorted(machine.processes):
                process = machine.processes[pid]
                for tid in sorted(process.threads):
                    thread = process.threads[tid]
                    out.append(ThreadRef(index, pid, tid,
                                         machine.isa.name,
                                         thread.status))
        return out

    def focused_thread(self) -> Optional[ThreadRef]:
        """The thread about to execute (or the last one that did)."""
        ei = self._pos[0]
        # prefer the next sched event's thread — but only within the
        # current world (stop at a mutation boundary: a later slice may
        # name a process that does not exist yet)
        for k in range(ei, len(self.events)):
            kind = self.events[k]["kind"]
            if kind == jn.EV_SCHED:
                ref = self._thread_ref(self.events[k].get("pid", 0),
                                       self.events[k].get("tid", 0))
                if ref is not None:
                    return ref
                break
            if kind in MUTATION_KINDS:
                break
        for k in range(min(ei, len(self.events)) - 1, -1, -1):
            event = self.events[k]
            if event["kind"] == jn.EV_SCHED:
                ref = self._thread_ref(event.get("pid", 0),
                                       event.get("tid", 0))
                if ref is not None:
                    return ref
        threads = self.threads()
        return threads[0] if threads else None

    def _thread_ref(self, pid: int, tid: int) -> Optional[ThreadRef]:
        for ref in self.threads():
            if ref.pid == pid and ref.tid == tid:
                return ref
        return None

    def _deref(self, ref: ThreadRef):
        machine = self.machines[ref.machine_index]
        process = machine.processes.get(ref.pid)
        if process is None or ref.tid not in process.threads:
            raise DebugError(f"stale thread reference {ref.key}")
        return machine, process, process.threads[ref.tid]

    def stack_frames(self, ref: ThreadRef,
                     max_depth: int = 64) -> List[FrameInfo]:
        """Unwind via the ``.frames`` convention: ``[fp+8]`` return
        address, ``[fp+0]`` saved caller fp. Decoded against the
        binary of the machine hosting the process — after a cross-ISA
        migration that is the destination binary."""
        machine, process, thread = self._deref(ref)
        frames_section = process.binary.frames
        out: List[FrameInfo] = []
        pc, fp = thread.pc, thread.fp
        for depth in range(max_depth):
            record = frames_section.containing(pc)
            func = record.func if record is not None else None
            line = (self.source_map.line_of(func)
                    if func is not None else None)
            out.append(FrameInfo(depth, func, pc, fp, line,
                                 machine.isa.name))
            if record is None or fp == 0:
                break
            try:
                ret = process.aspace.read_u64(fp + RET_ADDR_OFFSET)
                saved = process.aspace.read_u64(fp + SAVED_FP_OFFSET)
            except (MemoryError_, ReproError):
                break
            if ret == 0 or frames_section.containing(ret) is None:
                break
            pc, fp = ret, saved
        return out

    def frame_variables(self, ref: ThreadRef,
                        frame_index: int = 0) -> List[Variable]:
        """Live values of one frame. Frame 0 at an equivalence point
        uses the ``.stackmaps`` record (registers and/or spill slots);
        anywhere else — and for every suspended outer frame — only the
        ``.frames`` stack slots are recoverable (registers are
        clobbered by the callee)."""
        machine, process, thread = self._deref(ref)
        frames = self.stack_frames(ref)
        if frame_index >= len(frames):
            return []
        frame = frames[frame_index]
        aspace = process.aspace
        isa = machine.isa
        out: List[Variable] = []
        point = (process.binary.stackmaps.by_addr.get(frame.pc)
                 if frame_index == 0 else None)
        if point is not None:
            for live in point.live:
                reg_val = stack_val = None
                addr = None
                reg_name = None
                if live.in_register():
                    try:
                        index = isa.index_of_dwarf(live.dwarf_reg)
                        reg_name = isa.reg_name(index)
                        reg_val = thread.regs[index]
                    except KeyError:
                        reg_name = f"dwarf{live.dwarf_reg}"
                if live.on_stack():
                    addr = frame.fp + live.stack_offset
                    raw = self._read_raw(process.pid, addr, live.size)
                    if raw is not None:
                        stack_val = int.from_bytes(raw, "little",
                                                   signed=True)
                if live.loc_type == "both":
                    location = f"reg {reg_name}+fp{live.stack_offset:+d}"
                    value = reg_val if reg_val is not None else stack_val
                elif live.in_register():
                    location = f"reg {reg_name}"
                    value = reg_val
                else:
                    location = f"fp{live.stack_offset:+d}"
                    value = stack_val
                out.append(Variable(live.name, value, location, addr,
                                    live.size))
            return out
        if frame.func is None:
            return []
        record = process.binary.frames.get(frame.func)
        for slot in record.slots:
            addr = frame.fp + slot.offset
            if slot.size <= 8:
                raw = self._read_raw(process.pid, addr, slot.size)
                value = (int.from_bytes(raw, "little", signed=True)
                         if raw is not None else None)
            else:
                # arrays/aggregates: first word as the scalar preview
                raw = self._read_raw(process.pid, addr, 8)
                value = (int.from_bytes(raw, "little", signed=True)
                         if raw is not None else None)
            out.append(Variable(slot.name, value,
                                f"fp{slot.offset:+d} ({slot.kind})",
                                addr, slot.size))
        return out

    def registers(self, ref: ThreadRef) -> List[Variable]:
        machine, _process, thread = self._deref(ref)
        isa = machine.isa
        out = [Variable("pc", thread.pc, "pc"),
               Variable("flags", thread.flags, "flags"),
               Variable("tp", thread.tp, "tp")]
        for i, value in enumerate(thread.regs):
            out.append(Variable(isa.reg_name(i), value, f"r{i}"))
        return out

    def read_memory(self, addr: int, count: int,
                    pid: Optional[int] = None) -> Optional[bytes]:
        if pid is None:
            ref = self.focused_thread()
            if ref is None:
                return None
            pid = ref.pid
        return self._read_raw(pid, addr, count)

    def global_variable(self, name: str,
                        ref: Optional[ThreadRef] = None
                        ) -> Optional[Variable]:
        """A global object decoded via the binary's symbol table."""
        if ref is None:
            ref = self.focused_thread()
        if ref is None:
            return None
        _machine, process, _thread = self._deref(ref)
        symbol = process.binary.symtab.lookup(name)
        if symbol is None or symbol.kind != "object":
            return None
        size = min(symbol.size or 8, 8)
        raw = self._read_raw(process.pid, symbol.addr, size)
        value = (int.from_bytes(raw, "little", signed=True)
                 if raw is not None else None)
        return Variable(name, value, f"global {symbol.addr:#x}",
                        symbol.addr, size)

    def evaluate(self, expression: str,
                 ref: Optional[ThreadRef] = None,
                 frame_index: int = 0) -> Variable:
        """Tiny expression language: ``$reg`` / register name, ``pc``,
        ``*0xADDR`` (u64 load), a frame variable, or a global."""
        expr = expression.strip()
        if ref is None:
            ref = self.focused_thread()
        if ref is None:
            raise DebugError("no thread to evaluate against")
        if expr.startswith("*"):
            addr = int(expr[1:], 0)
            raw = self._read_raw(ref.pid, addr, 8)
            value = (int.from_bytes(raw, "little") if raw is not None
                     else None)
            return Variable(expr, value, f"mem {addr:#x}", addr)
        name = expr[1:] if expr.startswith("$") else expr
        for reg in self.registers(ref):
            if reg.name == name:
                return reg
        for var in self.frame_variables(ref, frame_index):
            if var.name == name:
                return var
        var = self.global_variable(name, ref)
        if var is not None:
            return var
        raise DebugError(f"cannot evaluate {expression!r}: no such "
                         f"register, frame variable, or global")

    # -- recorded-state verification -------------------------------------

    def digest_positions(self) -> List[Tuple[int, Position]]:
        """``(digest_index, canonical position)`` of every digest event
        on the timeline."""
        out = []
        for k, event in enumerate(self.events):
            if event["kind"] == jn.EV_DIGEST:
                out.append((event.get("a", 0), self._canonical((k, 0))))
        return out

    def current_digest(self) -> bytes:
        hashes: Dict[int, bytes] = {}
        for machine in self.machines:
            for process in machine.processes.values():
                hashes[id(process)] = _OutputHash().fold(process.output)
        return machine_digest(self.machines, hashes)

    def verify_digest(self, digest_index: int) -> bool:
        """Seek to a recorded digest point and check the reconstructed
        world folds to the *exact* recorded digest — every register and
        byte equal to the original run."""
        for index, position in self.digest_positions():
            if index == digest_index:
                self.seek(position)
                recorded = [e for e in self.timeline.digests()
                            if e.get("a") == digest_index][0]
                return self.current_digest() == recorded["payload"]
        raise DebugError(f"no digest #{digest_index} on the timeline")
