"""Serving a :class:`~repro.debug.adapter.DebugAdapter` over asyncio.

Two transports, one loop body: a TCP listener (``repro-debug
--port``, the default — the chosen port is printed so scripted
clients can connect to port 0) and raw stdio pipes (``--stdio``, the
transport DAP-aware editors spawn adapters with). Requests are
processed strictly in order — the timeline is single and every
navigation request moves it, so concurrency would only interleave
seeks — and each request's response-plus-events batch is written
before the next request is read.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Optional

from .adapter import DebugAdapter
from .protocol import StreamDecoder, encode_message
from .session import DebugSession


async def _serve_stream(adapter: DebugAdapter,
                        reader: asyncio.StreamReader,
                        write) -> None:
    decoder = StreamDecoder()
    while not adapter.terminated:
        data = await reader.read(65536)
        if not data:
            break
        for request in decoder.feed(data):
            for message in adapter.handle(request):
                write(encode_message(message))
            if adapter.terminated:
                break


async def serve_tcp(session: DebugSession, host: str = "127.0.0.1",
                    port: int = 0,
                    ready: Optional["asyncio.Event"] = None,
                    announce=None) -> None:
    """Listen for one DAP client at a time; returns when a client
    disconnects the session (or the task is cancelled)."""
    done = asyncio.Event()

    async def on_client(reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> None:
        adapter = DebugAdapter(session)
        try:
            await _serve_stream(adapter, reader, writer.write)
            await writer.drain()
        finally:
            writer.close()
        if adapter.terminated:
            done.set()

    server = await asyncio.start_server(on_client, host, port)
    bound = server.sockets[0].getsockname()
    if announce is not None:
        announce(bound[0], bound[1])
    if ready is not None:
        ready.set()
    async with server:
        await done.wait()


async def serve_stdio(session: DebugSession) -> None:
    """Speak DAP over this process's stdin/stdout (binary mode)."""
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin.buffer)
    stdout = sys.stdout.buffer

    def write(data: bytes) -> None:
        stdout.write(data)
        stdout.flush()

    adapter = DebugAdapter(session)
    await _serve_stream(adapter, reader, write)


def run_tcp(session: DebugSession, host: str = "127.0.0.1",
            port: int = 0, announce=None) -> None:
    asyncio.run(serve_tcp(session, host, port, announce=announce))


def run_stdio(session: DebugSession) -> None:
    asyncio.run(serve_stdio(session))
