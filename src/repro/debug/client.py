"""A small synchronous DAP client, for tests and the CI smoke job.

:class:`DapClient` speaks the request/reply discipline the server
guarantees: send one request, then read messages until its response
arrives, buffering any events that precede it (the server writes each
request's response before its events *except* ``initialize``, whose
``initialized`` event follows the response — either order is handled).
The convenience methods mirror the adapter's surface
(:meth:`set_breakpoints`, :meth:`continue_`, :meth:`step_back`,
:meth:`variables`, ...) and raise :class:`~repro.errors.DebugError`
on a failed response so scripted sessions fail loudly.
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional

from ..errors import DebugError
from .protocol import StreamDecoder, encode_message


class DapClient:
    """One synchronous DAP conversation over a TCP socket."""

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self.sock = socket.create_connection((host, port),
                                             timeout=timeout)
        self.decoder = StreamDecoder()
        self.events: List[Dict] = []
        self._inbox: List[Dict] = []
        self._seq = 0

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "DapClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------

    def request(self, command: str,
                arguments: Optional[Dict] = None) -> Dict:
        """Send one request; block until its response. Raises
        :class:`DebugError` when the response reports failure."""
        self._seq += 1
        message: Dict = {"seq": self._seq, "type": "request",
                         "command": command}
        if arguments is not None:
            message["arguments"] = arguments
        self.sock.sendall(encode_message(message))
        response = self._read_until_response(self._seq)
        if not response.get("success", False):
            raise DebugError(f"{command} failed: "
                             f"{response.get('message', '?')}")
        return response.get("body", {})

    def _read_until_response(self, request_seq: int) -> Dict:
        while True:
            for i, message in enumerate(self._inbox):
                if message.get("type") == "response" and \
                        message.get("request_seq") == request_seq:
                    return self._inbox.pop(i)
            data = self.sock.recv(65536)
            if not data:
                raise DebugError("DAP server closed the connection "
                                 "mid-request")
            for message in self.decoder.feed(data):
                if message.get("type") == "event":
                    self.events.append(message)
                else:
                    self._inbox.append(message)

    def wait_event(self, event: str) -> Dict:
        """Pop the oldest buffered event of the given kind (reading
        from the socket if none is buffered yet)."""
        while True:
            for i, message in enumerate(self.events):
                if message.get("event") == event:
                    return self.events.pop(i)
            data = self.sock.recv(65536)
            if not data:
                raise DebugError(f"DAP server closed before "
                                 f"{event!r} event")
            for message in self.decoder.feed(data):
                if message.get("type") == "event":
                    self.events.append(message)
                else:
                    self._inbox.append(message)

    # -- convenience ----------------------------------------------------

    def initialize(self) -> Dict:
        body = self.request("initialize", {"adapterID": "repro-debug"})
        self.wait_event("initialized")
        return body

    def launch(self) -> None:
        self.request("launch", {})

    def configuration_done(self) -> Dict:
        self.request("configurationDone")
        return self.wait_event("stopped")

    def set_breakpoints(self, lines: List[int]) -> List[Dict]:
        body = self.request("setBreakpoints", {
            "source": {"sourceReference": 1},
            "breakpoints": [{"line": line} for line in lines]})
        return body.get("breakpoints", [])

    def set_function_breakpoints(self,
                                 names: List[str]) -> List[Dict]:
        body = self.request("setFunctionBreakpoints", {
            "breakpoints": [{"name": name} for name in names]})
        return body.get("breakpoints", [])

    def set_data_breakpoints(self,
                             data_ids: List[str]) -> List[Dict]:
        body = self.request("setDataBreakpoints", {
            "dataBreakpoints": [{"dataId": d} for d in data_ids]})
        return body.get("breakpoints", [])

    def set_quantum_breakpoints(self,
                                quanta: List[int]) -> List[Dict]:
        body = self.request("setQuantumBreakpoints",
                            {"quanta": quanta})
        return body.get("breakpoints", [])

    def data_breakpoint_info(self, name: str,
                             frame_id: Optional[int] = None) -> Dict:
        args: Dict = {"name": name}
        if frame_id is not None:
            args["frameId"] = frame_id
        return self.request("dataBreakpointInfo", args)

    def continue_(self) -> Dict:
        self.request("continue", {"threadId": 0})
        return self.wait_event("stopped")

    def reverse_continue(self) -> Dict:
        self.request("reverseContinue", {"threadId": 0})
        return self.wait_event("stopped")

    def step(self) -> Dict:
        self.request("next", {"threadId": 0})
        return self.wait_event("stopped")

    def step_back(self) -> Dict:
        self.request("stepBack", {"threadId": 0})
        return self.wait_event("stopped")

    def threads(self) -> List[Dict]:
        return self.request("threads").get("threads", [])

    def stack_trace(self, thread_id: int) -> List[Dict]:
        return self.request("stackTrace",
                            {"threadId": thread_id}
                            ).get("stackFrames", [])

    def scopes(self, frame_id: int) -> List[Dict]:
        return self.request("scopes",
                            {"frameId": frame_id}).get("scopes", [])

    def variables(self, reference: int) -> List[Dict]:
        return self.request("variables",
                            {"variablesReference": reference}
                            ).get("variables", [])

    def locals_of(self, frame_id: int) -> Dict[str, str]:
        """Name -> value of the Locals scope of one frame."""
        for scope in self.scopes(frame_id):
            if scope["name"] == "Locals":
                return {v["name"]: v["value"] for v in
                        self.variables(scope["variablesReference"])}
        return {}

    def evaluate(self, expression: str,
                 frame_id: Optional[int] = None) -> str:
        args: Dict = {"expression": expression}
        if frame_id is not None:
            args["frameId"] = frame_id
        return self.request("evaluate", args).get("result", "")

    def read_memory(self, addr: int, count: int) -> Dict:
        return self.request("readMemory",
                            {"memoryReference": hex(addr),
                             "count": count})

    def time_travel(self, instruction: Optional[int] = None) -> Dict:
        args: Dict = {}
        if instruction is not None:
            args["instruction"] = instruction
        return self.request("timeTravel", args)

    def disconnect(self) -> None:
        self.request("disconnect")
