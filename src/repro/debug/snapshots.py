"""Store-backed world snapshots, indexed by timeline position.

The time-travel debugger needs to restore the *entire* simulated world
— every process on every machine, plus the kernel-visible state CRIU
images do not carry — at arbitrary points of a recorded run. A
:class:`WorldSnapshot` captures that by reusing the checkpoint
machinery end to end: each live process is dumped with
:func:`~repro.criu.dump.dump_process` and ingested into a shared
:class:`~repro.store.CheckpointStore`, so the snapshot proper is just a
list of checkpoint ids plus a small "extras" sidecar. Because the
store is content-addressed, consecutive snapshots of a mostly-idle
world dedup to almost nothing, and a snapshot of *identical* state is
literally free (same manifest, same id).

The extras sidecar exists because :func:`~repro.criu.restore.
restore_process` deliberately normalizes state a migration wants reset
but a debugger must preserve exactly: thread statuses (restore forces
RUNNING; we put TRAPPED/STOPPED back), ``trap_pc``, per-thread
instruction counters, dead threads (never dumped), the lock table,
accumulated stdout, SIGSTOP state, instruction/cycle totals, tid/pid
allocators. Every one of those fields folds into the flight recorder's
machine digests, so a restore that dropped any of them would be
detectably wrong.

A :class:`SnapshotIndex` orders snapshots by timeline position
``(events_applied, micro)`` and answers "latest snapshot at or before
position p" — the seek primitive that makes reverse execution
O(snapshot gap) instead of O(run).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from ..criu.dump import dump_process
from ..criu.restore import restore_process
from ..errors import DebugError
from ..store import CheckpointStore
from ..vm.cpu import ThreadContext, ThreadStatus
from ..vm.kernel import Machine

#: timeline position: (journal events applied, instructions into the
#: next scheduling slice). Lexicographic order is execution order.
Position = Tuple[int, int]


def _thread_extras(thread: ThreadContext) -> Dict:
    return {
        "status": thread.status,
        "instr_count": thread.instr_count,
        "trap_pc": thread.trap_pc,
    }


def _dead_thread_state(thread: ThreadContext) -> Dict:
    return {
        "tid": thread.tid,
        "regs": list(thread.regs),
        "pc": thread.pc,
        "flags": thread.flags,
        "tp": thread.tp,
        "instr_count": thread.instr_count,
        "trap_pc": thread.trap_pc,
    }


class _ProcessSnapshot:
    """One process: a checkpoint id plus the state images drop."""

    __slots__ = ("pid", "checkpoint_id", "extras")

    def __init__(self, pid: int, checkpoint_id: str, extras: Dict):
        self.pid = pid
        self.checkpoint_id = checkpoint_id
        self.extras = extras


class WorldSnapshot:
    """Every machine's full state at one timeline position."""

    __slots__ = ("position", "machines")

    def __init__(self, position: Position):
        self.position = position
        #: per machine (in world order): machine extras + processes
        self.machines: List[Dict] = []

    @classmethod
    def capture(cls, position: Position, machines: List[Machine],
                store: CheckpointStore) -> "WorldSnapshot":
        """Dump the world into ``store``.

        Raises :class:`~repro.errors.CheckpointError` when any process
        is in an undumpable state (exited, no live threads) — callers
        skip the snapshot and rely on an earlier one.
        """
        snap = cls(position)
        for machine in machines:
            entry: Dict = {"next_pid": machine.next_pid, "processes": []}
            for pid in sorted(machine.processes):
                process = machine.processes[pid]
                images = dump_process(process, require_stopped=False)
                put = store.put(images)
                extras = {
                    "locks": dict(process.locks),
                    "output": list(process.output),
                    "instr_total": process.instr_total,
                    "cycle_total": process.cycle_total,
                    "stopped": process.stopped,
                    "next_tid": process.next_tid,
                    "heap_end": process.heap_end,
                    "threads": {t.tid: _thread_extras(t)
                                for t in process.threads.values()
                                if t.status != ThreadStatus.DEAD},
                    "dead_threads": [
                        _dead_thread_state(t)
                        for t in process.threads.values()
                        if t.status == ThreadStatus.DEAD],
                }
                entry["processes"].append(
                    _ProcessSnapshot(pid, put.checkpoint_id, extras))
            snap.machines.append(entry)
        return snap

    def restore(self, machines: List[Machine],
                store: CheckpointStore) -> None:
        """Materialize into ``machines`` (fresh, process-free, with the
        program binaries already installed in their tmpfs)."""
        if len(machines) != len(self.machines):
            raise DebugError(
                f"snapshot spans {len(self.machines)} machine(s), world "
                f"has {len(machines)}")
        for machine, entry in zip(machines, self.machines):
            for psnap in entry["processes"]:
                images = store.materialize(psnap.checkpoint_id)
                process = restore_process(machine, images, pid=psnap.pid,
                                          verify=False)
                extras = psnap.extras
                process.locks = dict(extras["locks"])
                process.output = list(extras["output"])
                process.instr_total = extras["instr_total"]
                process.cycle_total = extras["cycle_total"]
                process.stopped = extras["stopped"]
                process.heap_end = extras["heap_end"]
                for tid, textras in extras["threads"].items():
                    thread = process.threads[tid]
                    thread.status = textras["status"]
                    thread.instr_count = textras["instr_count"]
                    thread.trap_pc = textras["trap_pc"]
                for dead in extras["dead_threads"]:
                    thread = ThreadContext(dead["tid"], machine.isa)
                    thread.regs[:] = dead["regs"]
                    thread.pc = dead["pc"]
                    thread.flags = dead["flags"]
                    thread.tp = dead["tp"]
                    thread.instr_count = dead["instr_count"]
                    thread.trap_pc = dead["trap_pc"]
                    thread.status = ThreadStatus.DEAD
                    process.threads[dead["tid"]] = thread
                process.next_tid = extras["next_tid"]
            # after all restores: the allocator must not depend on how
            # many processes the snapshot happened to hold
            machine.next_pid = entry["next_pid"]


class SnapshotIndex:
    """Snapshots ordered by position, with bisecting lookups."""

    def __init__(self):
        self._positions: List[Position] = []
        self._snapshots: List[WorldSnapshot] = []

    def add(self, snapshot: WorldSnapshot) -> None:
        pos = snapshot.position
        i = bisect.bisect_left(self._positions, pos)
        if i < len(self._positions) and self._positions[i] == pos:
            # re-snapshot at the same position (several mutations at
            # one boundary): the later state wins
            self._snapshots[i] = snapshot
            return
        self._positions.insert(i, pos)
        self._snapshots.insert(i, snapshot)

    def at_or_before(self, position: Position) -> Optional[WorldSnapshot]:
        i = bisect.bisect_right(self._positions, position)
        return self._snapshots[i - 1] if i else None

    def positions(self) -> List[Position]:
        return list(self._positions)

    def __len__(self) -> int:
        return len(self._snapshots)
