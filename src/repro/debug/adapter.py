"""DAP request dispatch over a :class:`~repro.debug.session.DebugSession`.

The adapter is the protocol brain and owns no I/O: the server feeds it
one decoded request dict at a time and transmits whatever messages it
returns (the response, plus any events — ``initialized``, ``stopped``,
``terminated``). It is deliberately synchronous: the timeline is a
fixed recording, so every "run" request (continue, step, reverse)
completes before its response is written, and the matching ``stopped``
event simply follows the response on the wire — a scripted client can
treat the protocol as request/reply.

Identifier scheme (stateless, recomputed per stop):

* ``threadId``  = (machine_index + 1) * 1000000 + pid * 1000 + tid
* ``frameId``   = threadId * 100 + frame_index
* ``variablesReference`` = frameId * 10 + scope (1 locals, 2 registers)

Beyond the standard surface (breakpoints by source line, function,
instruction and data address; step/continue in both directions;
threads/stackTrace/scopes/variables; readMemory; evaluate) the adapter
speaks two custom requests: ``setQuantumBreakpoints`` (break at a
scheduling-slice index — the flight recorder's native coordinate) and
``timeTravel`` (report/seek the timeline position, used by the smoke
client and the benchmark).
"""

from __future__ import annotations

import base64
from typing import Dict, List, Optional, Tuple

from ..errors import DebugError, ReproError
from .session import DebugSession, StopInfo, ThreadRef

_SCOPE_LOCALS = 1
_SCOPE_REGISTERS = 2

#: DAP's closed ``stopped.reason`` vocabulary; the session's richer
#: reason survives in ``description``
_REASON_MAP = {
    "breakpoint": "breakpoint",
    "quantum": "breakpoint",
    "watchpoint": "data breakpoint",
    "step": "step",
    "entry": "entry",
    "end": "step",
}


def _thread_id(ref: ThreadRef) -> int:
    return (ref.machine_index + 1) * 1000000 + ref.pid * 1000 + ref.tid


def _split_thread_id(thread_id: int) -> Tuple[int, int, int]:
    return (thread_id // 1000000 - 1, thread_id // 1000 % 1000,
            thread_id % 1000)


class DebugAdapter:
    """One DAP conversation over one debug session."""

    def __init__(self, session: DebugSession):
        self.session = session
        self._seq = 0
        self._line_bps: set = set()
        self._func_bps: set = set()
        self._instr_bps: set = set()
        self.terminated = False

    # -- message plumbing ---------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _response(self, request: Dict, body: Optional[Dict] = None,
                  success: bool = True,
                  message: Optional[str] = None) -> Dict:
        response = {
            "seq": self._next_seq(),
            "type": "response",
            "request_seq": request.get("seq", 0),
            "command": request.get("command", ""),
            "success": success,
        }
        if body is not None:
            response["body"] = body
        if message is not None:
            response["message"] = message
        return response

    def _event(self, event: str, body: Optional[Dict] = None) -> Dict:
        message = {"seq": self._next_seq(), "type": "event",
                   "event": event}
        if body is not None:
            message["body"] = body
        return message

    def _stopped(self, stop: StopInfo) -> Dict:
        ref = self.session.focused_thread()
        body = {
            "reason": _REASON_MAP.get(stop.reason, "step"),
            "description": stop.reason,
            "allThreadsStopped": True,
            "text": stop.detail,
        }
        if ref is not None:
            body["threadId"] = _thread_id(ref)
        return self._event("stopped", body)

    # -- dispatch ------------------------------------------------------

    def handle(self, request: Dict) -> List[Dict]:
        """Process one request; return the messages to transmit."""
        command = request.get("command", "")
        handler = getattr(self, "_cmd_" + command, None)
        if handler is None:
            return [self._response(request, success=False,
                                   message=f"unsupported command "
                                           f"{command!r}")]
        try:
            return handler(request)
        except ReproError as exc:
            return [self._response(request, success=False,
                                   message=str(exc))]

    def _args(self, request: Dict) -> Dict:
        arguments = request.get("arguments")
        return arguments if isinstance(arguments, dict) else {}

    # -- lifecycle -----------------------------------------------------

    def _cmd_initialize(self, request: Dict) -> List[Dict]:
        capabilities = {
            "supportsConfigurationDoneRequest": True,
            "supportsStepBack": True,
            "supportsFunctionBreakpoints": True,
            "supportsInstructionBreakpoints": True,
            "supportsDataBreakpoints": True,
            "supportsReadMemoryRequest": True,
            "supportsEvaluateForHovers": True,
            "supportsRestartRequest": True,
        }
        return [self._response(request, capabilities),
                self._event("initialized")]

    def _cmd_launch(self, request: Dict) -> List[Dict]:
        return [self._response(request)]

    _cmd_attach = _cmd_launch

    def _cmd_configurationDone(self, request: Dict) -> List[Dict]:
        return [self._response(request),
                self._stopped(StopInfo("entry", self.session.position))]

    def _cmd_restart(self, request: Dict) -> List[Dict]:
        self.session.seek(self.session.start_position())
        return [self._response(request),
                self._stopped(StopInfo("entry", self.session.position))]

    def _cmd_disconnect(self, request: Dict) -> List[Dict]:
        self.terminated = True
        return [self._response(request), self._event("terminated")]

    _cmd_terminate = _cmd_disconnect

    def _cmd_pause(self, request: Dict) -> List[Dict]:
        # the recording is never actually running — always stopped
        return [self._response(request)]

    # -- breakpoints ---------------------------------------------------

    def _sync_pc_bps(self) -> None:
        self.session.pc_breakpoints = (self._line_bps | self._func_bps
                                       | self._instr_bps)

    def _cmd_setBreakpoints(self, request: Dict) -> List[Dict]:
        args = self._args(request)
        self._line_bps = set()
        out = []
        for bp in args.get("breakpoints", []):
            line = bp.get("line", 0)
            func, sites = self.session.resolve_line(line)
            for addr, arch, bound in sites:
                self._line_bps.add((addr, arch))
            verified = bool(sites)
            entry = {"verified": verified}
            if verified:
                entry["line"] = sites[0][2] if sites[0][2] else line
                entry["message"] = f"bound to entry of {func}()"
            else:
                entry["message"] = f"no function encloses line {line}"
            out.append(entry)
        self._sync_pc_bps()
        return [self._response(request, {"breakpoints": out})]

    def _cmd_setFunctionBreakpoints(self, request: Dict) -> List[Dict]:
        args = self._args(request)
        self._func_bps = set()
        out = []
        for bp in args.get("breakpoints", []):
            name = bp.get("name", "")
            sites = self.session.resolve_function(name)
            for addr, arch, bound in sites:
                self._func_bps.add((addr, arch))
            entry = {"verified": bool(sites)}
            if sites and sites[0][2]:
                entry["line"] = sites[0][2]
            if not sites:
                entry["message"] = f"no function {name!r}"
            out.append(entry)
        self._sync_pc_bps()
        return [self._response(request, {"breakpoints": out})]

    def _cmd_setInstructionBreakpoints(self,
                                       request: Dict) -> List[Dict]:
        args = self._args(request)
        self._instr_bps = set()
        out = []
        for bp in args.get("breakpoints", []):
            reference = str(bp.get("instructionReference", "0"))
            try:
                addr = int(reference, 0) + bp.get("offset", 0)
            except ValueError:
                out.append({"verified": False,
                            "message": f"bad address {reference!r}"})
                continue
            # no arch restriction: a raw address means "this pc
            # anywhere" — pass "addr@arch" to pin one ISA
            arch: Optional[str] = None
            if "@" in reference:
                base, _, arch_name = reference.partition("@")
                addr = int(base, 0) + bp.get("offset", 0)
                arch = arch_name
            self._instr_bps.add((addr, arch))
            out.append({"verified": True,
                        "instructionReference": hex(addr)})
        self._sync_pc_bps()
        return [self._response(request, {"breakpoints": out})]

    def _cmd_dataBreakpointInfo(self, request: Dict) -> List[Dict]:
        args = self._args(request)
        name = args.get("name", "")
        frame_id = args.get("frameId")
        ref, frame_index = self._frame_of(frame_id)
        if ref is None:
            return [self._response(request, {
                "dataId": None, "description": "no thread in focus"})]
        candidates = list(self.session.frame_variables(ref,
                                                       frame_index))
        global_var = self.session.global_variable(name, ref)
        if global_var is not None:
            candidates.append(global_var)
        for var in candidates:
            if var.name == name and var.address is not None:
                data_id = f"{ref.pid}:{var.address:#x}:{var.size}"
                return [self._response(request, {
                    "dataId": data_id,
                    "description": f"{name} @ {var.address:#x} "
                                   f"({var.size} bytes)",
                    "accessTypes": ["write"],
                })]
        return [self._response(request, {
            "dataId": None,
            "description": f"{name!r} has no stable address here"})]

    def _cmd_setDataBreakpoints(self, request: Dict) -> List[Dict]:
        args = self._args(request)
        self.session.clear_watchpoints()
        out = []
        for bp in args.get("dataBreakpoints", []):
            data_id = str(bp.get("dataId", ""))
            try:
                pid_s, addr_s, size_s = data_id.split(":")
                self.session.add_watchpoint(int(pid_s, 0),
                                            int(addr_s, 0),
                                            int(size_s, 0))
                out.append({"verified": True})
            except (ValueError, TypeError):
                out.append({"verified": False,
                            "message": f"bad dataId {data_id!r} "
                                       f"(want pid:addr:size)"})
        return [self._response(request, {"breakpoints": out})]

    def _cmd_setQuantumBreakpoints(self, request: Dict) -> List[Dict]:
        """Custom request: break at scheduling-slice indexes."""
        args = self._args(request)
        quanta = args.get("quanta", [])
        if not isinstance(quanta, list) or \
                not all(isinstance(q, int) for q in quanta):
            raise DebugError("setQuantumBreakpoints wants "
                             "{quanta: [int, ...]}")
        self.session.quantum_breakpoints = set(quanta)
        out = [{"verified": 0 <= q < self.session.total_slices,
                "quantum": q} for q in quanta]
        return [self._response(request, {"breakpoints": out})]

    # -- execution -----------------------------------------------------

    def _cmd_continue(self, request: Dict) -> List[Dict]:
        stop = self.session.continue_forward()
        return [self._response(request,
                               {"allThreadsContinued": True}),
                self._stopped(stop)]

    def _cmd_reverseContinue(self, request: Dict) -> List[Dict]:
        stop = self.session.reverse_continue()
        return [self._response(request), self._stopped(stop)]

    def _cmd_next(self, request: Dict) -> List[Dict]:
        stop = self.session.step()
        if stop is None:
            stop = StopInfo("end", self.session.position,
                            "at the end of the recording")
        return [self._response(request), self._stopped(stop)]

    _cmd_stepIn = _cmd_next
    _cmd_stepOut = _cmd_next

    def _cmd_stepBack(self, request: Dict) -> List[Dict]:
        stop = self.session.step_back()
        if stop is None:
            stop = StopInfo("entry", self.session.position,
                            "at the start of the recording")
        return [self._response(request), self._stopped(stop)]

    def _cmd_timeTravel(self, request: Dict) -> List[Dict]:
        """Custom request: report the timeline position, optionally
        seeking first (``{"instruction": N}`` or
        ``{"position": [ei, micro]}``)."""
        args = self._args(request)
        if "instruction" in args:
            self.session.seek_instr(int(args["instruction"]))
        elif "position" in args:
            ei, micro = args["position"]
            self.session.seek((int(ei), int(micro)))
        body = {
            "position": list(self.session.position),
            "instruction": self.session.instructions,
            "totalInstructions": self.session.total_instructions,
            "slice": self.session.slice_index,
            "totalSlices": self.session.total_slices,
            "snapshots": len(self.session.snapshots),
            "slicesReexecuted": self.session.slices_reexecuted,
            "exitCode": self.session.exit_code,
        }
        return [self._response(request, body)]

    # -- inspection ----------------------------------------------------

    def _cmd_threads(self, request: Dict) -> List[Dict]:
        threads = []
        for ref in self.session.threads():
            machine = self.session.machines[ref.machine_index]
            threads.append({
                "id": _thread_id(ref),
                "name": f"{machine.name}/{ref.isa} pid {ref.pid} "
                        f"tid {ref.tid} ({ref.status})",
            })
        return [self._response(request, {"threads": threads})]

    def _resolve_thread(self, thread_id: int) -> ThreadRef:
        for ref in self.session.threads():
            if _thread_id(ref) == thread_id:
                return ref
        raise DebugError(f"no thread {thread_id}")

    def _frame_of(self, frame_id: Optional[int]
                  ) -> Tuple[Optional[ThreadRef], int]:
        if frame_id is None:
            return self.session.focused_thread(), 0
        return self._resolve_thread(frame_id // 100), frame_id % 100

    def _cmd_stackTrace(self, request: Dict) -> List[Dict]:
        args = self._args(request)
        ref = self._resolve_thread(args.get("threadId", 0))
        frames = self.session.stack_frames(ref)
        start = args.get("startFrame", 0)
        levels = args.get("levels", 0) or len(frames)
        out = []
        for frame in frames[start:start + levels]:
            out.append({
                "id": _thread_id(ref) * 100 + frame.index,
                "name": frame.func or f"{frame.pc:#x}",
                "line": frame.line or 0,
                "column": 0,
                "instructionPointerReference": hex(frame.pc),
                "source": {"name": self.session.header.get(
                    "program", "program"), "sourceReference": 1},
            })
        return [self._response(request, {"stackFrames": out,
                                         "totalFrames": len(frames)})]

    def _cmd_source(self, request: Dict) -> List[Dict]:
        return [self._response(request, {
            "content": self.session.header.get("source", "")})]

    def _cmd_scopes(self, request: Dict) -> List[Dict]:
        args = self._args(request)
        frame_id = args.get("frameId", 0)
        scopes = [
            {"name": "Locals", "presentationHint": "locals",
             "variablesReference": frame_id * 10 + _SCOPE_LOCALS,
             "expensive": False},
            {"name": "Registers", "presentationHint": "registers",
             "variablesReference": frame_id * 10 + _SCOPE_REGISTERS,
             "expensive": False},
        ]
        return [self._response(request, {"scopes": scopes})]

    def _cmd_variables(self, request: Dict) -> List[Dict]:
        args = self._args(request)
        reference = args.get("variablesReference", 0)
        scope, frame_id = reference % 10, reference // 10
        ref, frame_index = self._frame_of(frame_id)
        if ref is None:
            return [self._response(request, {"variables": []})]
        if scope == _SCOPE_REGISTERS:
            values = self.session.registers(ref)
        else:
            values = self.session.frame_variables(ref, frame_index)
        out = []
        for var in values:
            entry = {"name": var.name, "value": var.display,
                     "variablesReference": 0,
                     "evaluateName": var.name}
            if var.location:
                entry["presentationHint"] = \
                    {"attributes": [var.location]}
            if var.address is not None:
                entry["memoryReference"] = hex(var.address)
            out.append(entry)
        return [self._response(request, {"variables": out})]

    def _cmd_evaluate(self, request: Dict) -> List[Dict]:
        args = self._args(request)
        ref, frame_index = self._frame_of(args.get("frameId"))
        var = self.session.evaluate(args.get("expression", ""),
                                    ref=ref, frame_index=frame_index)
        body = {"result": var.display, "variablesReference": 0}
        if var.address is not None:
            body["memoryReference"] = hex(var.address)
        return [self._response(request, body)]

    def _cmd_readMemory(self, request: Dict) -> List[Dict]:
        args = self._args(request)
        try:
            addr = int(str(args.get("memoryReference", "0")), 0)
        except ValueError:
            raise DebugError(f"bad memoryReference "
                             f"{args.get('memoryReference')!r}")
        addr += args.get("offset", 0)
        count = int(args.get("count", 0))
        data = self.session.read_memory(addr, count) if count else b""
        if data is None:
            return [self._response(request, {
                "address": hex(addr), "unreadableBytes": count,
                "data": ""})]
        return [self._response(request, {
            "address": hex(addr),
            "data": base64.b64encode(data).decode("ascii")})]
