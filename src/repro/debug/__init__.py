"""Time-travel debugger: a DAP server over the flight recorder.

A recorded journal is a complete, deterministic description of one
run — so it is also a debuggable artifact. ``repro-debug`` serves the
Debug Adapter Protocol over a recording, giving any DAP client (or
the bundled scripted one) breakpoints by source line, function,
instruction address and scheduling quantum; forward *and reverse*
step/continue; watchpoints located by value bisection over a snapshot
index; and stack/variable/register/memory inspection that is
byte-for-byte the original run's state — including across a cross-ISA
live migration, where frames re-decode against the destination ISA.

* :mod:`repro.debug.session` — the core: snapshot-backed seek over a
  re-derived timeline, stepping, breakpoints, reverse execution,
  state decoding.
* :mod:`repro.debug.snapshots` — store-backed world snapshots and the
  position index that makes reverse seeks O(snapshot gap).
* :mod:`repro.debug.source` — source-line → function-entry mapping
  over the journal's embedded DapperC source.
* :mod:`repro.debug.protocol` — DAP Content-Length framing.
* :mod:`repro.debug.adapter` — DAP request dispatch.
* :mod:`repro.debug.server` — asyncio TCP and stdio transports.
* :mod:`repro.debug.client` — a synchronous scripted client.
"""

from .adapter import DebugAdapter
from .client import DapClient
from .protocol import StreamDecoder, encode_message
from .session import DebugSession, StopInfo
from .snapshots import SnapshotIndex, WorldSnapshot
from .source import SourceMap

__all__ = [
    "DebugSession", "StopInfo", "DebugAdapter", "DapClient",
    "StreamDecoder", "encode_message", "SnapshotIndex",
    "WorldSnapshot", "SourceMap",
]
