"""Source-line mapping over the journal's embedded DapperC text.

Journals are self-contained: the header embeds the program's DapperC
source, so the debugger can serve source content and accept
line-number breakpoints without any file on disk. The toolchain emits
no per-statement line table, but it does emit one *entry equivalence
point* per function (``.stackmaps``), and DapperC's surface syntax
makes function extents trivially recoverable: every definition opens
with ``func <name>(...)`` at column 0 and runs until the next one.

A line breakpoint therefore resolves to the *enclosing function's
entry eqpoint* — the first stable, named, live-value-bearing address
executed on entry — which is also exactly where the Dapper runtime
itself parks threads. The adapter reports the actually-bound line
back to the client, DAP-style.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

_FUNC_RE = re.compile(r"^\s*func\s+([A-Za-z_]\w*)\s*\(")


class SourceMap:
    """Function extents of one DapperC source text (1-based lines)."""

    def __init__(self, source: str):
        self.source = source
        self.lines = source.splitlines()
        #: [(name, first_line, last_line)] in order of definition
        self.functions: List[Tuple[str, int, int]] = []
        starts: List[Tuple[str, int]] = []
        for lineno, line in enumerate(self.lines, start=1):
            match = _FUNC_RE.match(line)
            if match:
                starts.append((match.group(1), lineno))
        for i, (name, first) in enumerate(starts):
            last = (starts[i + 1][1] - 1 if i + 1 < len(starts)
                    else len(self.lines))
            self.functions.append((name, first, last))
        self._line_of: Dict[str, int] = {name: first for name, first, _
                                         in self.functions}

    def function_at_line(self, line: int) -> Optional[str]:
        """Name of the function whose definition encloses ``line``."""
        for name, first, last in self.functions:
            if first <= line <= last:
                return name
        return None

    def line_of(self, func: str) -> Optional[int]:
        """First line of ``func``'s definition."""
        return self._line_of.get(func)
