"""Shared system ABI constants: syscall numbers and reserved names.

These sit above the compiler *and* the simulated kernel, so they live in
a leaf module both can import.
"""

from __future__ import annotations

# Syscall numbers (same on both ISAs; the number register and argument
# registers differ per ABI).
SYS_PRINT_INT = 1
SYS_EXIT = 2
SYS_SBRK = 3
SYS_SPAWN = 4
SYS_TRY_JOIN = 5
SYS_TRY_LOCK = 6
SYS_UNLOCK = 7
SYS_YIELD = 8
SYS_THREAD_EXIT = 9
SYS_PRINT_CHAR = 10
SYS_GETTID = 11
SYS_NOW = 12

SYSCALL_NAMES = {
    SYS_PRINT_INT: "print_int",
    SYS_EXIT: "exit",
    SYS_SBRK: "sbrk",
    SYS_SPAWN: "spawn",
    SYS_TRY_JOIN: "try_join",
    SYS_TRY_LOCK: "try_lock",
    SYS_UNLOCK: "unlock",
    SYS_YIELD: "yield",
    SYS_THREAD_EXIT: "thread_exit",
    SYS_PRINT_CHAR: "print_char",
    SYS_GETTID: "gettid",
    SYS_NOW: "now",
}

#: Reserved global holding the Dapper transformation flag. The runtime
#: monitor sets it with PTRACE_POKEDATA; every inline checker reads it.
DAPPER_FLAG_SYMBOL = "__dapper_flag"

#: Reserved TLS slot 0: per-thread checker-disable flag. A thread holding
#: a lock has it set, so it is never parked inside a critical section
#: (paper §III-B).
TLS_DISABLE_OFFSET = 0

#: First TLS offset available to user `tls` variables.
TLS_USER_BASE = 8

#: Names of the runtime-prelude functions the compiler injects.
RT_START = "_start"
RT_POLL = "__poll"
RT_THREAD_EXIT = "__thread_exit"
