"""The Dapper runtime monitor (paper §III-B, §III-D2a).

Workflow, mirroring the paper exactly:

1. gather thread ids from the (simulated) /proc,
2. ``PTRACE_ATTACH`` to the target, ``PTRACE_POKEDATA`` the global
   transformation flag,
3. one helper monitor per thread waits for its tracee's SIGTRAP — the
   inline checker raises it at the next equivalence point; threads inside
   lock-protected critical sections have their checker disabled and park
   at the first equivalence point after release,
4. verify each parked pc against the stackmap (the paper's defence
   against maliciously induced SIGTRAPs),
5. ``PTRACE_DETACH`` and ``SIGSTOP`` the whole process,
6. invoke CRIU to dump, then hand the images to the rewriter.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .. import sysabi
from ..binfmt.stackmaps import KIND_ENTRY
from ..criu.dump import dump_process
from ..criu.images import ImageSet
from ..criu.lazy import PageServer, dump_process_lazy
from ..errors import NotAtEquivalencePoint
from ..vm.cpu import ThreadStatus
from ..vm.kernel import Machine, Process
from ..vm.ptrace import Tracer


class DapperRuntime:
    """Controls when and how a target process is transformed."""

    def __init__(self, machine: Machine, process: Process):
        self.machine = machine
        self.process = process
        self._flag_addr = process.binary.symtab.address_of(
            sysabi.DAPPER_FLAG_SYMBOL)

    # -- pausing ------------------------------------------------------------

    def pause_at_equivalence_points(self,
                                    max_steps: int = 20_000_000) -> List[int]:
        """Drive the process until every thread is parked; SIGSTOP it.

        Returns the parked thread ids.
        """
        process = self.process
        tracer = Tracer(self.machine)
        tracer.attach_all(process)                       # PTRACE_ATTACH
        tracer.poke_data(self._flag_addr, 1)             # PTRACE_POKEDATA
        tids = tracer.wait_all_trapped(max_steps)        # helper monitors
        self._verify_at_equivalence_points(tids)
        tracer.detach_all()                              # PTRACE_DETACH
        self.machine.sigstop(process)                    # SIGSTOP
        return tids

    def _verify_at_equivalence_points(self, tids: List[int]) -> None:
        """The paper's check: a SIGTRAP only counts if the thread really
        sits at a stackmap-recorded equivalence point."""
        stackmaps = self.process.binary.stackmaps
        for tid in tids:
            thread = self.process.threads[tid]
            point = stackmaps.by_addr.get(thread.pc)
            if point is None or point.kind != KIND_ENTRY:
                raise NotAtEquivalencePoint(
                    f"thread {tid} parked at {thread.pc:#x}, which is not "
                    f"an equivalence point")

    # -- checkpointing --------------------------------------------------------

    def checkpoint(self, extra: Optional[dict] = None) -> ImageSet:
        """CRIU-dump the SIGSTOPped process (into tmpfs-resident images).

        ``extra`` is forwarded to the checkpoint plugins (journaled
        ``connections`` for the sockets plugin, ``tmpfs_paths`` for the
        tmpfs plugin)."""
        self._clear_flag()
        return dump_process(self.process, extra=extra)

    def checkpoint_lazy(self, extra: Optional[dict] = None
                        ) -> Tuple[ImageSet, PageServer]:
        self._clear_flag()
        return dump_process_lazy(self.process, extra=extra)

    def clear_flag(self) -> None:
        """Zero ``__dapper_flag`` in the paused process before dumping so
        neither the dump nor the lazy page server carries a set flag —
        otherwise the restored process would immediately re-trap at its
        next equivalence point. Public because external dumpers (the
        checkpoint store's :class:`~repro.store.IncrementalCheckpointer`)
        must do the same before calling ``dump_process`` directly."""
        self.process.aspace.write_u64(self._flag_addr, 0)

    _clear_flag = clear_flag

    # -- resuming the (source) process -----------------------------------------

    def resume(self) -> None:
        """Clear the flag and let the source process continue (used when
        the policy transforms in place, e.g. periodic re-randomization)."""
        self.process.aspace.write_u64(self._flag_addr, 0)
        for thread in self.process.threads.values():
            if thread.status == ThreadStatus.TRAPPED:
                thread.status = ThreadStatus.RUNNING
                thread.trap_pc = None
        self.machine.sigcont(self.process)

    def kill_source(self) -> None:
        """Tear the source process down after a successful migration."""
        self.machine.kill(self.process)

    # -- one-call convenience ---------------------------------------------------

    def pause_and_checkpoint(self, lazy: bool = False,
                             max_steps: int = 20_000_000):
        self.pause_at_equivalence_points(max_steps)
        if lazy:
            return self.checkpoint_lazy()
        return self.checkpoint()
