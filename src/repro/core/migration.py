"""End-to-end migration pipeline (paper §IV-A, Fig. 5/7).

One :class:`MigrationPipeline` owns a source and a destination machine
(with both architectures' binaries installed, as in the paper's cluster)
and executes the four stages the paper measures:

1. **checkpoint** — pause at equivalence points + CRIU dump into tmpfs,
2. **recode** — rewrite the image set with the cross-ISA policy (the
   paper notes the rewrite can run on either node; the recode node is
   configurable and defaults to the source),
3. **scp** — copy the transformed images over the network link,
4. **restore** — vanilla or post-copy (lazy) restoration on the target.

Each stage reports a simulated wall-clock latency from the calibrated
cost model, driven by the *measured* image sizes / frame counts / page
counts of the run.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..compiler.driver import CompiledProgram
from ..criu.images import ImageSet
from ..criu.lazy import PageServer, restore_process_lazy
from ..criu.restore import restore_process
from ..errors import MigrationError
from ..store import (CheckpointStore, StorePageServer, plan_transfer,
                     ship)
from ..vm.kernel import Machine, Process
from .costs import LinkProfile, NodeProfile, infiniband_link, profile_for_arch
from .policies.cross_isa import CrossIsaPolicy
from .rewriter import ProcessRewriter
from .runtime import DapperRuntime


class MigrationResult:
    """Everything one migration produced."""

    def __init__(self, *, process: Process, images: ImageSet,
                 stage_seconds: Dict[str, float], stats: Dict,
                 output_before: str, page_server: Optional[PageServer],
                 lazy: bool):
        self.process = process
        self.images = images
        self.stage_seconds = dict(stage_seconds)
        self.stats = dict(stats)
        self.output_before = output_before
        self.page_server = page_server
        self.lazy = lazy

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def combined_output(self) -> str:
        return self.output_before + self.process.stdout()

    def indirect_restore_seconds(self, link: LinkProfile) -> float:
        """Post-copy page-retrieval cost concealed in post-migration
        execution (estimated from the page server's log, as the paper
        does for Redis)."""
        if self.page_server is None:
            return 0.0
        return link.page_fault_seconds(self.page_server.pages_served)

    def __repr__(self) -> str:
        stages = ", ".join(f"{k}={v * 1e3:.1f}ms"
                           for k, v in self.stage_seconds.items())
        return f"<MigrationResult {'lazy ' if self.lazy else ''}{stages}>"


def exe_path_for(program_name: str, arch: str) -> str:
    return f"/bin/{program_name}.{arch}"


def install_program(machine: Machine, program: CompiledProgram) -> None:
    """Install both architectures' binaries (the paper keeps both on every
    node so the target arch is chosen by the executable, not the host)."""
    for arch, binary in program.binaries.items():
        machine.tmpfs.write(exe_path_for(program.name, arch),
                            binary.to_bytes())


class MigrationPipeline:
    def __init__(self, src_machine: Machine, dst_machine: Machine,
                 program: CompiledProgram,
                 link: Optional[LinkProfile] = None,
                 src_profile: Optional[NodeProfile] = None,
                 dst_profile: Optional[NodeProfile] = None,
                 recode_profile: Optional[NodeProfile] = None,
                 byte_scale: float = 1.0,
                 target_footprint_bytes: Optional[float] = None,
                 use_store: bool = False,
                 src_store: Optional[CheckpointStore] = None,
                 dst_store: Optional[CheckpointStore] = None,
                 store_codec: str = "zlib"):
        self.src_machine = src_machine
        self.dst_machine = dst_machine
        self.program = program
        self.link = link or infiniband_link()
        self.src_profile = src_profile or profile_for_arch(
            src_machine.isa.name)
        self.dst_profile = dst_profile or profile_for_arch(
            dst_machine.isa.name)
        # The paper: "we can always transform the process image on the
        # most powerful machine" — default to recoding at the source.
        self.recode_profile = recode_profile or self.src_profile
        # Stage-latency inputs are measured image bytes multiplied by
        # byte_scale; the benchmark harnesses set it to
        # nominal_footprint / measured_footprint so latencies reflect
        # full-size (class-B) checkpoints while all rewriting stays real.
        self.byte_scale = byte_scale
        # Alternative to byte_scale: give the nominal full-size resident
        # footprint (e.g. AppSpec.class_b_footprint) and the scale is
        # derived from the process's actual populated memory at pause
        # time — consistent between vanilla and lazy runs.
        self.target_footprint_bytes = target_footprint_bytes
        # Content-addressed transfer: when on, recoded images are put
        # into the source node's checkpoint store and only the chunks
        # the destination store is missing cross the link. Pass
        # long-lived stores to model warm nodes — a destination that
        # has seen the program (or one sharing pages with it) receives
        # a small fraction of a full image copy.
        self.use_store = use_store
        if use_store:
            self.src_store = src_store or CheckpointStore(
                codec=store_codec)
            self.dst_store = dst_store or CheckpointStore(
                codec=store_codec)
        else:
            self.src_store = src_store
            self.dst_store = dst_store
        install_program(src_machine, program)
        install_program(dst_machine, program)

    def start(self) -> Process:
        return self.src_machine.spawn_process(
            exe_path_for(self.program.name, self.src_machine.isa.name))

    # -- the pipeline ------------------------------------------------------------

    def migrate(self, process: Process, lazy: bool = False,
                max_pause_steps: int = 20_000_000) -> MigrationResult:
        if process.machine is not self.src_machine:
            raise MigrationError("process does not run on the source machine")
        src_arch = self.src_machine.isa.name
        dst_arch = self.dst_machine.isa.name
        stage_seconds: Dict[str, float] = {}

        # 1. checkpoint
        runtime = DapperRuntime(self.src_machine, process)
        runtime.pause_at_equivalence_points(max_pause_steps)
        output_before = process.stdout()
        footprint_bytes = process.aspace.populated_bytes()
        page_server = None
        if lazy:
            images, page_server = runtime.checkpoint_lazy()
        else:
            images = runtime.checkpoint()
        threads = len(images.inventory().tids)
        scale = self.byte_scale
        if self.target_footprint_bytes:
            scale = max(1.0, self.target_footprint_bytes
                        / max(1, footprint_bytes))

        def scaled(nbytes: int) -> int:
            return int(nbytes * scale)
        stage_seconds["checkpoint"] = self.src_profile.checkpoint_seconds(
            scaled(images.total_bytes()), threads)

        # 2. recode
        policy = CrossIsaPolicy(
            self.program.binary(src_arch), self.program.binary(dst_arch),
            exe_path_for(self.program.name, dst_arch))
        report = ProcessRewriter().rewrite(images, policy)[0]
        stage_seconds["recode"] = self.recode_profile.recode_seconds(
            scaled(report.bytes_before), report.stats["frames"])

        # 3. transfer — plain scp of the images, or (use_store) a
        # content-addressed delta: put into the source store, ship only
        # the chunks missing at the destination, materialize there.
        stats = dict(report.stats)
        if self.use_store:
            images, page_server = self._store_transfer(
                process, images, page_server, stage_seconds, scaled,
                stats)
        else:
            images.save(self.dst_machine.tmpfs, f"/images/{process.pid}")
            stage_seconds["scp"] = self.link.transfer_seconds(
                scaled(images.total_bytes()))

        # 4. restore (+ tear down the source)
        runtime.kill_source()
        if lazy:
            restored = restore_process_lazy(self.dst_machine, images,
                                            page_server)
            # Only the minimal execution context is loaded up front (the
            # paper measures ≈8 ms); missing pages are served on demand
            # and show up as the *indirect* restoration cost instead.
            stage_seconds["restore"] = self.dst_profile.restore_seconds(
                scaled(images.total_bytes()), threads)
        else:
            restored = restore_process(self.dst_machine, images)
            stage_seconds["restore"] = self.dst_profile.restore_seconds(
                scaled(images.total_bytes()), threads)

        return MigrationResult(
            process=restored, images=images, stage_seconds=stage_seconds,
            stats=stats, output_before=output_before,
            page_server=page_server, lazy=lazy)

    def _store_transfer(self, process: Process, images: ImageSet,
                        page_server: Optional[PageServer],
                        stage_seconds: Dict[str, float], scaled,
                        stats: Dict):
        """Store-backed stage 3. Returns the (materialized) image set
        the destination restores from and the (possibly store-backed)
        page server."""
        full_bytes = images.total_bytes()
        put = self.src_store.put(images)
        # Chunking + hashing runs at checkpoint-write speed on the
        # source node; it replaces writing the image files out twice.
        stage_seconds["store"] = (scaled(full_bytes)
                                  / self.src_profile.checkpoint_bytes_per_s)
        plan = plan_transfer(self.src_store, self.dst_store,
                             put.checkpoint_id, self.link)
        shipped = ship(self.src_store, self.dst_store, plan)
        stage_seconds["scp"] = self.link.transfer_seconds(scaled(shipped))

        images_dst = self.dst_store.materialize(put.checkpoint_id)
        images_dst.save(self.dst_machine.tmpfs, f"/images/{process.pid}")

        if page_server is not None:
            # Post-copy + store: the left-behind pages live in the
            # source store too, so the page server serves by digest and
            # shares physical pages with every checkpoint.
            digests = {vaddr: self.src_store.chunks.put(data)
                       for vaddr, data in page_server.pending_pages().items()}
            page_server = StorePageServer(
                digests, self.src_store,
                node_name=page_server.node_name,
                log_limit=page_server.log_limit)

        stats["store"] = {
            "checkpoint": put.checkpoint_id,
            "new_chunks": put.new_chunks,
            "dup_chunks": put.dup_chunks,
            "chunks_total": plan.chunks_total,
            "chunks_shipped": len(plan.chunks_needed),
            "bytes_shipped": shipped,
            "bytes_full_copy": full_bytes,
            "savings": 1.0 - (shipped / full_bytes) if full_bytes else 0.0,
            "dedup_ratio": self.src_store.stats()["dedup_ratio"],
        }
        recorder = getattr(self.src_machine, "recorder", None)
        if recorder is not None:
            # Store events are content-derived, hence deterministic:
            # replayed store-backed migrations journal identically.
            from ..replay.journal import EV_STORE
            recorder.on_event(EV_STORE, pid=process.pid,
                              label=f"put:{put.checkpoint_id[:16]}",
                              a=put.new_chunks,
                              b=put.new_physical_bytes)
            recorder.on_event(EV_STORE, pid=process.pid,
                              label=(f"plan:{self.src_machine.name}->"
                                     f"{self.dst_machine.name}"),
                              a=len(plan.chunks_needed), b=shipped)
        return images_dst, page_server

    # -- convenience ----------------------------------------------------------------

    def run_and_migrate(self, warmup_steps: int, lazy: bool = False,
                        max_total_steps: int = 50_000_000
                        ) -> MigrationResult:
        """Start the program, run ``warmup_steps``, migrate, run to exit."""
        process = self.start()
        self.src_machine.step_all(warmup_steps)
        if process.exited:
            raise MigrationError(
                "process finished before the migration point; lower "
                "warmup_steps")
        result = self.migrate(process, lazy=lazy)
        self.dst_machine.run_process(result.process, max_total_steps)
        return result
