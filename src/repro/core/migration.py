"""End-to-end migration pipeline (paper §IV-A, Fig. 5/7).

One :class:`MigrationPipeline` owns a source and a destination machine
(with both architectures' binaries installed, as in the paper's cluster)
and executes the four stages the paper measures:

1. **checkpoint** — pause at equivalence points + CRIU dump into tmpfs,
2. **recode** — rewrite the image set with the cross-ISA policy (the
   paper notes the rewrite can run on either node; the recode node is
   configurable and defaults to the source),
3. **scp** — copy the transformed images over the network link,
4. **verify** — the restore guard: the arrived image set runs the
   multi-pass :class:`~repro.verify.ImageVerifier` against the
   destination binary and the sender's per-page digest manifest;
   clean-page divergence is auto-repaired in place, anything
   unrepairable is quarantined on the destination
   (``/quarantine/<id>`` with a machine-readable diagnosis) and the
   migration rolls back to the source,
5. **restore** — vanilla or post-copy (lazy) restoration on the target.

Each stage reports a simulated wall-clock latency from the calibrated
cost model, driven by the *measured* image sizes / frame counts / page
counts of the run.

**Transactional semantics.** With a chaos ``injector`` attached,
``migrate`` becomes a staged transaction: every stage retries under a
deterministic exponential backoff when an injected fault (or an
integrity failure it provokes) fires, arriving images are re-verified
against the source content digest, a post-copy page-server death
degrades gracefully to a pre-copy of the remaining pages, and an
exhausted retry budget **rolls back to the source** — the destination's
partial state is swept (image tree removed, orphan store chunks GC'd)
and the paused source process resumes as if the migration was never
attempted. The source is only torn down *after* a successful restore,
so at every instant exactly one runnable copy of the process exists.
Without an injector none of this machinery runs and the pipeline is
byte-identical to the fault-free fast path.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..compiler.driver import CompiledProgram
from ..criu.images import ImageSet
from ..criu.lazy import PageServer, restore_process_lazy
from ..criu.restore import restore_process
from ..errors import (InjectedFault, IntegrityError, MigrationError,
                      MigrationRollback, PageServerDead, QuarantinedImage,
                      ReproError, StoreError)
from ..mem.paging import PAGE_SIZE
from ..store import (CheckpointStore, StorePageServer, plan_transfer,
                     ship)
from ..verify import ImageVerifier, Quarantine, image_page_digests
from ..vm.kernel import Machine, Process
from .costs import (LinkProfile, MigrationCostModel, NodeProfile,
                    infiniband_link, profile_for_arch)
from .policies.cross_isa import CrossIsaPolicy
from .rewriter import ProcessRewriter
from .runtime import DapperRuntime

#: exception classes one transactional stage attempt may absorb and retry
RETRYABLE = (InjectedFault, IntegrityError, StoreError)


class MigrationResult:
    """Everything one migration produced."""

    def __init__(self, *, process: Process, images: ImageSet,
                 stage_seconds: Dict[str, float], stats: Dict,
                 output_before: str, page_server: Optional[PageServer],
                 lazy: bool):
        self.process = process
        self.images = images
        self.stage_seconds = dict(stage_seconds)
        self.stats = dict(stats)
        self.output_before = output_before
        self.page_server = page_server
        self.lazy = lazy
        #: hold_source=True migrations keep the paused source alive
        #: until MigrationPipeline.commit/abort decides its fate
        self.held_runtime = None
        self.held_ctx: Optional[Dict] = None

    @property
    def held(self) -> bool:
        """True while the source is still paused awaiting commit/abort
        (two-phase group migrations)."""
        return self.held_runtime is not None

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def combined_output(self) -> str:
        return self.output_before + self.process.stdout()

    def indirect_restore_seconds(self, link: LinkProfile) -> float:
        """Post-copy page-retrieval cost concealed in post-migration
        execution (estimated from the page server's log, as the paper
        does for Redis)."""
        if self.page_server is None:
            return 0.0
        return link.page_fault_seconds(self.page_server.pages_served)

    def __repr__(self) -> str:
        stages = ", ".join(f"{k}={v * 1e3:.1f}ms"
                           for k, v in self.stage_seconds.items())
        return f"<MigrationResult {'lazy ' if self.lazy else ''}{stages}>"


def exe_path_for(program_name: str, arch: str) -> str:
    return f"/bin/{program_name}.{arch}"


def install_program(machine: Machine, program: CompiledProgram) -> None:
    """Install both architectures' binaries (the paper keeps both on every
    node so the target arch is chosen by the executable, not the host)."""
    for arch, binary in program.binaries.items():
        machine.tmpfs.write(exe_path_for(program.name, arch),
                            binary.to_bytes())


class MigrationPipeline:
    def __init__(self, src_machine: Machine, dst_machine: Machine,
                 program: CompiledProgram,
                 link: Optional[LinkProfile] = None,
                 src_profile: Optional[NodeProfile] = None,
                 dst_profile: Optional[NodeProfile] = None,
                 recode_profile: Optional[NodeProfile] = None,
                 byte_scale: float = 1.0,
                 target_footprint_bytes: Optional[float] = None,
                 use_store: bool = False,
                 src_store: Optional[CheckpointStore] = None,
                 dst_store: Optional[CheckpointStore] = None,
                 store_codec: str = "zlib",
                 network=None,
                 injector=None,
                 retry_budget: int = 3,
                 backoff_base_s: float = 0.05,
                 arrival_check: bool = True,
                 dump_extra=None):
        self.src_machine = src_machine
        self.dst_machine = dst_machine
        self.program = program
        # A Network pins the pipeline to the *registered* topology: the
        # strict lookup raises ClusterError on an unregistered pair
        # instead of silently migrating over the default link.
        self.network = network
        if link is not None:
            self.link = link
        elif network is not None:
            self.link = network.link_between(src_machine.name,
                                             dst_machine.name, strict=True)
        else:
            self.link = infiniband_link()
        self.src_profile = src_profile or profile_for_arch(
            src_machine.isa.name)
        self.dst_profile = dst_profile or profile_for_arch(
            dst_machine.isa.name)
        # The paper: "we can always transform the process image on the
        # most powerful machine" — default to recoding at the source.
        self.recode_profile = recode_profile or self.src_profile
        # Every stage latency below is priced through the shared cost
        # model — the same formulas the fleet's concurrent migration
        # scheduler uses for its modeled migrations.
        self.cost_model = MigrationCostModel(self.src_profile,
                                             self.dst_profile, self.link,
                                             recode=self.recode_profile)
        # Stage-latency inputs are measured image bytes multiplied by
        # byte_scale; the benchmark harnesses set it to
        # nominal_footprint / measured_footprint so latencies reflect
        # full-size (class-B) checkpoints while all rewriting stays real.
        self.byte_scale = byte_scale
        # Alternative to byte_scale: give the nominal full-size resident
        # footprint (e.g. AppSpec.class_b_footprint) and the scale is
        # derived from the process's actual populated memory at pause
        # time — consistent between vanilla and lazy runs.
        self.target_footprint_bytes = target_footprint_bytes
        # Content-addressed transfer: when on, recoded images are put
        # into the source node's checkpoint store and only the chunks
        # the destination store is missing cross the link. Pass
        # long-lived stores to model warm nodes — a destination that
        # has seen the program (or one sharing pages with it) receives
        # a small fraction of a full image copy.
        self.use_store = use_store
        if use_store:
            self.src_store = src_store or CheckpointStore(
                codec=store_codec)
            self.dst_store = dst_store or CheckpointStore(
                codec=store_codec)
        else:
            self.src_store = src_store
            self.dst_store = dst_store
        # Chaos: a FaultInjector turns migrate() into the staged
        # transaction described in the module docstring. retry_budget is
        # attempts per stage; attempt k backs off
        # backoff_base_s * 2**(k-1) simulated seconds before retrying.
        self.injector = injector
        self.retry_budget = max(1, int(retry_budget))
        self.backoff_base_s = backoff_base_s
        # The in-stage arrival digest check retries a corrupted copy
        # before the verifier ever sees it. Chaos harnesses turn it off
        # (verify-gate mode) so injected corruption provably reaches —
        # and is caught by — the restore guard itself.
        self.arrival_check = arrival_check
        # Extra per-resource dump payloads for the checkpoint plugins:
        # a callable (process -> dict) evaluated at dump time. The group
        # layer uses it to journal each member's in-flight connections
        # into the new sockets.img section.
        self.dump_extra = dump_extra
        install_program(src_machine, program)
        install_program(dst_machine, program)

    def start(self) -> Process:
        return self.src_machine.spawn_process(
            exe_path_for(self.program.name, self.src_machine.isa.name))

    # -- transactional machinery -------------------------------------------------

    def _txn_stage(self, stage: str, txn: Dict, ctx: Dict, fn,
                   cleanup=None):
        """Run one stage under the retry budget.

        Without an injector this is a plain call — the fault-free path
        carries no transaction bookkeeping at all. With one, a retryable
        failure triggers ``cleanup`` (sweep partial destination state),
        a deterministic exponential backoff, and another attempt; an
        exhausted budget rolls the whole migration back to the source.
        """
        if self.injector is None:
            return fn()
        attempts = 0
        while True:
            attempts += 1
            txn["attempts"][stage] = attempts
            try:
                return fn()
            except QuarantinedImage as exc:
                # The verifier's verdict is a pure function of the image
                # bytes — retrying cannot succeed, so an unrepairable
                # image rolls back immediately (the quarantined copy and
                # its diagnosis survive the destination sweep).
                txn["errors"].append(f"{stage}#{attempts}: {exc}")
                self._rollback(stage, attempts, txn, ctx, exc)
            except RETRYABLE as exc:
                txn["errors"].append(f"{stage}#{attempts}: {exc}")
                if cleanup is not None:
                    cleanup()
                if attempts >= self.retry_budget:
                    self._rollback(stage, attempts, txn, ctx, exc)
                backoff = self.backoff_base_s * (2 ** (attempts - 1))
                txn["backoff_seconds"] += backoff

    def _rollback(self, stage: str, attempts: int, txn: Dict, ctx: Dict,
                  exc: BaseException) -> None:
        """Undo the half-migration and resume the source.

        The destination's image tree is removed, a checkpoint this
        migration adopted into the destination store is deleted and its
        now-orphaned chunks GC'd, and the paused source process is
        resumed — it continues exactly where it stopped. Raises
        :class:`MigrationRollback` carrying the transaction record.
        """
        txn["rolled_back"] = True
        txn["rollback_stage"] = stage
        dst_fs = self.dst_machine.tmpfs
        for path in list(dst_fs.listdir(ctx["dst_prefix"])):
            dst_fs.remove(path)
        cid = ctx.get("dst_checkpoint")
        if (cid is not None and self.dst_store is not None
                and not ctx.get("dst_had_checkpoint")
                and cid in self.dst_store):
            self.dst_store.delete(cid)
        if self.dst_store is not None:
            chunks_freed, bytes_freed = self.dst_store.gc()
            txn["gc"] = {"chunks": chunks_freed, "bytes": bytes_freed}
        ctx["runtime"].resume()
        if self.injector is not None:
            self.injector.note("rollback", stage,
                               f"after {attempts} attempt(s)", a=attempts)
        raise MigrationRollback(
            f"migration stage {stage!r} failed after {attempts} "
            f"attempt(s); rolled back to source ({exc})",
            stage=stage, attempts=attempts, txn=txn) from exc

    # -- the pipeline ------------------------------------------------------------

    def migrate(self, process: Process, lazy: bool = False,
                max_pause_steps: int = 20_000_000,
                hold_source: bool = False) -> MigrationResult:
        """Migrate ``process`` to the destination machine.

        With ``hold_source=True`` the pipeline stops one step short of
        done: the process is restored on the destination but the paused
        source is **not** torn down — the caller must settle the
        transaction with :meth:`commit` (kill the source) or
        :meth:`abort` (kill the destination copy, sweep its images, and
        resume the source at the cut). This is the per-member building
        block of two-phase group migrations: no source dies until every
        member of the group has restored.
        """
        if process.machine is not self.src_machine:
            raise MigrationError("process does not run on the source machine")
        src_arch = self.src_machine.isa.name
        dst_arch = self.dst_machine.isa.name
        injector = self.injector
        stage_seconds: Dict[str, float] = {}
        txn: Dict = {"attempts": {}, "errors": [],
                     "backoff_seconds": 0.0, "rolled_back": False,
                     "fallback": False}

        # Pausing happens once, outside the transaction: it advances the
        # process to an equivalence point, which is not a retryable step.
        runtime = DapperRuntime(self.src_machine, process)
        runtime.pause_at_equivalence_points(max_pause_steps)
        output_before = process.stdout()
        footprint_bytes = process.aspace.populated_bytes()
        ctx: Dict = {"runtime": runtime,
                     "dst_prefix": f"/images/{process.pid}",
                     "dst_checkpoint": None, "dst_had_checkpoint": False}

        # 1. checkpoint (a dump only reads the paused process, so a node
        # crash mid-dump retries cleanly)
        def _checkpoint():
            if injector is not None:
                injector.node_fault("checkpoint", self.src_machine.name)
            extra = (self.dump_extra(process)
                     if self.dump_extra is not None else None)
            if lazy:
                return runtime.checkpoint_lazy(extra=extra)
            return runtime.checkpoint(extra=extra), None
        images, page_server = self._txn_stage("checkpoint", txn, ctx,
                                              _checkpoint)
        threads = len(images.inventory().tids)
        scale = self.byte_scale
        if self.target_footprint_bytes:
            scale = max(1.0, self.target_footprint_bytes
                        / max(1, footprint_bytes))

        def scaled(nbytes: int) -> int:
            return int(nbytes * scale)
        stage_seconds["checkpoint"] = self.cost_model.checkpoint_seconds(
            scaled(images.total_bytes()), threads)

        # 2. recode — skipped when the placement shares the source ISA
        # (e.g. a same-ISA member of a split group placement): the dump
        # ships verbatim.
        if src_arch == dst_arch:
            stats: Dict = {"frames": 0, "same_isa": True}
            stage_seconds["recode"] = 0.0
        else:
            policy = CrossIsaPolicy(
                self.program.binary(src_arch),
                self.program.binary(dst_arch),
                exe_path_for(self.program.name, dst_arch))

            def _recode():
                if injector is not None:
                    injector.node_fault("recode", self.src_machine.name)
                return ProcessRewriter().rewrite(images, policy)[0]
            report = self._txn_stage("recode", txn, ctx, _recode)
            stage_seconds["recode"] = self.cost_model.recode_seconds(
                scaled(report.bytes_before), report.stats["frames"])
            stats = dict(report.stats)
        # The sender-side ground truth for the restore guard: the sent
        # set's whole-set digest plus its per-page digest manifest (the
        # same addressing the chunk store uses).
        ctx["sent_digest"] = images.content_digest()
        ctx["page_digests"] = image_page_digests(images)

        # 3. transfer — plain scp of the images, or (use_store) a
        # content-addressed delta: put into the source store, ship only
        # the chunks missing at the destination, materialize there.
        if self.use_store:
            images, page_server = self._store_transfer(
                process, images, page_server, stage_seconds, scaled,
                stats, txn, ctx)
        else:
            images = self._plain_transfer(process, images, stage_seconds,
                                          scaled, txn, ctx)

        # 4. verify — nothing restores until the arrived set passes the
        # multi-pass restore guard (repairing what it can on the way).
        images = self._verify_stage(process, images, stage_seconds,
                                    scaled, stats, txn, ctx)

        # Post-copy chaos: maybe arm the page server to die mid
        # fault-in; snapshot the left-behind pages *now* so the pre-copy
        # fallback can finish the transfer from the snapshot even after
        # the source is torn down.
        fallback_pages = None
        if lazy and injector is not None:
            if injector.page_server_fault(page_server):
                fallback_pages = page_server.pending_pages()

        # 5. restore. The source is torn down only *after* the restore
        # succeeds: until then it remains the rollback target, so a
        # failed migration never strands the process between nodes.
        # verify=False: the verify stage above already judged (and
        # possibly repaired) exactly these bytes, with strictly more
        # context than the restore-local gate has.
        def _restore():
            if injector is not None:
                injector.node_fault("restore", self.dst_machine.name)
            if lazy:
                return restore_process_lazy(self.dst_machine, images,
                                            page_server, verify=False)
            return restore_process(self.dst_machine, images, verify=False)
        restored = self._txn_stage("restore", txn, ctx, _restore)
        stage_seconds["restore"] = self.cost_model.restore_seconds(
            scaled(images.total_bytes()), threads)
        if not hold_source:
            runtime.kill_source()

        if fallback_pages is not None:
            self._arm_precopy_fallback(restored, fallback_pages, txn)

        if injector is not None:
            stats["txn"] = txn
            if txn["backoff_seconds"] > 0.0:
                stage_seconds["retries"] = txn["backoff_seconds"]

        result = MigrationResult(
            process=restored, images=images, stage_seconds=stage_seconds,
            stats=stats, output_before=output_before,
            page_server=page_server, lazy=lazy)
        if hold_source:
            result.held_runtime = runtime
            result.held_ctx = ctx
        return result

    # -- two-phase settlement (hold_source=True) ----------------------------------

    def commit(self, result: MigrationResult) -> None:
        """Settle a held-open migration: tear down the source. After
        this the destination copy is the only one, exactly as a plain
        ``migrate`` would have left things."""
        if not result.held:
            raise MigrationError(
                "migration was not held open (hold_source=False) or "
                "is already settled")
        result.held_runtime.kill_source()
        result.held_runtime = None
        result.held_ctx = None

    def abort(self, result: MigrationResult) -> None:
        """Settle a held-open migration the other way: kill the restored
        destination copy, sweep its images, drop any checkpoint this
        migration adopted into the destination store (GC'ing the orphan
        chunks), and resume the paused source at the cut — the mirror of
        :meth:`_rollback` for a migration that had already restored."""
        if not result.held:
            raise MigrationError(
                "migration was not held open (hold_source=False) or "
                "is already settled")
        ctx = result.held_ctx
        if not result.process.exited:
            self.dst_machine.kill(result.process)
        dst_fs = self.dst_machine.tmpfs
        for path in list(dst_fs.listdir(ctx["dst_prefix"])):
            dst_fs.remove(path)
        cid = ctx.get("dst_checkpoint")
        if (cid is not None and self.dst_store is not None
                and not ctx.get("dst_had_checkpoint")
                and cid in self.dst_store):
            self.dst_store.delete(cid)
        if self.dst_store is not None:
            self.dst_store.gc()
        result.held_runtime.resume()
        result.held_runtime = None
        result.held_ctx = None

    # -- stage 3 variants --------------------------------------------------------

    def _plain_transfer(self, process: Process, images: ImageSet,
                        stage_seconds: Dict[str, float], scaled,
                        txn: Dict, ctx: Dict) -> ImageSet:
        """Plain-scp stage 3: link first, bytes second, verify on arrival."""
        injector = self.injector
        prefix = ctx["dst_prefix"]
        dst_fs = self.dst_machine.tmpfs

        def _sweep_partial():
            for path in list(dst_fs.listdir(prefix)):
                dst_fs.remove(path)

        def _transfer():
            # The link — and any injected drop / partition / latency —
            # is consulted before a single byte lands at the target.
            factor = 1.0
            if injector is not None:
                factor = injector.link_fault(self.src_machine.name,
                                             self.dst_machine.name,
                                             site="scp")
            images.save(dst_fs, prefix)
            if injector is not None and injector.corrupt_roll("scp"):
                # Flip the tail byte of the largest arrived file (the
                # pages image) — the arrival digest check must catch it.
                victim = max(dst_fs.listdir(prefix), key=dst_fs.size)
                blob = bytearray(dst_fs.read(victim))
                blob[-1] ^= 0xFF
                dst_fs.write(victim, bytes(blob))
            if injector is not None:
                try:
                    arrived = ImageSet.load(dst_fs, prefix)
                    ok = arrived.content_digest() == images.content_digest()
                except ReproError as exc:
                    raise IntegrityError(
                        f"arrived images unreadable: {exc}") from exc
                if self.arrival_check and not ok:
                    raise IntegrityError(
                        "arrived image digest does not match source")
                # The destination restores from what actually arrived;
                # with arrival_check off, corrupt bytes flow on to the
                # verify stage instead of being silently re-copied.
                return arrived, factor
            return images, factor
        images, factor = self._txn_stage("scp", txn, ctx, _transfer,
                                         cleanup=_sweep_partial)
        stage_seconds["scp"] = self.cost_model.transfer_seconds(
            scaled(images.total_bytes()), factor)
        return images

    def _verify_stage(self, process: Process, images: ImageSet,
                      stage_seconds: Dict[str, float], scaled,
                      stats: Dict, txn: Dict, ctx: Dict) -> ImageSet:
        """Stage 4: the restore guard.

        Runs :class:`~repro.verify.ImageVerifier` over the arrived set
        with everything the pipeline knows — the destination binary, the
        destination chunk store, and the sender's whole-set digest and
        per-page manifest captured right after recode. Repairable
        divergence (clean pages) is fixed in place and the repaired set
        re-saved over the corrupt arrival; an unrepairable set is moved
        to ``/quarantine/<id>`` on the destination with its diagnosis
        and the migration rolls back to the source.
        """
        injector = self.injector
        verifier = ImageVerifier(
            binary=self.program.binary(self.dst_machine.isa.name),
            store=self.dst_store,
            page_digests=ctx.get("page_digests"),
            expected_digest=ctx.get("sent_digest"))

        def _verify():
            if injector is not None:
                injector.node_fault("verify", self.dst_machine.name)
            fixed, verdict = verifier.repair(images)
            if fixed is None:
                quarantine = Quarantine(self.dst_machine.tmpfs)
                qid = quarantine.add(
                    images, verdict,
                    reason=(f"migrate {self.src_machine.name}->"
                            f"{self.dst_machine.name} pid {process.pid}"))
                if injector is not None:
                    injector.note("quarantine", "verify",
                                  f"image {qid} failed pass "
                                  f"{verdict.failing_pass()}",
                                  a=len(verdict.findings))
                raise QuarantinedImage(
                    f"arrived image failed {verdict.failing_pass()} "
                    f"verification and could not be repaired; "
                    f"quarantined as {qid} on {self.dst_machine.name}",
                    quarantine_id=qid, diagnosis=verdict.to_dict(),
                    pass_name=verdict.failing_pass() or "?",
                    findings=[f.to_dict() for f in verdict.findings])
            return fixed, verdict
        images, verdict = self._txn_stage("verify", txn, ctx, _verify)

        # Per-pass timing from the calibrated cost model: each pass reads
        # every image byte once at the destination's checkpoint-IO rate;
        # the repair pass only rewrites the diverged pages.
        rate = self.dst_profile.checkpoint_bytes_per_s
        pass_seconds: Dict[str, float] = {}
        for name in verdict.passes_run:
            if name == "repair":
                pass_seconds[name] = (scaled(len(verdict.repaired)
                                             * PAGE_SIZE) / rate)
            else:
                pass_seconds[name] = scaled(images.total_bytes()) / rate
        stage_seconds["verify"] = sum(pass_seconds.values())
        stats["verify"] = {
            "passes": list(verdict.passes_run),
            "pass_seconds": pass_seconds,
            "checks": verdict.checks,
            "repaired_pages": len(verdict.repaired),
        }
        if verdict.repaired:
            images.save(self.dst_machine.tmpfs, ctx["dst_prefix"])
            if injector is not None:
                injector.note("repair", "verify",
                              f"repaired {len(verdict.repaired)} page(s) "
                              f"in place", a=len(verdict.repaired))
        recorder = getattr(self.src_machine, "recorder", None)
        if recorder is not None:
            # Verify events are a pure function of the image bytes, so
            # verified/repaired migrations journal — and replay —
            # bit-identically.
            from ..replay.journal import EV_VERIFY
            recorder.on_event(
                EV_VERIFY, pid=process.pid,
                label=("verify:repaired@migrate" if verdict.repaired
                       else "verify:ok@migrate"),
                a=verdict.checks, b=len(verdict.repaired))
        return images

    def _store_transfer(self, process: Process, images: ImageSet,
                        page_server: Optional[PageServer],
                        stage_seconds: Dict[str, float], scaled,
                        stats: Dict, txn: Dict, ctx: Dict):
        """Store-backed stage 3. Returns the (materialized) image set
        the destination restores from and the (possibly store-backed)
        page server.

        A retried attempt re-plans the delta: chunks that landed before
        the fault are already in the destination store, so each retry
        ships strictly less — the transfer is resumable, and any chunks
        stranded by a final rollback carry no references until their
        manifest registers, so the rollback GC reclaims them.
        """
        injector = self.injector
        full_bytes = images.total_bytes()
        put = self.src_store.put(images)
        ctx["dst_checkpoint"] = put.checkpoint_id
        ctx["dst_had_checkpoint"] = put.checkpoint_id in self.dst_store
        # Chunking + hashing runs at checkpoint-write speed on the
        # source node; it replaces writing the image files out twice.
        stage_seconds["store"] = self.cost_model.store_seconds(
            scaled(full_bytes))

        def _ship():
            factor = 1.0
            if injector is not None:
                factor = injector.link_fault(self.src_machine.name,
                                             self.dst_machine.name,
                                             site="ship")
            plan = plan_transfer(self.src_store, self.dst_store,
                                 put.checkpoint_id, self.link)
            shipped = ship(self.src_store, self.dst_store, plan,
                           injector=injector)
            images_dst = self.dst_store.materialize(put.checkpoint_id)
            if (injector is not None
                    and images_dst.content_digest()
                    != images.content_digest()):
                raise IntegrityError(
                    "materialized checkpoint digest does not match "
                    "source images")
            return plan, shipped, images_dst, factor
        plan, shipped, images_dst, factor = self._txn_stage(
            "ship", txn, ctx, _ship)
        stage_seconds["scp"] = self.cost_model.transfer_seconds(
            scaled(shipped), factor)
        images_dst.save(self.dst_machine.tmpfs, ctx["dst_prefix"])

        if page_server is not None:
            # Post-copy + store: the left-behind pages live in the
            # source store too, so the page server serves by digest and
            # shares physical pages with every checkpoint.
            digests = {vaddr: self.src_store.chunks.put(data)
                       for vaddr, data in page_server.pending_pages().items()}
            page_server = StorePageServer(
                digests, self.src_store,
                node_name=page_server.node_name,
                log_limit=page_server.log_limit)

        stats["store"] = {
            "checkpoint": put.checkpoint_id,
            "new_chunks": put.new_chunks,
            "dup_chunks": put.dup_chunks,
            "chunks_total": plan.chunks_total,
            "chunks_shipped": len(plan.chunks_needed),
            "bytes_shipped": shipped,
            "bytes_full_copy": full_bytes,
            "savings": 1.0 - (shipped / full_bytes) if full_bytes else 0.0,
            "dedup_ratio": self.src_store.stats()["dedup_ratio"],
        }
        recorder = getattr(self.src_machine, "recorder", None)
        if recorder is not None:
            # Store events are content-derived, hence deterministic:
            # replayed store-backed migrations journal identically.
            from ..replay.journal import EV_STORE
            recorder.on_event(EV_STORE, pid=process.pid,
                              label=f"put:{put.checkpoint_id[:16]}",
                              a=put.new_chunks,
                              b=put.new_physical_bytes)
            recorder.on_event(EV_STORE, pid=process.pid,
                              label=(f"plan:{self.src_machine.name}->"
                                     f"{self.dst_machine.name}"),
                              a=len(plan.chunks_needed), b=shipped)
        return images_dst, page_server

    # -- post-copy degradation ---------------------------------------------------

    def _arm_precopy_fallback(self, process: Process,
                              pending: Dict[int, bytes],
                              txn: Dict) -> None:
        """Wrap the lazy restore's missing-page hook: if the page server
        dies mid post-copy, bulk-install the snapshotted left-behind
        pages (pre-copy fallback) and detach the hook — execution
        continues with byte-identical memory, just paid for eagerly."""
        aspace = process.aspace
        inner = aspace.missing_page_hook

        def hook(base):
            try:
                return inner(base)
            except PageServerDead:
                installed = 0
                for vaddr, data in pending.items():
                    if vaddr == base:
                        continue   # returned below; page() installs it
                    # _pages membership, not page(): page() would
                    # re-enter this hook for every missing page.
                    if (vaddr not in aspace._pages
                            and aspace.find_vma(vaddr) is not None):
                        aspace.install_page(vaddr, data)
                        installed += 1
                aspace.missing_page_hook = None
                txn["fallback"] = True
                txn["fallback_pages"] = installed + (1 if base in pending
                                                     else 0)
                if self.injector is not None:
                    self.injector.note(
                        "fallback", "page-server",
                        f"pre-copied {installed} pending pages",
                        a=installed)
                return pending.get(base)
        aspace.missing_page_hook = hook

    # -- convenience ----------------------------------------------------------------

    def run_and_migrate(self, warmup_steps: int, lazy: bool = False,
                        max_total_steps: int = 50_000_000
                        ) -> MigrationResult:
        """Start the program, run ``warmup_steps``, migrate, run to exit."""
        process = self.start()
        self.src_machine.step_all(warmup_steps)
        if process.exited:
            raise MigrationError(
                "process finished before the migration point; lower "
                "warmup_steps")
        result = self.migrate(process, lazy=lazy)
        self.dst_machine.run_process(result.process, max_total_steps)
        return result
