"""Stack unwinding and cross-ISA re-layout (paper §III-C, §III-D2b).

Frame convention (both ISAs, established by our backends):

* ``[fp + 8]`` — return address,
* ``[fp + 0]`` — saved caller frame pointer (0 terminates the chain),
* slots at negative fp offsets per the binary's ``.frames`` records,
* on entry to a callee, ``callee.fp == caller.fp - caller.frame_size - 16``.

The unwinder walks the dumped stack outward from the parked thread's
frame pointer, pairing every frame with its equivalence point: the
innermost frame resumes at the *entry* eqpoint the checker trapped on;
every outer frame resumes at the *call-site* eqpoint matching the return
address stored in its callee's frame.

Re-layout computes destination frame pointers top-of-stack down using the
destination ISA's frame sizes and prologue displacement, then copies
every live value from its source location (register or slot) to its
destination location, remapping pointers that point into any thread's
stack (paper: "map each live stack pointer to its respective stack
allocation").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..binfmt.delf import DelfBinary
from ..binfmt.frames import RET_ADDR_OFFSET, SAVED_FP_OFFSET
from ..binfmt.stackmaps import EqPoint, KIND_CALLSITE, KIND_ENTRY
from ..criu.images import CoreImage
from ..errors import RewriteError
from ..isa import get_isa
from .rewriter import ImageMemory

#: distance from a function's entry-sp to its fp, per ISA convention
#: (x86: one push; arm: the stp-equivalent 16-byte pair area)
_ENTRY_SP_TO_FP = {"x86_64": 8, "aarch64": 16}

#: callee.fp = caller.fp - caller.frame_size - _FRAME_LINK
_FRAME_LINK = 16


class UnwoundFrame:
    """One source frame with its live values read out."""

    __slots__ = ("func", "eqpoint", "fp", "values", "ret_addr", "saved_fp",
                 "frame_size")

    def __init__(self, func: str, eqpoint: EqPoint, fp: int,
                 frame_size: int):
        self.func = func
        self.eqpoint = eqpoint
        self.fp = fp
        self.frame_size = frame_size
        #: value_id -> bytes (slot-sized)
        self.values: Dict[int, bytes] = {}
        self.ret_addr = 0
        self.saved_fp = 0

    def __repr__(self) -> str:
        return (f"<UnwoundFrame {self.func} fp={self.fp:#x} "
                f"eq#{self.eqpoint.eqpoint_id} values={len(self.values)}>")


class UnwoundThread:
    __slots__ = ("core", "frames")

    def __init__(self, core: CoreImage, frames: List[UnwoundFrame]):
        self.core = core
        #: innermost first
        self.frames = frames


def unwind_thread(memory: ImageMemory, core: CoreImage,
                  binary: DelfBinary) -> UnwoundThread:
    """Walk one parked thread's stack, innermost → outermost."""
    isa = get_isa(core.arch)
    stackmaps = binary.stackmaps
    frames_meta = binary.frames

    point = stackmaps.by_addr.get(core.pc)
    if point is None or point.kind != KIND_ENTRY:
        raise RewriteError(
            f"thread {core.tid}: pc {core.pc:#x} is not an entry "
            f"equivalence point")
    fp = core.regs[isa.dwarf_of(isa.abi.frame_pointer)] & 0xFFFFFFFFFFFFFFFF

    frames: List[UnwoundFrame] = []
    guard = 0
    while True:
        guard += 1
        if guard > 4096:
            raise RewriteError("unwind did not terminate (fp chain loop?)")
        record = frames_meta.get(point.func)
        frame = UnwoundFrame(point.func, point, fp, record.frame_size)
        for live in point.live:
            if live.on_stack():
                frame.values[live.value_id] = memory.read(
                    fp + live.stack_offset, live.size)
            else:
                value = core.regs.get(live.dwarf_reg)
                if value is None:
                    raise RewriteError(
                        f"{point.func}: live value {live.name!r} in "
                        f"unknown register {live.dwarf_reg}")
                frame.values[live.value_id] = \
                    (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        frame.saved_fp = memory.read_u64(fp + SAVED_FP_OFFSET)
        frame.ret_addr = memory.read_u64(fp + RET_ADDR_OFFSET)
        frames.append(frame)
        if frame.saved_fp == 0:
            break
        caller_point = stackmaps.by_addr.get(frame.ret_addr)
        if caller_point is None or caller_point.kind != KIND_CALLSITE:
            raise RewriteError(
                f"thread {core.tid}: return address {frame.ret_addr:#x} "
                f"has no call-site stackmap")
        point = caller_point
        fp = frame.saved_fp
    return UnwoundThread(core, frames)


class FrameMap:
    """Destination frame pointers for every source frame of every thread,
    plus the pointer-remapping function built from them."""

    def __init__(self):
        #: (tid, frame index) -> dst fp
        self.dst_fp: Dict[Tuple[int, int], int] = {}
        #: flat list of (thread, index, frame) for pointer search
        self._all: List[Tuple[UnwoundThread, int, UnwoundFrame]] = []
        self.pointers_remapped = 0
        self.pointers_kept = 0

    def add_thread(self, thread: UnwoundThread, dst_binary: DelfBinary,
                   dst_arch: str) -> None:
        """Lay the thread's destination frames out, outermost first."""
        dst_frames = dst_binary.frames
        outer = thread.frames[-1]
        # Reconstruct the outermost frame's entry-sp from the *source*
        # geometry, then place the destination fp per the destination
        # ISA's prologue displacement. entry_sp = fp + displacement.
        src_entry_sp = outer.fp + _ENTRY_SP_TO_FP[thread.core.arch]
        fp = src_entry_sp - _ENTRY_SP_TO_FP[dst_arch]
        for index in range(len(thread.frames) - 1, -1, -1):
            frame = thread.frames[index]
            self.dst_fp[(thread.core.tid, index)] = fp
            self._all.append((thread, index, frame))
            if index > 0:
                dst_size = dst_frames.get(frame.func).frame_size
                fp = fp - dst_size - _FRAME_LINK

    def lookup_dst_fp(self, tid: int, index: int) -> int:
        return self.dst_fp[(tid, index)]

    def remap_pointer(self, value: int, src_binary: DelfBinary,
                      dst_binary: DelfBinary) -> int:
        """Translate a pointer into some thread's source stack into the
        matching destination address; non-stack pointers pass through
        (code/data/heap addresses are aligned across ISAs)."""
        for thread, index, frame in self._all:
            delta = value - frame.fp
            # A slot address lies in [-frame_size, 0); the saved-fp /
            # return-address words are at [0, 16) and are rebuilt anyway.
            if not (-frame.frame_size <= delta < 0):
                continue
            src_record = src_binary.frames.get(frame.func)
            slot = src_record.slot_containing(delta)
            if slot is None:
                continue
            dst_slot = dst_binary.frames.get(frame.func).slot_by_id(
                slot.slot_id)
            if dst_slot is None:
                raise RewriteError(
                    f"{frame.func}: slot #{slot.slot_id} missing in "
                    f"destination frame record")
            dst_fp = self.lookup_dst_fp(thread.core.tid, index)
            self.pointers_remapped += 1
            return dst_fp + dst_slot.offset + (delta - slot.offset)
        self.pointers_kept += 1
        return value


def in_stack_region(value: int, mm_vmas) -> bool:
    """Is ``value`` inside any thread-stack VMA?"""
    for vma in mm_vmas:
        if vma.name.startswith("stack:") and vma.start <= value < vma.end:
            return True
    return False


def write_thread(memory: ImageMemory, thread: UnwoundThread,
                 frame_map: FrameMap, src_binary: DelfBinary,
                 dst_binary: DelfBinary, dst_arch: str,
                 mm_vmas, missing_live_ok: bool = False) -> CoreImage:
    """Write one thread's destination stack and build its new core image.

    ``missing_live_ok`` lets a destination live value with no source
    counterpart initialize to zero — used by the live-update policy when
    the updated function introduces new locals.
    """
    dst_isa = get_isa(dst_arch)
    dst_maps = dst_binary.stackmaps
    tid = thread.core.tid

    new_regs: Dict[int, int] = {r.dwarf: 0 for r in dst_isa.registers}

    for index, frame in enumerate(thread.frames):
        dst_fp = frame_map.lookup_dst_fp(tid, index)
        dst_point = dst_maps.by_id.get(frame.eqpoint.eqpoint_id)
        if dst_point is None:
            raise RewriteError(
                f"eqpoint #{frame.eqpoint.eqpoint_id} missing in "
                f"destination stackmaps")
        # Frame linkage: saved caller fp and return address follow the
        # destination ABI (paper: "DAPPER follows the destination
        # architecture's ABI and retains the register-save procedure").
        if index + 1 < len(thread.frames):
            caller_fp = frame_map.lookup_dst_fp(tid, index + 1)
            caller_point = thread.frames[index + 1].eqpoint
            dst_caller_point = dst_maps.by_id[caller_point.eqpoint_id]
            memory.write_u64(dst_fp + SAVED_FP_OFFSET, caller_fp)
            memory.write_u64(dst_fp + RET_ADDR_OFFSET, dst_caller_point.addr)
        else:
            # Outermost frame: chain terminator + raw return target
            # (symbol addresses are aligned across ISAs, so e.g. the
            # __thread_exit stub address stays valid).
            memory.write_u64(dst_fp + SAVED_FP_OFFSET, 0)
            memory.write_u64(dst_fp + RET_ADDR_OFFSET, frame.ret_addr)
        # Live values.
        src_live_by_id = {lv.value_id: lv for lv in frame.eqpoint.live}
        for live in dst_point.live:
            raw = frame.values.get(live.value_id)
            if raw is None:
                if not missing_live_ok:
                    raise RewriteError(
                        f"{frame.func}: live value #{live.value_id} "
                        f"({live.name}) absent from source frame")
                raw = bytes(live.size)
            src_live = src_live_by_id.get(live.value_id)
            if (live.is_pointer and live.size == 8
                    and src_live is not None and src_live.is_pointer):
                value = int.from_bytes(raw, "little")
                if in_stack_region(value, mm_vmas):
                    value = frame_map.remap_pointer(value, src_binary,
                                                    dst_binary)
                raw = value.to_bytes(8, "little")
            if live.on_stack():
                memory.write(dst_fp + live.stack_offset, raw)
            if live.in_register():
                if index != 0:
                    raise RewriteError(
                        f"{frame.func}: register-resident live value in a "
                        f"suspended (non-innermost) frame")
                signed = int.from_bytes(raw[:8], "little", signed=True)
                new_regs[live.dwarf_reg] = signed
        if index == 0:
            new_regs[dst_isa.dwarf_of(dst_isa.abi.frame_pointer)] = dst_fp
            dst_record = dst_binary.frames.get(frame.func)
            new_regs[dst_isa.dwarf_of(dst_isa.abi.stack_pointer)] = \
                dst_fp - dst_record.frame_size
            new_pc = dst_point.addr

    return CoreImage(tid=tid, arch=dst_arch, pc=new_pc,
                     flags=thread.core.flags, tls_base=0,   # set by tlsmod
                     status=thread.core.status, regs=new_regs)
