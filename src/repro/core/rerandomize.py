"""Periodic stack re-randomization (paper §I, §III: "periodically
re-randomizing the function call stack by changing the layout of each
function stack frame").

:class:`PeriodicRerandomizer` drives a process in shuffle epochs: run for
an interval, park at equivalence points, checkpoint, retarget onto a
freshly shuffled binary, restore, repeat. Because the rewrite happens on
the *static* checkpoint image, the race conditions of inline
re-randomization systems (Shuffler, ReRanz, …) cannot arise — the
process is never running while its layout moves (§III-C).
"""

from __future__ import annotations

from typing import List, Optional

from ..binfmt.delf import DelfBinary
from ..criu.restore import restore_process
from ..errors import RewriteError
from ..vm.kernel import Machine, Process
from .policies.stack_shuffle import StackShufflePolicy
from .rewriter import ProcessRewriter
from .rng import RngService
from .runtime import DapperRuntime


class ShuffleEpoch:
    """Record of one re-randomization round."""

    def __init__(self, epoch: int, seed: int, pairs: int,
                 instructions_patched: int, pointers_remapped: int):
        self.epoch = epoch
        self.seed = seed
        self.pairs = pairs
        self.instructions_patched = instructions_patched
        self.pointers_remapped = pointers_remapped

    def __repr__(self) -> str:
        return (f"<ShuffleEpoch #{self.epoch} seed={self.seed} "
                f"pairs={self.pairs}>")


class PeriodicRerandomizer:
    """Runs a process under a shuffle-every-interval policy."""

    def __init__(self, machine: Machine, process: Process,
                 base_binary: DelfBinary, interval_steps: int,
                 seed: int = 0, rng: Optional[RngService] = None):
        self.machine = machine
        self.process = process
        self.base_binary = base_binary
        self.interval_steps = interval_steps
        # All epoch-seed draws flow through the RNG service so a flight
        # recorder observing it can journal (and a replay re-derive)
        # every shuffle. Draw-for-draw identical to the historical
        # ad-hoc random.Random(seed).
        self._rng = rng if rng is not None else RngService(
            seed, name="rerandomize")
        self._active_binary = base_binary
        self._accumulated_output = ""
        self.epochs: List[ShuffleEpoch] = []

    @property
    def active_binary(self) -> DelfBinary:
        """The binary (layout) the process currently runs under."""
        return self._active_binary

    def output(self) -> str:
        return self._accumulated_output + self.process.stdout()

    def run_epoch(self) -> bool:
        """Run one interval then re-randomize.

        Returns False once the process has exited (no shuffle applied) —
        including the benign race where it exits between the
        transformation request and the next equivalence point.
        """
        self.machine.step_all(self.interval_steps)
        if self.process.exited:
            return False
        from ..errors import PtraceError
        try:
            self._shuffle_now()
        except PtraceError:
            if self.process.exited:
                return False
            raise
        return True

    def run_to_completion(self, max_epochs: int = 1000) -> int:
        """Keep re-randomizing until the process exits.

        Returns the process exit code.
        """
        for _ in range(max_epochs):
            if not self.run_epoch():
                break
        else:
            raise RewriteError(f"process still running after "
                               f"{max_epochs} shuffle epochs")
        return self.process.exit_code

    # -- internals -----------------------------------------------------------

    def _shuffle_now(self) -> None:
        epoch_no = len(self.epochs) + 1
        seed = self._rng.randrange(1 << 30, label=f"epoch-seed:{epoch_no}")
        runtime = DapperRuntime(self.machine, self.process)
        runtime.pause_at_equivalence_points()
        self._accumulated_output = self.process.stdout()
        images = runtime.checkpoint()
        prefix = self._accumulated_output
        runtime.kill_source()

        policy = StackShufflePolicy(
            self._active_binary, seed=seed,
            dst_exe_path=f"{self.process.exe_path}.e{epoch_no}",
            rng=self._rng.child(seed, f"stack-shuffle:e{epoch_no}"))
        report = ProcessRewriter().rewrite(images, policy)[0]
        self.machine.tmpfs.write(policy.dst_exe_path,
                                 policy.shuffled_binary.to_bytes())
        restored = restore_process(self.machine, images)
        # Carry the output stream across the process swap.
        restored.output = [prefix]
        self._accumulated_output = ""
        self.process = restored
        self._active_binary = policy.shuffled_binary
        self.epochs.append(ShuffleEpoch(
            epoch_no, seed, report.stats.get("pairs", 0),
            report.stats.get("instructions_patched", 0),
            report.stats.get("pointers_remapped", 0)))
