"""Dapper's core: the runtime monitor and the process-image rewriter.

This package is the paper's contribution (§III). Everything else in
``repro`` is substrate.

* :mod:`repro.core.runtime` — the ptrace-based runtime monitor that
  raises the transformation flag and parks every thread at an
  equivalence point (§III-B, §III-D2a).
* :mod:`repro.core.rewriter` — the CRIT-based process rewriter that
  applies a :class:`~repro.core.policy.TransformationPolicy` to a
  checkpointed image set (§III-C).
* :mod:`repro.core.policies.cross_isa` — cross-architecture state
  transformation (registers, stacks, TLS, code pages).
* :mod:`repro.core.policies.stack_shuffle` — stack-slot re-randomization
  with static binary instrumentation of the code pages (§IV-B).
* :mod:`repro.core.migration` — the end-to-end pipeline
  (checkpoint → recode → scp → restore) with its cost model (§IV-A).
"""

from .runtime import DapperRuntime
from .rewriter import ImageMemory, ProcessRewriter, RewriteReport
from .policy import TransformationPolicy
from .policies.cross_isa import CrossIsaPolicy
from .policies.stack_shuffle import StackShufflePolicy
from .policies.live_update import LiveUpdatePolicy
from .migration import MigrationPipeline, MigrationResult

__all__ = [
    "DapperRuntime", "ImageMemory", "ProcessRewriter", "RewriteReport",
    "TransformationPolicy", "CrossIsaPolicy", "StackShufflePolicy",
    "LiveUpdatePolicy",
    "MigrationPipeline", "MigrationResult",
]
