"""The process rewriter: byte-level image memory + policy application.

The paper implements state transformation as a CRIT sub-command doing
"a set of file reads and writes which set the live values within the
memory dump" (§III-D2b). :class:`ImageMemory` is that read/write layer:
it materializes the dumped pages from ``pages-1.img``/``pagemap.img``
into an addressable view, lets policies read and write words, add and
drop whole pages (code-page replacement), and then flushes back into
image-file form.
"""

from __future__ import annotations

import struct
import time
from typing import Callable, Dict, List, Optional

from ..criu.images import ImageSet, PagemapEntry, PagemapImage
from ..errors import RewriteError
from ..mem.paging import PAGE_SIZE, page_align_down
from .policy import TransformationPolicy


class ImageMemory:
    """Mutable view over the dumped pages of a checkpoint."""

    def __init__(self, images: ImageSet):
        self._images = images
        self._pages: Dict[int, bytearray] = {}
        pagemap = images.pagemap()
        blob = images.pages()
        index = 0
        for entry in pagemap.entries:
            if entry.in_parent:
                raise RewriteError(
                    f"pagemap run at {entry.vaddr:#x} lives in a parent "
                    f"checkpoint; materialize the delta through the "
                    f"checkpoint store before rewriting")
            for i in range(entry.nr_pages):
                base = entry.vaddr + i * PAGE_SIZE
                offset = index * PAGE_SIZE
                self._pages[base] = bytearray(blob[offset:offset + PAGE_SIZE])
                index += 1

    # -- page-level -------------------------------------------------------

    def has_page(self, base: int) -> bool:
        return base in self._pages

    def page_bases(self) -> List[int]:
        return sorted(self._pages)

    def add_page(self, base: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise RewriteError("add_page needs exactly one page of data")
        self._pages[base] = bytearray(data)

    def drop_page(self, base: int) -> None:
        self._pages.pop(base, None)

    def page(self, base: int) -> bytearray:
        try:
            return self._pages[base]
        except KeyError:
            raise RewriteError(f"page {base:#x} not in dump") from None

    # -- byte/word-level -----------------------------------------------------

    def read(self, addr: int, length: int) -> bytes:
        out = bytearray()
        cursor = addr
        remaining = length
        while remaining:
            base = page_align_down(cursor)
            offset = cursor - base
            chunk = min(PAGE_SIZE - offset, remaining)
            store = self._pages.get(base)
            out += (store[offset:offset + chunk] if store is not None
                    else b"\x00" * chunk)
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        cursor = addr
        view = memoryview(data)
        while view:
            base = page_align_down(cursor)
            offset = cursor - base
            chunk = min(PAGE_SIZE - offset, len(view))
            store = self._pages.get(base)
            if store is None:
                # Writing into a page the dump did not contain (e.g. a
                # larger destination frame): materialize it as zeros.
                store = bytearray(PAGE_SIZE)
                self._pages[base] = store
            store[offset:offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    def read_u64(self, addr: int) -> int:
        return struct.unpack("<Q", self.read(addr, 8))[0]

    def read_i64(self, addr: int) -> int:
        return struct.unpack("<q", self.read(addr, 8))[0]

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF))

    def write_i64(self, addr: int, value: int) -> None:
        self.write_u64(addr, value)

    # -- flush ------------------------------------------------------------------

    def flush(self) -> None:
        """Write the page view back into pagemap.img / pages-1.img."""
        entries: List[PagemapEntry] = []
        blob = bytearray()
        run_start = None
        run_len = 0
        for base in sorted(self._pages):
            blob += self._pages[base]
            if run_start is not None and base == run_start + run_len * PAGE_SIZE:
                run_len += 1
            else:
                if run_start is not None:
                    entries.append(PagemapEntry(run_start, run_len))
                run_start = base
                run_len = 1
        if run_start is not None:
            entries.append(PagemapEntry(run_start, run_len))
        self._images.set_pagemap(PagemapImage(entries))
        self._images.set_pages(bytes(blob))


class RewriteReport:
    """What one rewrite did (feeds the cost model and the benchmarks)."""

    def __init__(self, policy: str, stats: Dict, wall_seconds: float,
                 bytes_before: int, bytes_after: int):
        self.policy = policy
        self.stats = dict(stats)
        self.wall_seconds = wall_seconds
        self.bytes_before = bytes_before
        self.bytes_after = bytes_after

    def __repr__(self) -> str:
        return (f"<RewriteReport {self.policy} {self.wall_seconds * 1e3:.2f}ms "
                f"{self.bytes_before}B→{self.bytes_after}B {self.stats}>")


class ProcessRewriter:
    """Applies transformation policies to checkpointed image sets.

    ``clock`` is the wall-clock source for :class:`RewriteReport`
    timings. It defaults to ``time.perf_counter``; replayed and tested
    runs inject a deterministic clock so the recorded metadata is
    identical from run to run.
    """

    def __init__(self, policies: Optional[List[TransformationPolicy]] = None,
                 clock: Callable[[], float] = time.perf_counter):
        self.policies: List[TransformationPolicy] = list(policies or [])
        self.clock = clock

    def add_policy(self, policy: TransformationPolicy) -> None:
        self.policies.append(policy)

    def rewrite(self, images: ImageSet,
                policy: Optional[TransformationPolicy] = None
                ) -> List[RewriteReport]:
        """Run one policy (or all registered ones, in order)."""
        todo = [policy] if policy is not None else self.policies
        if not todo:
            raise RewriteError("no transformation policy given")
        reports = []
        for item in todo:
            start = self.clock()
            before = images.total_bytes()
            memory = ImageMemory(images)
            stats = item.apply(images, memory)
            memory.flush()
            wall = self.clock() - start
            reports.append(RewriteReport(item.name, stats or {}, wall,
                                         before, images.total_bytes()))
        return reports
