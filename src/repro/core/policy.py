"""The transformation-policy plugin interface.

End-users extend Dapper by writing policies (paper §III): a policy
receives the checkpointed image set (through the rewriter's
:class:`~repro.core.rewriter.ImageMemory` view) and transforms it. The
two policies the paper builds — cross-ISA transformation and stack
shuffling — live in :mod:`repro.core.policies`; new ones (live update,
feature customization, …) plug in the same way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:
    from ..criu.images import ImageSet
    from .rewriter import ImageMemory


class TransformationPolicy:
    """Base class for image-rewriting policies."""

    #: short identifier used in reports
    name = "base"

    def apply(self, images: "ImageSet", memory: "ImageMemory") -> Dict:
        """Transform ``images`` in place; return a stats dict.

        ``memory`` is a mutable byte-level view over the dumped pages;
        the rewriter flushes it back into ``pages-1.img``/``pagemap.img``
        after the policy returns.
        """
        raise NotImplementedError

    def describe(self) -> str:
        return self.name
