"""Calibrated cost model: simulated work → wall-clock stage latencies.

The reproduction runs real rewrites over real (reduced-size) images, so
every stage produces *measured quantities* — bytes dumped, frames
rewritten, code bytes disassembled, pages served. This module maps those
quantities to wall-clock estimates using per-node rates calibrated to
the paper's reported magnitudes (§IV-A):

* checkpoint and restore < 30 ms,
* recode ≈ 254 ms on the x86-64 Xeon vs ≈ 1005 ms on the aarch64 Pi
  (identical logic, ≈4× micro-architectural gap),
* scp of a process image over InfiniBand ≈ 300 ms,
* lazy restore ≈ 8 ms plus on-demand page retrievals.

The *shape* of every figure (who wins, by what factor, where crossovers
fall) comes from the measured quantities; only the absolute scale comes
from these constants.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..mem.paging import PAGE_SIZE


class NodeProfile:
    """Compute/IO capabilities of one machine node."""

    def __init__(self, *, name: str, arch: str, freq_hz: float, ipc: float,
                 cores: int, idle_watts: float, active_watts_per_core: float,
                 recode_bytes_per_s: float, checkpoint_bytes_per_s: float,
                 restore_bytes_per_s: float, syscall_overhead_s: float,
                 usd_per_hour: float = 0.0):
        self.name = name
        self.arch = arch
        self.freq_hz = freq_hz
        self.ipc = ipc
        self.cores = cores
        self.idle_watts = idle_watts
        self.active_watts_per_core = active_watts_per_core
        self.recode_bytes_per_s = recode_bytes_per_s
        self.checkpoint_bytes_per_s = checkpoint_bytes_per_s
        self.restore_bytes_per_s = restore_bytes_per_s
        self.syscall_overhead_s = syscall_overhead_s
        #: amortized ownership cost — what the fleet scheduler's cost
        #: objective charges for keeping a job on this node
        self.usd_per_hour = usd_per_hour

    # -- compute time --------------------------------------------------------

    def seconds_for_cycles(self, cycles: float) -> float:
        return cycles / (self.freq_hz * self.ipc)

    def power_watts(self, active_cores: int) -> float:
        active = min(active_cores, self.cores)
        return self.idle_watts + active * self.active_watts_per_core

    def cost_usd(self, seconds: float) -> float:
        """Amortized dollar cost of occupying this node for ``seconds``."""
        return self.usd_per_hour * seconds / 3600.0

    # -- stage latencies ---------------------------------------------------------

    def checkpoint_seconds(self, image_bytes: int, threads: int) -> float:
        return (self.syscall_overhead_s * (1 + threads)
                + image_bytes / self.checkpoint_bytes_per_s)

    def restore_seconds(self, image_bytes: int, threads: int) -> float:
        return (self.syscall_overhead_s * (1 + threads)
                + image_bytes / self.restore_bytes_per_s)

    def recode_seconds(self, image_bytes: int, frames: int,
                       code_bytes: int = 0) -> float:
        # Image parsing/encoding dominates; per-frame unwinding and code
        # disassembly (stack shuffling) add on top.
        per_frame = 2_000 * 8   # bytes-equivalent of one frame rewrite
        return (image_bytes + frames * per_frame
                + code_bytes * 4) / self.recode_bytes_per_s

    def shuffle_seconds(self, code_bytes: int, instructions: int,
                        image_bytes: int) -> float:
        """Stack-shuffle stage cost: proportional to the code-section size
        of the checkpointed process and the transformed binary (§IV-B)."""
        return (code_bytes * 24 + instructions * 40
                + image_bytes) / self.recode_bytes_per_s

    def __repr__(self) -> str:
        return f"<NodeProfile {self.name} [{self.arch}]>"


class LinkProfile:
    """One network link between two nodes."""

    def __init__(self, *, name: str, bandwidth_bytes_per_s: float,
                 latency_s: float, scp_overhead_s: float):
        self.name = name
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.latency_s = latency_s
        self.scp_overhead_s = scp_overhead_s

    def transfer_seconds(self, nbytes: int) -> float:
        return (self.scp_overhead_s + self.latency_s
                + nbytes / self.bandwidth_bytes_per_s)

    def page_fault_seconds(self, pages: int = 1) -> float:
        """Round-trip cost of serving ``pages`` on-demand pages."""
        return pages * (2 * self.latency_s
                        + PAGE_SIZE / self.bandwidth_bytes_per_s)

    def __repr__(self) -> str:
        return f"<LinkProfile {self.name}>"


class MigrationCostModel:
    """Stage-latency model of one Dapper migration between two nodes.

    This is the single source of truth for what each pipeline stage
    costs in simulated wall-clock: :class:`~repro.core.migration.
    MigrationPipeline` prices its *measured* image sizes / frame counts
    through it, and the fleet's concurrent migration scheduler prices
    its *modeled* migrations through the very same formulas — so a
    storm of a thousand modeled migrations and one real end-to-end
    migration agree on what a checkpoint, recode, transfer, verify or
    restore costs on a given node pair.
    """

    #: verification passes a clean image pays for (structural + semantic);
    #: the repair pass only bills for pages it actually rewrites
    CLEAN_VERIFY_PASSES = 2

    def __init__(self, src: NodeProfile, dst: NodeProfile,
                 link: LinkProfile, recode: Optional[NodeProfile] = None):
        self.src = src
        self.dst = dst
        self.link = link
        # The paper: "we can always transform the process image on the
        # most powerful machine" — recode defaults to the source node.
        self.recode = recode or src

    # -- per-stage costs --------------------------------------------------

    def checkpoint_seconds(self, image_bytes: int, threads: int) -> float:
        return self.src.checkpoint_seconds(image_bytes, threads)

    def recode_seconds(self, image_bytes: int, frames: int,
                       code_bytes: int = 0) -> float:
        return self.recode.recode_seconds(image_bytes, frames, code_bytes)

    def store_seconds(self, image_bytes: int) -> float:
        """Chunking + hashing into the content-addressed store, at the
        source node's checkpoint-write rate."""
        return image_bytes / self.src.checkpoint_bytes_per_s

    def transfer_seconds(self, nbytes: int, factor: float = 1.0) -> float:
        return self.link.transfer_seconds(nbytes) * factor

    def verify_seconds(self, image_bytes: int,
                       repaired_pages: int = 0) -> float:
        """The restore guard: each pass reads every image byte once at
        the destination's checkpoint-IO rate; repair rewrites only the
        diverged pages."""
        rate = self.dst.checkpoint_bytes_per_s
        seconds = self.CLEAN_VERIFY_PASSES * image_bytes / rate
        if repaired_pages:
            seconds += (repaired_pages * PAGE_SIZE) / rate
        return seconds

    def restore_seconds(self, image_bytes: int, threads: int) -> float:
        return self.dst.restore_seconds(image_bytes, threads)

    # -- whole-migration estimate -----------------------------------------

    def blackout_seconds(self, image_bytes: int, threads: int = 1,
                         frames: int = 8, shipped_bytes: Optional[int] = None,
                         use_store: bool = False) -> float:
        """End-to-end service blackout of one fault-free migration.

        ``shipped_bytes`` is what actually crosses the link (a warm
        content-addressed destination receives a fraction of the full
        image); it defaults to the full image size.
        """
        shipped = image_bytes if shipped_bytes is None else shipped_bytes
        seconds = (self.checkpoint_seconds(image_bytes, threads)
                   + self.recode_seconds(image_bytes, frames)
                   + self.transfer_seconds(shipped)
                   + self.verify_seconds(image_bytes)
                   + self.restore_seconds(image_bytes, threads))
        if use_store:
            seconds += self.store_seconds(image_bytes)
        return seconds

    def __repr__(self) -> str:
        return (f"<MigrationCostModel {self.src.name}->{self.dst.name} "
                f"over {self.link.name}>")


# -- the paper's testbed -------------------------------------------------------

def xeon_profile() -> NodeProfile:
    """Intel Xeon E5-2620 v4 @ 2.10 GHz, 8 cores, 32 GB (paper §IV)."""
    return NodeProfile(
        name="xeon", arch="x86_64", freq_hz=2.1e9, ipc=2.0, cores=8,
        idle_watts=45.0, active_watts_per_core=9.0,
        recode_bytes_per_s=22e6, checkpoint_bytes_per_s=400e6,
        restore_bytes_per_s=400e6, syscall_overhead_s=0.002,
        usd_per_hour=0.35)


def rpi_profile() -> NodeProfile:
    """Raspberry Pi 4: Cortex-A72 @ 1.5 GHz, 4 cores, 2 GB (paper §IV).

    The measured 5.1 W at three busy cores gives the power split."""
    return NodeProfile(
        name="rpi", arch="aarch64", freq_hz=1.5e9, ipc=1.0, cores=4,
        idle_watts=2.7, active_watts_per_core=0.8,
        recode_bytes_per_s=5.5e6, checkpoint_bytes_per_s=350e6,
        restore_bytes_per_s=350e6, syscall_overhead_s=0.003,
        usd_per_hour=0.015)


def infiniband_link() -> LinkProfile:
    return LinkProfile(name="infiniband", bandwidth_bytes_per_s=3e9,
                       latency_s=5e-6, scp_overhead_s=0.28)


def ethernet_link() -> LinkProfile:
    return LinkProfile(name="ethernet-1g", bandwidth_bytes_per_s=110e6,
                       latency_s=200e-6, scp_overhead_s=0.35)


def rack_link() -> LinkProfile:
    """Top-of-rack 10 GbE — the default intra-rack fleet fabric."""
    return LinkProfile(name="ethernet-10g", bandwidth_bytes_per_s=1.1e9,
                       latency_s=50e-6, scp_overhead_s=0.30)


def wan_link() -> LinkProfile:
    """Inter-site WAN path — what a cross-rack fleet migration pays."""
    return LinkProfile(name="wan", bandwidth_bytes_per_s=30e6,
                       latency_s=15e-3, scp_overhead_s=0.5)


def profile_for_arch(arch: str) -> NodeProfile:
    return xeon_profile() if arch == "x86_64" else rpi_profile()


DEFAULT_PROFILES: Dict[str, NodeProfile] = {
    "x86_64": xeon_profile(),
    "aarch64": rpi_profile(),
}
