"""Register translation via paired stackmap records (paper Fig. 4).

At an entry equivalence point the function's parameters are live in
argument registers; the source and destination stackmap records for the
same eqpoint list each value's DWARF register number on each ISA (e.g.
``a`` in register 5/``rdi`` on x86-64 and register 0/``x0`` on aarch64).
Translation is the one-to-one copy the paper describes: read the value
from the source register, write it to the destination register.

:func:`translate_registers` builds that mapping table for one eqpoint —
used directly by tests and documentation; the full rewrite path in
``stack_rewrite.write_thread`` performs the same translation inline.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..binfmt.stackmaps import EqPoint
from ..errors import RewriteError


def register_mapping(src_point: EqPoint,
                     dst_point: EqPoint) -> List[Tuple[str, int, int]]:
    """Pairs of (value name, src dwarf reg, dst dwarf reg) for one eqpoint."""
    if src_point.eqpoint_id != dst_point.eqpoint_id:
        raise RewriteError("register_mapping: eqpoint ids differ")
    dst_by_id = {lv.value_id: lv for lv in dst_point.live}
    mapping = []
    for src_live in src_point.live:
        if not src_live.in_register():
            continue
        dst_live = dst_by_id.get(src_live.value_id)
        if dst_live is None or not dst_live.in_register():
            continue
        mapping.append((src_live.name, src_live.dwarf_reg,
                        dst_live.dwarf_reg))
    return mapping


def translate_registers(src_regs: Dict[int, int], src_point: EqPoint,
                        dst_point: EqPoint) -> Dict[int, int]:
    """Translate concrete register values across ISAs for one eqpoint."""
    out: Dict[int, int] = {}
    for name, src_dwarf, dst_dwarf in register_mapping(src_point, dst_point):
        if src_dwarf not in src_regs:
            raise RewriteError(f"source registers missing dwarf {src_dwarf} "
                               f"({name})")
        out[dst_dwarf] = src_regs[src_dwarf]
    return out
