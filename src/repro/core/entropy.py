"""Entropy accounting for stack shuffling (paper §IV-B, Fig. 10).

The paper quantifies randomness as *bits of entropy* = the number of
pairwise stack-allocation shuffles in a frame: shuffling a frame with
``n`` bits yields ``1 + (2n-1)!!`` possible frames and gives an attacker
a ``1/(2n)`` chance of guessing one allocation's location.
"""

from __future__ import annotations

from typing import Dict, List

from ..binfmt.delf import DelfBinary
from ..binfmt.frames import FrameRecord
from .. import sysabi

_PRELUDE = {sysabi.RT_START, sysabi.RT_POLL, sysabi.RT_THREAD_EXIT}


def double_factorial(n: int) -> int:
    """(2k-1)!! — the number of perfect matchings of 2k items."""
    result = 1
    while n > 1:
        result *= n
        n -= 2
    return result


def shuffleable_slots(record: FrameRecord) -> List:
    """Slots eligible for pairing: 8-byte scalars not accessed by
    load/store-pair instructions (the aarch64 exclusion of Fig. 10)."""
    return [s for s in record.slots
            if s.size == 8 and not s.pair_member and s.kind != "array"]


def frame_entropy_bits(record: FrameRecord) -> int:
    """Bits of entropy one shuffle adds to this frame."""
    return len(shuffleable_slots(record)) // 2


def possible_frames(bits: int) -> int:
    """Number of distinct frames reachable with ``bits`` of entropy."""
    if bits <= 0:
        return 1
    return 1 + double_factorial(2 * bits - 1)


def guess_probability(bits: int) -> float:
    """Attacker's chance of guessing a single allocation's location."""
    if bits <= 0:
        return 1.0
    return 1.0 / (2 * bits)


def attack_success_probability(bits: int, allocations_needed: int) -> float:
    """Chance a data-oriented attack needing ``k`` allocations succeeds
    (the paper's 0.125**3 example for Min-DOP on 4 bits)."""
    return guess_probability(bits) ** allocations_needed


def binary_entropy_bits(binary: DelfBinary,
                        include_prelude: bool = False) -> float:
    """Average bits of entropy across the binary's function frames."""
    per_func = binary_entropy_by_function(binary, include_prelude)
    if not per_func:
        return 0.0
    return sum(per_func.values()) / len(per_func)


def binary_entropy_by_function(binary: DelfBinary,
                               include_prelude: bool = False
                               ) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for record in binary.frames.frames:
        if not include_prelude and record.func in _PRELUDE:
            continue
        out[record.func] = frame_entropy_bits(record)
    return out
