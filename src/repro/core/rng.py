"""One seeded, journal-aware RNG service for every randomized policy.

Dapper's policies used to draw randomness from ad-hoc ``random.Random``
instances scattered across the codebase (stack shuffling, periodic
re-randomization). That is fine until a run must be *reproduced*: the
flight recorder needs to see every draw, and a replay must be able to
verify that the same draws happened in the same order.

:class:`RngService` wraps one ``random.Random(seed)`` (so existing
seeded behaviour is bit-identical to the old ad-hoc instances) and
notifies an optional observer of every draw — ``(service name, draw
label, value)``. Shuffles are reported as a content hash of the
resulting permutation, which is enough to journal-diff two runs without
recording the permutation itself. Child services inherit the observer,
so a policy that derives a per-epoch RNG from an epoch seed keeps the
whole tree observable.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, List, Optional, Sequence

#: Observer signature: (service name, draw label, drawn value).
RngObserver = Callable[[str, str, int], None]


def _permutation_fingerprint(seq: Sequence) -> int:
    """A stable 63-bit fingerprint of the order of ``seq``."""
    h = hashlib.blake2b(digest_size=8)
    for item in seq:
        h.update(repr(item).encode())
        h.update(b"\x00")
    return int.from_bytes(h.digest(), "little") >> 1


class RngService:
    """A seeded random source whose every draw is observable."""

    def __init__(self, seed: int = 0, observer: Optional[RngObserver] = None,
                 name: str = "rng"):
        self.seed = seed
        self.name = name
        self.observer = observer
        self._rng = random.Random(seed)

    def child(self, seed: int, name: str) -> "RngService":
        """Derive a service for a sub-task; inherits the observer."""
        return RngService(seed, self.observer, name)

    def _notify(self, label: str, value: int) -> None:
        if self.observer is not None:
            self.observer(self.name, label, value)

    # -- draws ------------------------------------------------------------

    def randrange(self, stop: int, label: str = "randrange") -> int:
        value = self._rng.randrange(stop)
        self._notify(label, value)
        return value

    def randint(self, a: int, b: int, label: str = "randint") -> int:
        value = self._rng.randint(a, b)
        self._notify(label, value)
        return value

    def shuffle(self, seq: List, label: str = "shuffle") -> None:
        """In-place shuffle; journals a fingerprint of the new order."""
        self._rng.shuffle(seq)
        self._notify(label, _permutation_fingerprint(seq))

    def choice(self, seq: Sequence, label: str = "choice"):
        index = self._rng.randrange(len(seq))
        self._notify(label, index)
        return seq[index]

    def __repr__(self) -> str:
        return f"<RngService {self.name} seed={self.seed}>"
