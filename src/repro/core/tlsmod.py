"""TLS pointer adjustment across ISAs (paper §III-C, "Thread Local Storage").

The TLS *block* (the variables) stays at its source virtual address; what
differs per architecture is the libc-defined displacement between the
thread pointer register (FS base on x86-64, TPIDR on aarch64) and the
block. Dapper "simply updates the offset values": the rewriter adjusts
the dumped thread-pointer value so that

    tp_dst + dst_block_offset == tp_src + src_block_offset

and every TLS access compiled into the destination binary lands on the
same bytes the source process was using.
"""

from __future__ import annotations

from ..isa import get_isa


def translate_tls_base(tls_base: int, src_arch: str, dst_arch: str) -> int:
    src_off = get_isa(src_arch).abi.tls_block_offset
    dst_off = get_isa(dst_arch).abi.tls_block_offset
    return tls_base + src_off - dst_off


def tls_block_address(tls_base: int, arch: str) -> int:
    """Virtual address of the TLS block given a thread pointer value."""
    return tls_base + get_isa(arch).abi.tls_block_offset
