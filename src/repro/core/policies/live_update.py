"""Live software update as a Dapper transformation policy.

The paper names dynamic software update as one of the "other possible
policies" Dapper's extensible rewriter supports (§I, §III-A). This
policy realizes it: a running process checkpointed at equivalence points
is retargeted onto a *new version* of its own program — same ISA, new
code — and resumes mid-execution under the updated binary.

Updatability conditions (checked, not assumed):

* both versions compile with the same program name and target the same
  ISA,
* for every frame suspended on any thread's stack at update time, the
  new binary has an equivalence point with the same id, the same
  function name and the same kind (entry/callsite) — true whenever the
  update does not add or remove *calls or functions* before those
  frames' eqpoints in program order (the classic quiescence restriction
  of DSU systems, expressed over Dapper's eqpoint numbering),
* value ids shared by both versions are transferred; **new locals** in
  an updated function zero-initialize; dropped locals are discarded.

The update may grow ``.data`` (new globals): the policy extends the data
VMA in ``mm.img`` and seeds the new region from the new binary's
initialization image.
"""

from __future__ import annotations

from typing import Dict

from ...binfmt.delf import DelfBinary
from ...criu.images import ImageSet
from ...errors import PolicyError
from ...mem.paging import page_align_up
from ..policy import TransformationPolicy
from ..rewriter import ImageMemory
from ..stack_rewrite import unwind_thread
from .cross_isa import retarget_images


class LiveUpdatePolicy(TransformationPolicy):
    name = "live-update"

    def __init__(self, old_binary: DelfBinary, new_binary: DelfBinary,
                 dst_exe_path: str):
        if old_binary.arch != new_binary.arch:
            raise PolicyError("live update cannot change the ISA; compose "
                              "with the cross-ISA policy instead")
        if old_binary.source_name != new_binary.source_name:
            raise PolicyError("new binary is a different program")
        self.old_binary = old_binary
        self.new_binary = new_binary
        self.dst_exe_path = dst_exe_path

    # -- updatability ------------------------------------------------------

    def check_updatable(self, images: ImageSet,
                        memory: ImageMemory) -> None:
        """Verify every suspended frame maps onto the new version."""
        new_maps = self.new_binary.stackmaps
        for core in images.cores():
            unwound = unwind_thread(memory, core, self.old_binary)
            for frame in unwound.frames:
                peer = new_maps.by_id.get(frame.eqpoint.eqpoint_id)
                if peer is None:
                    raise PolicyError(
                        f"not updatable here: eqpoint "
                        f"#{frame.eqpoint.eqpoint_id} ({frame.func}) has "
                        f"no counterpart in the new version")
                if peer.func != frame.func or peer.kind != frame.eqpoint.kind:
                    raise PolicyError(
                        f"not updatable here: eqpoint "
                        f"#{frame.eqpoint.eqpoint_id} moved from "
                        f"{frame.func}/{frame.eqpoint.kind} to "
                        f"{peer.func}/{peer.kind}")

    # -- application ----------------------------------------------------------

    def apply(self, images: ImageSet, memory: ImageMemory) -> Dict:
        self.check_updatable(images, memory)
        grown = self._grow_data_segment(images, memory)
        stats = retarget_images(images, memory, self.old_binary,
                                self.new_binary, self.dst_exe_path,
                                missing_live_ok=True)
        stats["data_bytes_added"] = grown
        return stats

    def _grow_data_segment(self, images: ImageSet,
                           memory: ImageMemory) -> int:
        """Extend the data VMA for new globals and seed their initial
        values from the new binary."""
        old_size = len(self.old_binary.data)
        new_size = len(self.new_binary.data)
        if new_size <= old_size:
            return 0
        mm = images.mm()
        data_vma = next((v for v in mm.vmas if v.name == ".data"), None)
        if data_vma is None:
            raise PolicyError("checkpoint has no .data VMA")
        needed_end = page_align_up(data_vma.start + new_size)
        if needed_end > data_vma.end:
            data_vma.end = needed_end
            images.set_mm(mm)
        memory.write(data_vma.start + old_size,
                     self.new_binary.data[old_size:])
        return new_size - old_size
