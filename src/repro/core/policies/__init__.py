"""Built-in transformation policies: cross-ISA migration, stack
shuffling, and live software update."""

from .cross_isa import CrossIsaPolicy
from .stack_shuffle import StackShufflePolicy
from .live_update import LiveUpdatePolicy

__all__ = ["CrossIsaPolicy", "StackShufflePolicy", "LiveUpdatePolicy"]
