"""Stack-slot re-randomization via static binary instrumentation (§IV-B).

The paper builds a stack-shuffling system on Dapper by applying SBI to
the checkpointed process image *and* the source binary: permute each
frame's candidate stack objects, re-encode the instructions that address
them (capstone-style disassembly → offset patch → re-assembly), and
update the stackmap records to the new layout. The checkpointed stacks
are then rewritten to the permuted layout — including remapping any live
pointers into moved slots — by the same retargeting core the cross-ISA
policy uses, with source ISA == destination ISA.

aarch64 slots accessed by ``ldp``/``stp`` pair instructions are excluded
from permutation (re-encoding pairs is scoped out, as in the paper),
which is why aarch64 shows fewer bits of entropy in Fig. 10.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...binfmt.delf import DelfBinary
from ...binfmt.frames import FrameSection
from ...binfmt.stackmaps import StackMapSection
from ...criu.images import ImageSet
from ...errors import RewriteError
from ...isa import get_isa
from ..entropy import frame_entropy_bits, shuffleable_slots
from ..policy import TransformationPolicy
from ..rewriter import ImageMemory
from ..rng import RngService
from .cross_isa import retarget_images


class ShuffleStats:
    """Per-stage counters used by the Fig. 9 time-cost model."""

    def __init__(self):
        self.functions = 0
        self.slots_shuffled = 0
        self.pairs = 0
        self.code_bytes = 0
        self.instructions_scanned = 0
        self.instructions_patched = 0
        self.stackmap_records_updated = 0
        self.entropy_bits: Dict[str, int] = {}

    def as_dict(self) -> Dict:
        return {
            "functions": self.functions,
            "slots_shuffled": self.slots_shuffled,
            "pairs": self.pairs,
            "code_bytes": self.code_bytes,
            "instructions_scanned": self.instructions_scanned,
            "instructions_patched": self.instructions_patched,
            "stackmap_records_updated": self.stackmap_records_updated,
        }


def shuffle_binary(binary: DelfBinary, seed: int,
                   new_exe_suffix: str = ".shuffled",
                   rng: Optional[RngService] = None
                   ) -> Tuple[DelfBinary, ShuffleStats]:
    """Produce a same-ISA binary with permuted frame layouts.

    Returns the transformed binary and the shuffle statistics. Instruction
    sizes never change (the offset fields are fixed-width), so code
    addresses — and therefore symbols and stackmap pcs — are unchanged.

    All randomness flows through one :class:`~repro.core.rng.RngService`
    seeded with ``seed`` (pass ``rng`` to observe the draws — the flight
    recorder does, making every shuffle reproducible from its journal).
    The permutation sequence is bit-identical to the historical ad-hoc
    ``random.Random(seed)`` behaviour.
    """
    if rng is None:
        rng = RngService(seed, name="stack-shuffle")
    isa = get_isa(binary.arch)
    fp_index = isa.reg(isa.abi.frame_pointer)
    stats = ShuffleStats()

    # Deep-copy the metadata sections via their wire round-trip.
    frames = FrameSection.from_bytes(binary.frames.to_bytes())
    stackmaps = StackMapSection.from_bytes(binary.stackmaps.to_bytes())
    text = bytearray(binary.text)

    for record in frames.frames:
        candidates = shuffleable_slots(record)
        stats.functions += 1
        stats.entropy_bits[record.func] = frame_entropy_bits(record)
        if len(candidates) < 2:
            continue
        # Pair allocations of equal size and permute every pair (§IV-B).
        order = list(candidates)
        rng.shuffle(order, label=f"frame:{record.func}")
        offset_moves: Dict[int, int] = {}
        for i in range(0, len(order) - 1, 2):
            a, b = order[i], order[i + 1]
            offset_moves[a.offset] = b.offset
            offset_moves[b.offset] = a.offset
            a.offset, b.offset = b.offset, a.offset
            stats.pairs += 1
            stats.slots_shuffled += 2
        # Patch the code: every fp-relative access to a moved slot.
        patched = _patch_function_code(text, binary, record.addr,
                                       record.end_addr, fp_index,
                                       offset_moves, isa, stats)
        stats.instructions_patched += patched
        # Update the stackmap records (value_id == slot_id by construction).
        moved_ids = {s.slot_id: s.offset for s in candidates}
        for point in stackmaps.for_func(record.func):
            for live in point.live:
                if live.value_id in moved_ids and live.on_stack():
                    if live.stack_offset != moved_ids[live.value_id]:
                        live.stack_offset = moved_ids[live.value_id]
                        stats.stackmap_records_updated += 1

    shuffled = DelfBinary(
        arch=binary.arch,
        entry=binary.entry,
        source_name=binary.source_name,
        text=bytes(text),
        data=binary.data,
        symtab=binary.symtab,
        stackmaps=stackmaps,
        frames=frames,
        tls_template=binary.tls_template,
        extra_sections=dict(binary.extra_sections),
    )
    return shuffled, stats


def _patch_function_code(text: bytearray, binary: DelfBinary, addr: int,
                         end_addr: int, fp_index: int,
                         offset_moves: Dict[int, int], isa,
                         stats: ShuffleStats) -> int:
    """Disassemble one function, rewrite moved fp-relative offsets."""
    from ...binfmt.delf import TEXT_BASE
    start = addr - TEXT_BASE
    end = min(end_addr - TEXT_BASE, len(text))
    blob = bytes(text[start:end])
    stats.code_bytes += len(blob)
    patched = 0
    offset = 0
    while offset < len(blob):
        instr = isa.decode(blob, offset, addr + offset)
        stats.instructions_scanned += 1
        if (instr.op in ("load", "store", "lea") and instr.rn == fp_index
                and instr.imm in offset_moves):
            instr.imm = offset_moves[instr.imm]
            new_bytes = isa.encode(instr)
            if len(new_bytes) != instr.size:
                raise RewriteError("offset patch changed instruction size")
            text[start + offset:start + offset + instr.size] = new_bytes
            patched += 1
        offset += instr.size
    return patched


class StackShufflePolicy(TransformationPolicy):
    """Shuffle the checkpointed process's stack layout.

    ``apply`` transforms the images to resume under the shuffled binary;
    the shuffled binary itself is exposed as ``self.shuffled_binary`` and
    must be installed at ``dst_exe_path`` on the restoring machine.
    """

    name = "stack-shuffle"

    def __init__(self, binary: DelfBinary, seed: int, dst_exe_path: str,
                 rng: Optional[RngService] = None):
        self.src_binary = binary
        self.dst_exe_path = dst_exe_path
        self.shuffled_binary, self.shuffle_stats = shuffle_binary(
            binary, seed, rng=rng)

    def apply(self, images: ImageSet, memory: ImageMemory) -> Dict:
        stats = retarget_images(images, memory, self.src_binary,
                                self.shuffled_binary, self.dst_exe_path)
        stats.update(self.shuffle_stats.as_dict())
        return stats
