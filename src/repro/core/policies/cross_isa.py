"""Cross-architecture state transformation (paper §III-C, §III-D2b).

Given a checkpoint taken on the source ISA and the pair of aligned
binaries, this policy rewrites the image set so it restores on the
destination ISA:

1. unwind every thread's stack against the source stackmaps,
2. lay out destination frames per the destination frame records,
3. copy live values (registers ↔ slots), remapping stack pointers,
4. translate each thread's register file, pc, sp, fp,
5. adjust the TLS thread-pointer displacement,
6. replace the execution-context code page(s) with the destination
   binary's, and point ``files.img`` at the destination executable,
7. mark every image as targeting the destination architecture.

The same machinery, pointed at a *same-ISA* binary with a permuted frame
layout, implements stack shuffling — see
:mod:`repro.core.policies.stack_shuffle` — so the retargeting core is
exposed as :func:`retarget_images`.
"""

from __future__ import annotations

from typing import Dict

from ...binfmt.delf import DelfBinary
from ...criu.images import ImageSet
from ...errors import RewriteError
from ...mem.paging import PAGE_SIZE, page_align_down
from ..policy import TransformationPolicy
from ..rewriter import ImageMemory
from ..stack_rewrite import FrameMap, unwind_thread, write_thread
from ..tlsmod import translate_tls_base


def retarget_images(images: ImageSet, memory: ImageMemory,
                    src_binary: DelfBinary, dst_binary: DelfBinary,
                    dst_exe_path: str,
                    missing_live_ok: bool = False) -> Dict:
    """Rewrite a checkpoint so it resumes under ``dst_binary``.

    Source and destination may be different ISAs (cross-ISA migration),
    the same ISA with a different frame layout (stack shuffling), or a
    different program *version* (live update; ``missing_live_ok``
    zero-fills new locals the source frames don't carry).
    """
    inventory = images.inventory()
    if inventory.arch != src_binary.arch:
        raise RewriteError(
            f"checkpoint is {inventory.arch}, rewriter expects "
            f"{src_binary.arch}")
    dst_arch = dst_binary.arch
    mm = images.mm()

    # Phase A: unwind all threads (read-only over the dump).
    unwound = [unwind_thread(memory, core, src_binary)
               for core in images.cores()]

    # Phase B: destination layout for every frame of every thread — the
    # global pointer-remap table needs all of them up front.
    frame_map = FrameMap()
    for thread in unwound:
        frame_map.add_thread(thread, dst_binary, dst_arch)

    # Phase C: write destination stacks and rebuild core images.
    frames_total = 0
    for thread in unwound:
        new_core = write_thread(memory, thread, frame_map, src_binary,
                                dst_binary, dst_arch, mm.vmas,
                                missing_live_ok=missing_live_ok)
        new_core.tls_base = translate_tls_base(
            thread.core.tls_base, inventory.arch, dst_arch)
        images.set_core(new_core)
        frames_total += len(thread.frames)

    # Phase D: swap the execution-context code pages (paper: "replaces
    # the code page(s) with the corresponding code page(s) of the
    # destination architecture").
    code_pages = _swap_code_pages(images, memory, dst_binary)

    # Phase E: retarget files.img and inventory.
    files_img = images.files_img()
    files_img.exe_path = dst_exe_path
    files_img.exe_arch = dst_arch
    images.set_files_img(files_img)
    inventory.arch = dst_arch
    images.set_inventory(inventory)

    return {
        "threads": len(unwound),
        "frames": frames_total,
        "pointers_remapped": frame_map.pointers_remapped,
        "pointers_kept": frame_map.pointers_kept,
        "code_pages_swapped": code_pages,
    }


def _swap_code_pages(images: ImageSet, memory: ImageMemory,
                     dst_binary: DelfBinary) -> int:
    text_vmas = [v for v in images.mm().vmas if v.file_backed]
    if not text_vmas:
        raise RewriteError("no file-backed code VMA in mm.img")
    text = text_vmas[0]
    # Drop every dumped source code page.
    for base in memory.page_bases():
        if text.start <= base < text.end:
            memory.drop_page(base)
    # Install the destination execution context: the page under each
    # thread's (already-translated) pc.
    swapped = 0
    for core in images.cores():
        base = page_align_down(core.pc)
        for page_base in (base, base + PAGE_SIZE):
            if page_base < text.start or page_base >= text.end:
                continue
            if memory.has_page(page_base):
                continue
            offset = page_base - text.start
            page = dst_binary.text[offset:offset + PAGE_SIZE]
            page = page + b"\x00" * (PAGE_SIZE - len(page))
            memory.add_page(page_base, page)
            swapped += 1
    return swapped


class CrossIsaPolicy(TransformationPolicy):
    name = "cross-isa"

    def __init__(self, src_binary: DelfBinary, dst_binary: DelfBinary,
                 dst_exe_path: str):
        if src_binary.arch == dst_binary.arch:
            raise RewriteError("source and destination ISAs are identical")
        if src_binary.source_name != dst_binary.source_name:
            raise RewriteError("binaries come from different programs")
        self.src_binary = src_binary
        self.dst_binary = dst_binary
        self.dst_exe_path = dst_exe_path

    def apply(self, images: ImageSet, memory: ImageMemory) -> Dict:
        return retarget_images(images, memory, self.src_binary,
                               self.dst_binary, self.dst_exe_path)
