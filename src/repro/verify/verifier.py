"""The layered state-image verifier that gates every restore.

Dapper *rewrites* checkpoint images between dump and restore, which
makes the restore boundary the single most dangerous point in the
system: a buggy policy or a corrupt byte that slipped past transfer
re-hashing used to surface only as undefined interpreter behavior long
after restore. :class:`ImageVerifier` judges an arriving image *before*
anything is rebuilt from it, in three passes:

* **structural** — magics and wire schemas decode, every image file the
  inventory implies is present, pagemap/pages lengths agree, pagemap
  runs are aligned, non-overlapping, and inside a mapped VMA, and
  parent-chain (delta) references resolve through the checkpoint store;
* **semantic** — core registers are complete for the target ISA's DWARF
  numbering, the pc lands on an *entry* equivalence point of the linked
  binary's stackmaps, a full stack walk typechecks every frame, live
  pointers point into mapped VMAs, the TLS base sits inside the
  thread's TLS VMA, and dumped ``.text`` pages match the binary's bytes
  (distinguishing legitimate rewritten execution-context pages from
  corruption);
* **repair** — clean-page divergences are rewritten from the binary or
  re-fetched by digest from the chunk store; anything else is left for
  quarantine (:mod:`repro.verify.quarantine`).

Every check produces a :class:`Finding` rather than raising, so one
report carries the complete diagnosis; :func:`verify_images` wraps the
common raise-on-failure flow.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ..binfmt.delf import DelfBinary
from ..binfmt.stackmaps import KIND_ENTRY
from ..core.tlsmod import tls_block_address
from ..criu.images import ImageSet
from ..errors import ImageFormatError, ReproError, RewriteError, VerifyError
from ..isa import ISAS, get_isa
from ..mem.paging import PAGE_SIZE

PASS_STRUCTURAL = "structural"
PASS_SEMANTIC = "semantic"
PASS_REPAIR = "repair"

#: image files every full checkpoint must carry (cores are per-tid)
REQUIRED_FILES = ("inventory.img", "mm.img", "files.img", "pagemap.img",
                  "pages-1.img")

#: severities: ``fatal`` blocks restore outright, ``repairable`` names a
#: divergence pass 3 knows how to fix, ``advisory`` is reported but
#: never blocks (legal-but-suspicious state).
FATAL = "fatal"
REPAIRABLE = "repairable"
ADVISORY = "advisory"


def page_digest(data: bytes) -> str:
    """Digest of one page, identical to the chunk store's addressing —
    so a manifest's ``[vaddr, digest]`` pairs verify pages directly."""
    from ..store.chunks import chunk_digest
    return chunk_digest(data)


class Finding:
    """One defect the verifier found.

    ``repair`` is ``None`` (unrepairable) or a tuple naming the source
    pass 3 can rebuild the page from: ``("binary", page_base)`` or
    ``("store", page_base, chunk_digest)``.

    ``plugin`` names the checkpoint plugin
    (:mod:`repro.criu.plugins`) owning the defective resource — set
    directly by plugin ``verify`` hooks, or attributed afterwards from
    the finding code so quarantine diagnoses say *which resource class*
    failed, not just which pass.
    """

    __slots__ = ("pass_name", "code", "severity", "message", "vaddr",
                 "repair", "plugin")

    def __init__(self, pass_name: str, code: str, message: str,
                 severity: str = FATAL, vaddr: Optional[int] = None,
                 repair: Optional[tuple] = None,
                 plugin: Optional[str] = None):
        self.pass_name = pass_name
        self.code = code
        self.severity = severity
        self.message = message
        self.vaddr = vaddr
        self.repair = repair
        self.plugin = plugin

    def to_dict(self) -> dict:
        out = {"pass": self.pass_name, "code": self.code,
               "severity": self.severity, "message": self.message}
        if self.vaddr is not None:
            out["vaddr"] = self.vaddr
        if self.repair is not None:
            out["repair"] = list(self.repair)
        if self.plugin is not None:
            out["plugin"] = self.plugin
        return out

    def __repr__(self) -> str:
        where = f" @{self.vaddr:#x}" if self.vaddr is not None else ""
        return (f"<Finding [{self.pass_name}/{self.code}] "
                f"{self.severity}{where}: {self.message}>")


class VerifyReport:
    """Everything one verification produced: findings per pass, which
    passes ran, what pass 3 repaired."""

    def __init__(self):
        self.findings: List[Finding] = []
        self.passes_run: List[str] = []
        #: findings pass 3 fixed (removed from ``findings``)
        self.repaired: List[Finding] = []
        #: advisory findings: reported, never block the restore
        self.notes: List[Finding] = []
        self.checks = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def add(self, finding: Finding) -> Finding:
        if finding.severity == ADVISORY:
            self.notes.append(finding)
        else:
            self.findings.append(finding)
        return finding

    def fatal(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == FATAL]

    def repairable(self) -> List[Finding]:
        return [f for f in self.findings if f.repair is not None]

    def by_plugin(self) -> Dict[str, int]:
        """Finding counts keyed by owning checkpoint plugin (findings no
        plugin claims count under ``"?"``)."""
        out: Dict[str, int] = {}
        for finding in self.findings:
            key = finding.plugin or "?"
            out[key] = out.get(key, 0) + 1
        return out

    def failing_pass(self) -> Optional[str]:
        """Name of the first failing pass (the diagnosis headline)."""
        for name in (PASS_STRUCTURAL, PASS_SEMANTIC, PASS_REPAIR):
            if any(f.pass_name == name for f in self.findings):
                return name
        return None

    def to_dict(self) -> dict:
        """Machine-readable diagnosis (what quarantine stores)."""
        return {
            "ok": self.ok,
            "failing_pass": self.failing_pass(),
            "passes_run": list(self.passes_run),
            "checks": self.checks,
            "findings": [f.to_dict() for f in self.findings],
            "repaired": [f.to_dict() for f in self.repaired],
            "notes": [f.to_dict() for f in self.notes],
            "by_plugin": self.by_plugin(),
        }

    def summary(self) -> str:
        if self.ok and not self.repaired:
            return (f"ok ({self.checks} checks, "
                    f"passes: {'+'.join(self.passes_run)})")
        if self.ok:
            return (f"ok after repairing {len(self.repaired)} page(s) "
                    f"({self.checks} checks)")
        head = self.findings[0]
        return (f"FAILED pass {self.failing_pass()}: "
                f"{len(self.findings)} finding(s), first: {head.message}")

    def __repr__(self) -> str:
        return f"<VerifyReport {self.summary()}>"


class ImageVerifier:
    """Verifies (and optionally repairs) one :class:`ImageSet`.

    ``binary`` enables the semantic pass; ``store`` lets delta
    references resolve and repairs re-fetch pages by digest;
    ``page_digests`` (vaddr -> chunk digest, e.g. from
    ``CheckpointStore.resolve_pages``) and ``expected_digest`` (the
    sender's ``ImageSet.content_digest``) catch byte-level divergence
    the schemas cannot see.

    ``registry`` is the checkpoint plugin registry
    (:func:`repro.criu.plugins.default_registry` when omitted): its
    plugins' ``verify`` hooks run as part of the semantic pass — so new
    resource sections (sockets, tmpfs, ...) get checked without this
    module changing — and every finding is attributed to its owning
    plugin for the quarantine diagnosis.
    """

    def __init__(self, binary: Optional[DelfBinary] = None,
                 store=None,
                 page_digests: Optional[Dict[int, str]] = None,
                 expected_digest: Optional[str] = None,
                 registry=None):
        self.binary = binary
        self.store = store
        self.page_digests = dict(page_digests or {})
        self.expected_digest = expected_digest
        self._registry = registry

    @property
    def registry(self):
        if self._registry is None:
            from ..criu.plugins import default_registry
            self._registry = default_registry()
        return self._registry

    # -- driving -----------------------------------------------------------

    def verify(self, images: ImageSet) -> VerifyReport:
        report = VerifyReport()
        report.passes_run.append(PASS_STRUCTURAL)
        self._pass_structural(images, report)
        if not report.fatal():
            report.passes_run.append(PASS_SEMANTIC)
            self._pass_semantic(images, report)
            self.registry.verify(images, report, binary=self.binary,
                                 store=self.store)
        self._attribute(report)
        return report

    def _attribute(self, report: VerifyReport) -> None:
        """Stamp each finding with the plugin owning its code, so the
        report (and any quarantine diagnosis built from it) says which
        resource class failed."""
        registry = self.registry
        for finding in report.findings + report.notes + report.repaired:
            if finding.plugin is None:
                finding.plugin = registry.plugin_for_code(finding.code)

    def repair(self, images: ImageSet
               ) -> Tuple[Optional[ImageSet], VerifyReport]:
        """Pass 3: verify, rewrite every repairable page from its named
        source, and re-verify.

        Returns ``(repaired_images, report)``; the images are ``None``
        when the set is clean-but-unrepaired is not needed (already ok,
        the originals are returned) or unrepairable (quarantine it —
        the report carries the diagnosis).
        """
        report = self.verify(images)
        if report.ok:
            return images, report
        repairable = report.repairable()
        if not repairable or len(repairable) != len(report.findings):
            # Something fatal (or a divergence with no known source):
            # not repairable, hand the diagnosis to quarantine.
            return None, report
        # Several findings may indict the same page (digest mismatch +
        # text divergence): rewrite it once.
        repairs, seen = [], set()
        for finding in repairable:
            if finding.vaddr not in seen:
                seen.add(finding.vaddr)
                repairs.append(finding)
        fixed = ImageSet(dict(images.files))
        blob = bytearray(fixed.pages())
        offsets = _page_offsets(fixed)
        for finding in repairs:
            data = self._fetch_repair(finding)
            if data is None:
                report.add(Finding(
                    PASS_REPAIR, "unfetchable",
                    f"repair source for page {finding.vaddr:#x} "
                    f"unavailable", vaddr=finding.vaddr))
                return None, report
            offset = offsets.get(finding.vaddr)
            if offset is None:
                report.add(Finding(
                    PASS_REPAIR, "unlocatable",
                    f"page {finding.vaddr:#x} not in pages-1.img",
                    vaddr=finding.vaddr))
                return None, report
            blob[offset:offset + PAGE_SIZE] = data
        fixed.set_pages(bytes(blob))
        after = self.verify(fixed)
        after.passes_run.append(PASS_REPAIR)
        after.repaired = repairs
        after.checks += report.checks
        if not after.ok:
            return None, after
        return fixed, after

    def _fetch_repair(self, finding: Finding) -> Optional[bytes]:
        kind = finding.repair[0]
        if kind == "binary" and self.binary is not None:
            return _binary_page(self.binary, finding.repair[1])
        if kind == "store" and self.store is not None:
            try:
                return self.store.chunks.get(finding.repair[2])
            except ReproError:
                return None
        return None

    # -- pass 1: structural ------------------------------------------------

    def _pass_structural(self, images: ImageSet,
                         report: VerifyReport) -> None:
        add, check = report.add, self._tick(report)

        for name in REQUIRED_FILES:
            check()
            if name not in images.files:
                add(Finding(PASS_STRUCTURAL, "missing-file",
                            f"image set has no {name}"))
        if report.fatal():
            return

        def decode(what, fn):
            check()
            try:
                return fn()
            except ImageFormatError as exc:
                add(Finding(PASS_STRUCTURAL, f"decode:{what}", str(exc)))
                return None

        inventory = decode("inventory", images.inventory)
        mm = decode("mm", images.mm)
        files_img = decode("files", images.files_img)
        pagemap = decode("pagemap", images.pagemap)
        cores = []
        if inventory is not None:
            for tid in inventory.tids:
                name = f"core-{tid}.img"
                check()
                if name not in images.files:
                    add(Finding(PASS_STRUCTURAL, "missing-file",
                                f"inventory names tid {tid} but {name} "
                                f"is absent"))
                    continue
                core = decode(f"core-{tid}", lambda t=tid: images.core(t))
                if core is not None:
                    if core.tid != tid:
                        add(Finding(PASS_STRUCTURAL, "core-tid",
                                    f"{name} claims tid {core.tid}"))
                    cores.append(core)
        if pagemap is None or mm is None or files_img is None \
                or inventory is None:
            return

        pages = images.pages()
        check()
        want = pagemap.data_pages() * PAGE_SIZE
        if len(pages) != want:
            add(Finding(
                PASS_STRUCTURAL, "pages-length",
                f"pagemap claims {pagemap.data_pages()} data page(s) "
                f"({want} bytes) but pages-1.img holds {len(pages)}"))

        runs = sorted(pagemap.entries, key=lambda e: e.vaddr)
        prev_end = None
        for entry in runs:
            check()
            if entry.vaddr % PAGE_SIZE or entry.nr_pages <= 0:
                add(Finding(PASS_STRUCTURAL, "run-align",
                            f"pagemap run at {entry.vaddr:#x} "
                            f"x{entry.nr_pages} is not page-aligned",
                            vaddr=entry.vaddr))
                continue
            span = entry.nr_pages * PAGE_SIZE
            if prev_end is not None and entry.vaddr < prev_end:
                add(Finding(PASS_STRUCTURAL, "run-overlap",
                            f"pagemap run at {entry.vaddr:#x} overlaps "
                            f"the previous run", vaddr=entry.vaddr))
            prev_end = entry.vaddr + span
            for i in range(entry.nr_pages):
                base = entry.vaddr + i * PAGE_SIZE
                if not any(v.start <= base < v.end for v in mm.vmas):
                    add(Finding(PASS_STRUCTURAL, "run-outside-vma",
                                f"dumped page {base:#x} is outside "
                                f"every mapped VMA", vaddr=base))

        check()
        if pagemap.is_delta():
            self._check_parent_chain(inventory, pagemap, add)

        if self.expected_digest is not None:
            check()
            if images.content_digest() != self.expected_digest:
                add(Finding(PASS_STRUCTURAL, "content-digest",
                            "image-set content digest differs from the "
                            "sender's", severity=REPAIRABLE))
        if self.page_digests and not report.fatal():
            self._check_page_digests(images, pagemap, mm, report)

        # The whole-set digest finding cannot be repaired directly; it
        # clears when the per-page repairs restore the exact bytes. With
        # no per-page divergence backing it up, it is fatal.
        for finding in list(report.findings):
            if finding.code == "content-digest":
                backed = any(f.code == "page-digest"
                             for f in report.findings)
                if backed:
                    report.findings.remove(finding)
                else:
                    finding.severity = FATAL
                    finding.repair = None

    def _check_parent_chain(self, inventory, pagemap, add) -> None:
        if not inventory.parent:
            add(Finding(PASS_STRUCTURAL, "delta-no-parent",
                        "pagemap has PE_PARENT runs but the inventory "
                        "names no parent checkpoint"))
            return
        if self.store is None:
            add(Finding(PASS_STRUCTURAL, "delta-no-store",
                        f"delta against {inventory.parent[:12]} cannot "
                        f"resolve without a checkpoint store"))
            return
        if inventory.parent not in self.store:
            add(Finding(PASS_STRUCTURAL, "delta-unknown-parent",
                        f"parent checkpoint {inventory.parent[:12]} is "
                        f"not in the store"))
            return
        try:
            resolvable = self.store.resolve_pages(inventory.parent)
        except ReproError as exc:
            add(Finding(PASS_STRUCTURAL, "delta-broken-chain", str(exc)))
            return
        for entry in pagemap.entries:
            if not entry.in_parent:
                continue
            for i in range(entry.nr_pages):
                base = entry.vaddr + i * PAGE_SIZE
                if base not in resolvable:
                    add(Finding(PASS_STRUCTURAL, "delta-unresolvable",
                                f"PE_PARENT page {base:#x} is not "
                                f"resolvable through the parent chain",
                                vaddr=base))

    def _check_page_digests(self, images: ImageSet, pagemap, mm,
                            report: VerifyReport) -> None:
        """Per-page divergence against the sender's manifest digests —
        each mismatch names the repair source pass 3 will use."""
        check = self._tick(report)
        offset = 0
        pages = images.pages()
        text_vmas = [v for v in mm.vmas if v.file_backed]
        for entry in pagemap.entries:
            if entry.in_parent:
                continue
            for i in range(entry.nr_pages):
                base = entry.vaddr + i * PAGE_SIZE
                data = pages[offset:offset + PAGE_SIZE]
                offset += PAGE_SIZE
                want = self.page_digests.get(base)
                check()
                if want is None or page_digest(data) == want:
                    continue
                repair = None
                if (self.store is not None
                        and self.store.chunks.has(want)):
                    repair = ("store", base, want)
                elif (self.binary is not None
                        and any(v.start <= base < v.end
                                for v in text_vmas)):
                    repair = ("binary", base)
                report.add(Finding(
                    PASS_STRUCTURAL, "page-digest",
                    f"page {base:#x} digest differs from the sender's "
                    f"manifest", severity=REPAIRABLE, vaddr=base,
                    repair=repair))

    # -- pass 2: semantic --------------------------------------------------

    def _pass_semantic(self, images: ImageSet,
                       report: VerifyReport) -> None:
        add, check = report.add, self._tick(report)
        inventory = images.inventory()
        mm = images.mm()
        files_img = images.files_img()
        cores = images.cores()

        check()
        if inventory.arch not in ISAS:
            add(Finding(PASS_SEMANTIC, "arch-unknown",
                        f"inventory names unknown arch "
                        f"{inventory.arch!r}"))
            return
        isa = get_isa(inventory.arch)
        if files_img.exe_arch and files_img.exe_arch != inventory.arch:
            add(Finding(PASS_SEMANTIC, "arch-mismatch",
                        f"files.img targets {files_img.exe_arch}, "
                        f"inventory says {inventory.arch}"))

        want_dwarf = {r.dwarf for r in isa.registers}
        for core in cores:
            check()
            if core.arch != inventory.arch:
                add(Finding(PASS_SEMANTIC, "arch-mismatch",
                            f"core-{core.tid} is {core.arch}, inventory "
                            f"says {inventory.arch}"))
                continue
            missing = want_dwarf - set(core.regs)
            unknown = set(core.regs) - want_dwarf
            if missing:
                add(Finding(PASS_SEMANTIC, "regs-incomplete",
                            f"core-{core.tid} misses DWARF register(s) "
                            f"{sorted(missing)} of the {isa.name} file"))
            if unknown:
                add(Finding(PASS_SEMANTIC, "regs-unknown",
                            f"core-{core.tid} carries DWARF register(s) "
                            f"{sorted(unknown)} unknown to {isa.name}"))
            check()
            tls_vma = next((v for v in mm.vmas
                            if v.name == f"tls:{core.tid}"), None)
            # The invariant is ABI-relative: the TLS *block* (tp plus the
            # libc displacement, see repro.core.tlsmod) sits inside the
            # thread's TLS VMA; the raw thread pointer may legally point
            # just outside it (x86-64's negative block offset).
            block = tls_block_address(core.tls_base, isa.name)
            if tls_vma is None:
                add(Finding(PASS_SEMANTIC, "tls-vma",
                            f"no tls:{core.tid} VMA for core-{core.tid}"))
            elif not (tls_vma.start <= block < tls_vma.end):
                add(Finding(PASS_SEMANTIC, "tls-base",
                            f"core-{core.tid} TLS block {block:#x} "
                            f"(tp {core.tls_base:#x}) outside "
                            f"[{tls_vma.start:#x}, {tls_vma.end:#x})",
                            vaddr=block))

        if self.binary is None or report.fatal():
            return
        if self.binary.arch != inventory.arch:
            add(Finding(PASS_SEMANTIC, "arch-mismatch",
                        f"verification binary is {self.binary.arch}, "
                        f"image targets {inventory.arch}"))
            return
        self._check_text_pages(images, mm, report)
        if not images.is_delta():
            self._check_stacks(images, cores, mm, report)

    def _check_text_pages(self, images: ImageSet, mm,
                          report: VerifyReport) -> None:
        """Dumped file-backed (execution-context) pages must equal the
        linked binary's bytes: code is never legitimately written at
        runtime, so any divergence is corruption — and repairable."""
        check = self._tick(report)
        text_vmas = [v for v in mm.vmas if v.file_backed]
        offset = 0
        pages = images.pages()
        for entry in images.pagemap().entries:
            if entry.in_parent:
                continue
            for i in range(entry.nr_pages):
                base = entry.vaddr + i * PAGE_SIZE
                data = pages[offset:offset + PAGE_SIZE]
                offset += PAGE_SIZE
                if not any(v.start <= base < v.end for v in text_vmas):
                    continue
                check()
                if data != _binary_page(self.binary, base):
                    report.add(Finding(
                        PASS_SEMANTIC, "text-page",
                        f"execution-context page {base:#x} differs "
                        f"from the linked binary's .text",
                        severity=REPAIRABLE, vaddr=base,
                        repair=("binary", base)))

    def _check_stacks(self, images: ImageSet, cores, mm,
                      report: VerifyReport) -> None:
        from ..core.rewriter import ImageMemory
        from ..core.stack_rewrite import unwind_thread
        add, check = report.add, self._tick(report)
        stackmaps = self.binary.stackmaps
        try:
            memory = ImageMemory(images)
        except (RewriteError, ImageFormatError) as exc:
            add(Finding(PASS_SEMANTIC, "stack-memory", str(exc)))
            return
        for core in cores:
            check()
            point = stackmaps.by_addr.get(core.pc)
            if point is None or point.kind != KIND_ENTRY:
                add(Finding(PASS_SEMANTIC, "eqpoint",
                            f"core-{core.tid} pc {core.pc:#x} is not an "
                            f"entry equivalence point of the binary",
                            vaddr=core.pc))
                continue
            check()
            try:
                thread = unwind_thread(memory, core, self.binary)
            except (RewriteError, ImageFormatError, KeyError) as exc:
                add(Finding(PASS_SEMANTIC, "stack-walk",
                            f"core-{core.tid} stack walk failed: {exc}"))
                continue
            for frame in thread.frames:
                for live in frame.eqpoint.live:
                    if not live.is_pointer or live.size != 8:
                        continue
                    raw = frame.values.get(live.value_id)
                    if raw is None:
                        continue
                    check()
                    value = int.from_bytes(raw[:8], "little")
                    if value and not any(v.start <= value < v.end
                                         for v in mm.vmas):
                        # Advisory, not fatal: the rewriter legally
                        # passes non-address pointer values through
                        # unchanged (pointers_kept), so this is
                        # suspicious state, not provable corruption.
                        add(Finding(
                            PASS_SEMANTIC, "pointer",
                            f"core-{core.tid} {frame.func}: live "
                            f"pointer {live.name!r} = {value:#x} points "
                            f"outside every mapped VMA", vaddr=value,
                            severity=ADVISORY))

    # -- misc --------------------------------------------------------------

    @staticmethod
    def _tick(report: VerifyReport):
        def check():
            report.checks += 1
        return check


def _binary_page(binary: DelfBinary, base: int) -> bytes:
    """The binary's bytes for the page at ``base`` (zero-padded), per
    its ``.text`` segment layout — what the loader would install."""
    for segment in binary.segments:
        if segment.section != ".text":
            continue
        lo = segment.vaddr
        if not (lo <= base < lo + max(segment.size, PAGE_SIZE)):
            continue
        offset = base - lo
        chunk = binary.text[offset:offset + PAGE_SIZE]
        return chunk + bytes(PAGE_SIZE - len(chunk))
    return bytes(PAGE_SIZE)


def _page_offsets(images: ImageSet) -> Dict[int, int]:
    """vaddr -> byte offset into pages-1.img for every data page."""
    out: Dict[int, int] = {}
    offset = 0
    for entry in images.pagemap().entries:
        if entry.in_parent:
            continue
        for i in range(entry.nr_pages):
            out[entry.vaddr + i * PAGE_SIZE] = offset
            offset += PAGE_SIZE
    return out


def image_page_digests(images: ImageSet) -> Dict[int, str]:
    """vaddr -> chunk digest for every data page: the sender-side
    manifest a receiving verifier checks the arrived bytes against."""
    pages = images.pages()
    return {vaddr: page_digest(pages[off:off + PAGE_SIZE])
            for vaddr, off in _page_offsets(images).items()}


def verify_images(images: ImageSet, *, binary: Optional[DelfBinary] = None,
                  store=None, page_digests=None, expected_digest=None,
                  raise_on_fail: bool = True,
                  registry=None) -> VerifyReport:
    """One-call verification. Raises :class:`VerifyError` carrying the
    findings when the image fails and ``raise_on_fail`` is set."""
    verifier = ImageVerifier(binary=binary, store=store,
                             page_digests=page_digests,
                             expected_digest=expected_digest,
                             registry=registry)
    report = verifier.verify(images)
    if raise_on_fail and not report.ok:
        raise VerifyError(
            f"state image failed {report.failing_pass()} verification: "
            f"{report.findings[0].message} "
            f"({len(report.findings)} finding(s))",
            pass_name=report.failing_pass() or "?",
            findings=[f.to_dict() for f in report.findings])
    return report
