"""Quarantine: where unrepairable images go instead of being restored.

A quarantined image keeps its full ``.img`` file set plus a
``diagnosis.json`` — the verifier's machine-readable report naming the
failing pass and every finding — so an operator (or ``repro-verify
doctor`` with better repair sources) can revisit it later.

The backend is anything with the tmpfs file API (``write`` / ``read`` /
``listdir`` / ``remove`` / ``exists``): the migration pipeline
quarantines into the destination machine's tmpfs under ``/quarantine``,
the CLI into a real directory via :class:`HostDirFs`.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from ..criu.images import ImageSet
from ..errors import VerifyError
from .verifier import VerifyReport

DIAGNOSIS_FILE = "diagnosis.json"


class HostDirFs:
    """tmpfs-compatible adapter over a real directory (for the CLI)."""

    def __init__(self, root: str):
        self.root = root

    def _host(self, path: str) -> str:
        return os.path.join(self.root, path.lstrip("/"))

    def write(self, path: str, data: bytes) -> None:
        host = self._host(path)
        os.makedirs(os.path.dirname(host), exist_ok=True)
        with open(host, "wb") as fh:
            fh.write(data)

    def read(self, path: str) -> bytes:
        with open(self._host(path), "rb") as fh:
            return fh.read()

    def exists(self, path: str) -> bool:
        return os.path.exists(self._host(path))

    def remove(self, path: str) -> None:
        host = self._host(path)
        if os.path.exists(host):
            os.unlink(host)

    def listdir(self, prefix: str) -> List[str]:
        prefix = "/" + prefix.strip("/")
        host = self._host(prefix)
        out = []
        for dirpath, _dirs, files in os.walk(host):
            for name in files:
                rel = os.path.relpath(os.path.join(dirpath, name), host)
                out.append(f"{prefix}/{rel}")
        return sorted(out)


class Quarantine:
    """A quarantine area over one filesystem backend."""

    def __init__(self, fs, root: str = "/quarantine"):
        self.fs = fs
        self.root = "/" + root.strip("/")

    @classmethod
    def at_dir(cls, path: str) -> "Quarantine":
        """A quarantine over a real host directory (the CLI's form)."""
        return cls(HostDirFs(path), root="/")

    def _prefix(self, qid: str) -> str:
        return f"{self.root}/{qid}"

    def add(self, images: ImageSet, report: VerifyReport,
            reason: str = "") -> str:
        """Move an image set into quarantine; returns its id (derived
        from the content digest, so re-quarantining the same corrupt
        bytes is idempotent)."""
        qid = images.content_digest()[:16]
        prefix = self._prefix(qid)
        images.save(self.fs, prefix)
        diagnosis = report.to_dict()
        if reason:
            diagnosis["reason"] = reason
        self.fs.write(f"{prefix}/{DIAGNOSIS_FILE}",
                      json.dumps(diagnosis, indent=1,
                                 sort_keys=True).encode("utf-8"))
        return qid

    def ids(self) -> List[str]:
        seen = []
        skip = len(self.root) + 1
        for path in self.fs.listdir(self.root):
            qid = path[skip:].split("/", 1)[0]
            if qid and qid not in seen:
                seen.append(qid)
        return seen

    def diagnosis(self, qid: str) -> Dict:
        path = f"{self._prefix(qid)}/{DIAGNOSIS_FILE}"
        if not self.fs.exists(path):
            raise VerifyError(f"no quarantined image {qid!r}")
        try:
            return json.loads(self.fs.read(path))
        except ValueError as exc:
            raise VerifyError(
                f"quarantine {qid}: diagnosis is not JSON: {exc}") from exc

    def images(self, qid: str) -> ImageSet:
        prefix = self._prefix(qid)
        files = {}
        for path in self.fs.listdir(prefix):
            name = path[len(prefix) + 1:]
            if name != DIAGNOSIS_FILE:
                files[name] = self.fs.read(path)
        if not files:
            raise VerifyError(f"no quarantined image {qid!r}")
        return ImageSet(files)

    def remove(self, qid: str) -> int:
        """Delete one quarantined image; returns files removed."""
        paths = self.fs.listdir(self._prefix(qid))
        if not paths:
            raise VerifyError(f"no quarantined image {qid!r}")
        for path in paths:
            self.fs.remove(path)
        return len(paths)
