"""Pre-restore state-image verification, repair, and quarantine."""

from .quarantine import DIAGNOSIS_FILE, HostDirFs, Quarantine
from .verifier import (ADVISORY, FATAL, PASS_REPAIR, PASS_SEMANTIC,
                       PASS_STRUCTURAL, REPAIRABLE, REQUIRED_FILES,
                       Finding, ImageVerifier, VerifyReport,
                       image_page_digests, page_digest, verify_images)

__all__ = [
    "DIAGNOSIS_FILE", "HostDirFs", "Quarantine",
    "ADVISORY", "FATAL", "REPAIRABLE", "REQUIRED_FILES",
    "PASS_STRUCTURAL", "PASS_SEMANTIC", "PASS_REPAIR",
    "Finding", "ImageVerifier", "VerifyReport",
    "image_page_digests", "page_digest", "verify_images",
]
