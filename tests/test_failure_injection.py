"""Failure injection: corrupted inputs must fail loudly and precisely,
never silently mis-restore a process."""

import pytest

from repro.binfmt.delf import DelfBinary
from repro.compiler import compile_source
from repro.core.migration import exe_path_for, install_program
from repro.core.policies.cross_isa import CrossIsaPolicy
from repro.core.rewriter import ImageMemory, ProcessRewriter
from repro.core.runtime import DapperRuntime
from repro.criu.images import CoreImage, ImageSet
from repro.criu.restore import restore_process
from repro.errors import (ImageFormatError, LoaderError, ReproError,
                          RestoreError, RewriteError, WireError)
from repro.isa import ARM_ISA, X86_ISA
from repro.vm import Machine
from repro import wire


@pytest.fixture
def checkpoint_setup(counter_program):
    machine = Machine(X86_ISA, name="src")
    install_program(machine, counter_program)
    process = machine.spawn_process(exe_path_for("counter", "x86_64"))
    machine.step_all(2500)
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    images = runtime.checkpoint()
    return machine, runtime, images


class TestCorruptImages:
    def test_truncated_core_image(self, checkpoint_setup):
        _machine, _runtime, images = checkpoint_setup
        blob = images.files["core-1.img"]
        full = images.core(1)
        images.files["core-1.img"] = blob[: len(blob) // 2]
        # Like protobuf, truncation either fails to decode (mid-field) or
        # yields a visibly incomplete message (field-boundary cut) — it
        # can never silently round-trip to the full register set.
        try:
            truncated = images.core(1)
        except (ImageFormatError, WireError):
            return
        assert len(truncated.regs) < len(full.regs)

    def test_wrong_magic(self, checkpoint_setup):
        _machine, _runtime, images = checkpoint_setup
        blob = bytearray(images.files["mm.img"])
        blob[0] ^= 0xFF
        images.files["mm.img"] = bytes(blob)
        with pytest.raises(ImageFormatError):
            images.mm()

    def test_missing_image_file(self, checkpoint_setup):
        machine, _runtime, images = checkpoint_setup
        del images.files["pagemap.img"]
        # Typed, not a raw KeyError: callers fold ImageFormatError into
        # their own error taxonomy instead of crashing on dict access.
        with pytest.raises(ImageFormatError, match="pagemap.img"):
            images.pagemap()

    def test_pc_not_at_eqpoint_rejected_by_rewriter(self, checkpoint_setup,
                                                    counter_program):
        _machine, _runtime, images = checkpoint_setup
        core = images.core(1)
        core.pc += 1
        images.set_core(core)
        policy = CrossIsaPolicy(counter_program.binary("x86_64"),
                                counter_program.binary("aarch64"),
                                "/bin/counter.aarch64")
        with pytest.raises(RewriteError):
            ProcessRewriter().rewrite(images, policy)

    def test_corrupted_fp_chain_rejected(self, checkpoint_setup,
                                         counter_program):
        _machine, _runtime, images = checkpoint_setup
        memory = ImageMemory(images)
        core = images.core(1)
        fp = core.regs[X86_ISA.dwarf_of("rbp")]
        # Smash the saved-fp word to a bogus non-zero value: the unwinder
        # must fail (no call-site stackmap at the bogus return address)
        # rather than wander off.
        memory.write_u64(fp + 0, 0xDEAD000)
        memory.write_u64(fp + 8, 0xDEAD008)
        memory.flush()
        policy = CrossIsaPolicy(counter_program.binary("x86_64"),
                                counter_program.binary("aarch64"),
                                "/bin/counter.aarch64")
        with pytest.raises(RewriteError):
            ProcessRewriter().rewrite(images, policy)

    def test_restore_unrewritten_on_other_arch_rejected(
            self, checkpoint_setup):
        _machine, _runtime, images = checkpoint_setup
        other = Machine(ARM_ISA, name="other")
        with pytest.raises(RestoreError):
            restore_process(other, images)

    def test_empty_image_set_rejected(self):
        from repro.vm.tmpfs import TmpFs
        with pytest.raises(ImageFormatError):
            ImageSet.load(TmpFs(), "/nothing")


class TestCorruptBinaries:
    def test_truncated_binary(self, counter_program):
        blob = counter_program.binary("x86_64").to_bytes()
        with pytest.raises((LoaderError, WireError, ReproError)):
            DelfBinary.from_bytes(blob[: len(blob) // 3])

    def test_bad_magic_binary(self, counter_program):
        blob = bytearray(counter_program.binary("x86_64").to_bytes())
        blob[:4] = b"EVIL"
        with pytest.raises(LoaderError):
            DelfBinary.from_bytes(bytes(blob))

    def test_spawn_missing_binary(self):
        machine = Machine(X86_ISA)
        with pytest.raises(LoaderError):
            machine.spawn_process("/bin/ghost")


class TestRuntimeFaults:
    def test_illegal_instruction_is_fatal(self):
        # A program whose code page is zeroed must fault, not loop.
        program = compile_source(
            "func main() -> int { return 0; }", "faulty")
        machine = Machine(X86_ISA)
        install_program(machine, program)
        process = machine.spawn_process(exe_path_for("faulty", "x86_64"))
        # Zero out the entry code.
        entry = program.binary("x86_64").entry
        process.aspace.write_code(entry, b"\x06" * 16)
        process.invalidate_code()
        from repro.vm.interp import CpuFault
        with pytest.raises(CpuFault):
            machine.run_process(process)

    def test_wild_pointer_write_faults(self):
        source = """
        func main() -> int {
            int *p;
            p = 1234567;
            *p = 1;
            return 0;
        }
        """
        program = compile_source(source, "wild")
        machine = Machine(X86_ISA)
        install_program(machine, program)
        process = machine.spawn_process(exe_path_for("wild", "x86_64"))
        from repro.vm.interp import CpuFault
        with pytest.raises(CpuFault):
            machine.run_process(process)

    def test_stack_overflow_faults(self):
        # Unbounded recursion must hit the stack guard gap and fault.
        source = """
        func dive(int n) -> int { return dive(n + 1); }
        func main() -> int { return dive(0); }
        """
        program = compile_source(source, "deep")
        machine = Machine(X86_ISA)
        install_program(machine, program)
        process = machine.spawn_process(exe_path_for("deep", "x86_64"))
        from repro.vm.interp import CpuFault
        with pytest.raises(CpuFault):
            machine.run_process(process, max_steps=10_000_000)


class TestWireRobustness:
    def test_garbage_bytes_never_crash_decoder(self):
        import random
        rng = random.Random(99)
        schema = wire.Schema("t", [wire.field(1, "a", "int"),
                                   wire.field(2, "b", "bytes")])
        for _ in range(200):
            blob = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(0, 40)))
            try:
                schema.decode(blob)
            except WireError:
                pass   # clean rejection is the contract
