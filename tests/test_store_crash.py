"""Crash consistency of the durable checkpoint store: WAL torn-tail
fuzzing, adopt digest-collision rejection, refcount-book audits, the
systematic crash-point sweep matrix, group-coordinator crash recovery,
durable fleet resume, and bit-identical EV_RECOVER journals."""

import pytest

from repro.chaos import CrashPointInjector, FaultPlan, sweep
from repro.core.migration import exe_path_for, install_program
from repro.core.runtime import DapperRuntime
from repro.criu.dump import dump_process
from repro.errors import GroupRollback, StoreCrash, StoreError
from repro.fleet import FleetSpec, FleetStorm
from repro.group import GroupCoordinator, GroupSpec
from repro.isa import X86_ISA
from repro.replay import journal as jn
from repro.replay.recorder import FlightRecorder
from repro.store import (CODECS, CheckpointStore, DirBackend, SimDisk,
                         chunk_digest, decode_wal, plan_transfer, ship)
from repro.store.wal import MAGIC, encode_record
from repro.vm import Machine

from test_group import make_group


@pytest.fixture(scope="module")
def images(counter_program):
    """One parked counter process, dumped."""
    machine = Machine(X86_ISA, name="src")
    install_program(machine, counter_program)
    process = machine.spawn_process(exe_path_for("counter", "x86_64"))
    machine.step_all(2500)
    DapperRuntime(machine, process).pause_at_equivalence_points()
    return dump_process(process)


@pytest.fixture(scope="module")
def image_pair(counter_program):
    """Two dumps of the same process at successive cuts (a put pair
    with real chunk overlap)."""
    machine = Machine(X86_ISA, name="src")
    install_program(machine, counter_program)
    process = machine.spawn_process(exe_path_for("counter", "x86_64"))
    machine.step_all(2500)
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    first = dump_process(process)
    runtime.resume()
    machine.step_all(3000)
    runtime.pause_at_equivalence_points()
    second = dump_process(process)
    return first, second


def durable_store(seed=0):
    disk = SimDisk(seed=seed)
    return disk, CheckpointStore(backend=DirBackend(disk))


# ---------------------------------------------------------------------------
# WAL torn-tail / garbage-suffix fuzzing


class TestWalFuzz:
    def _wal_blob(self, image_pair):
        """A real multi-transaction WAL byte stream."""
        first, second = image_pair
        disk, store = durable_store(seed=1)
        a = store.put(first)
        store.put(second, parent=a.checkpoint_id)
        return store.backend.wal_read()

    def test_truncation_at_every_byte_is_a_valid_prefix(self, image_pair):
        blob = self._wal_blob(image_pair)
        full, tail = decode_wal(blob)
        assert tail is None and full
        for cut in range(len(blob)):
            records, _why = decode_wal(blob[:cut])
            # Never an exception, and always a prefix of the real log.
            assert records == full[:len(records)]

    def test_garbage_suffix_is_cut_not_trusted(self, image_pair):
        blob = self._wal_blob(image_pair)
        full, _ = decode_wal(blob)
        for garbage in (b"\xff" * 40, b"\x03abc", bytes(range(256)),
                        encode_record({"op": "commit", "txn": 999})[:-1]):
            records, why = decode_wal(blob + garbage)
            assert records == full
            assert why is not None

    def test_bad_magic_yields_empty_log(self):
        records, why = decode_wal(b"NOTAWAL!" + encode_record(
            {"op": "snapshot", "codec": "zlib", "checkpoints": []}))
        assert records == [] and why == "bad WAL magic"
        assert decode_wal(b"") == ([], None)

    def test_flipped_bit_cuts_at_the_flip(self):
        blob = MAGIC + b"".join(
            encode_record({"op": "begin", "txn": t, "action": "put",
                           "cid": "c" * 32}) for t in (1, 2, 3))
        victim = len(MAGIC) + 10
        mutated = (blob[:victim] + bytes([blob[victim] ^ 0x40])
                   + blob[victim + 1:])
        records, why = decode_wal(mutated)
        assert records == [] and "checksum" in why

    def test_truncated_wal_on_disk_reopens_longest_prefix(self, image_pair):
        first, second = image_pair
        disk, store = durable_store(seed=2)
        a = store.put(first)
        len_after_first = len(store.backend.wal_read())
        b = store.put(second, parent=a.checkpoint_id)
        blob = store.backend.wal_read()
        # Tear mid-way through the second put's records.
        disk.write("wal", blob[:len_after_first + 7])
        disk.fsync("wal")
        recovered, report = CheckpointStore.recover(DirBackend(disk))
        assert recovered.checkpoint_ids() == [a.checkpoint_id]
        assert b.checkpoint_id not in recovered
        assert report.fsck == []
        # The second put's now-unreferenced chunks were swept.
        assert recovered.chunks.orphans() == []

    def test_garbage_suffix_on_disk_recovers_and_compacts(self, images):
        disk, store = durable_store(seed=3)
        cid = store.put(images).checkpoint_id
        disk.append("wal", b"\xfe\xfd torn tail from a dying writer")
        disk.fsync("wal")
        recovered, report = CheckpointStore.recover(DirBackend(disk))
        assert recovered.checkpoint_ids() == [cid]
        assert report.tail_cut
        # Recovery compacted the log, so a second recover is clean.
        again, again_report = CheckpointStore.recover(DirBackend(disk))
        assert again.checkpoint_ids() == [cid]
        assert again_report.tail_cut is None
        assert again_report.clean


# ---------------------------------------------------------------------------
# adopt: digest collisions and self-verification


class TestAdoptCollision:
    def test_adopt_rejects_forged_digest(self):
        store = CheckpointStore()
        data = b"payload" * 100
        with pytest.raises(StoreError):
            store.chunks.adopt("0" * 32, "raw", data, len(data))

    def test_adopt_rejects_wrong_logical_size(self):
        store = CheckpointStore()
        data = b"payload" * 100
        with pytest.raises(StoreError):
            store.chunks.adopt(chunk_digest(data), "raw", data,
                               len(data) + 1)

    def test_adopt_rejects_digest_collision_with_stored_chunk(self):
        store = CheckpointStore()
        data = b"the original bytes" * 50
        digest, _ = store.chunks.ensure(data)
        impostor = b"different bytes entirely" * 50

        class _Colliding:
            name = "raw"

            def compress(self, blob):
                return blob

            def decompress(self, blob):
                return impostor

        real_raw = CODECS["raw"]
        CODECS["raw"] = _Colliding()
        try:
            with pytest.raises(StoreError) as exc:
                store.chunks.adopt(digest, "raw",
                                   impostor, len(impostor))
        finally:
            CODECS["raw"] = real_raw
        # Either verification step may trip first; the store must
        # never silently keep the original under a colliding digest.
        assert store.chunks.get(digest) == data
        assert "adopt" in str(exc.value)

    def test_adopt_same_bytes_is_idempotent(self):
        store = CheckpointStore()
        data = b"stable" * 200
        digest, _ = store.chunks.ensure(data)
        payload = CODECS["zlib"].compress(data)
        assert store.chunks.adopt(digest, "zlib", payload,
                                  len(data)) is False
        assert store.chunks.get(digest) == data

    def test_adopt_rejects_unknown_codec(self):
        store = CheckpointStore()
        data = b"x" * 64
        with pytest.raises(StoreError):
            store.chunks.adopt(chunk_digest(data), "lz-imaginary",
                               data, len(data))


# ---------------------------------------------------------------------------
# verify(): refcount books vs live manifest references


class TestVerifyRefcountAudit:
    def test_clean_store_audits_clean(self, images):
        store = CheckpointStore()
        store.put(images)
        assert store.verify() == []

    def test_over_referenced_digest_reported(self, images):
        store = CheckpointStore()
        store.put(images)
        digest = store.chunks.digests()[0]
        store.chunks.incref(digest)
        problems = store.verify()
        assert any("over-referenced" in p and digest[:12] in p
                   for p in problems)

    def test_under_referenced_digest_reported(self, images):
        store = CheckpointStore()
        store.put(images)
        digest = store.chunks.digests()[0]
        store.chunks.decref(digest)
        problems = store.verify()
        assert any("under-referenced" in p and digest[:12] in p
                   for p in problems)

    def test_raw_pins_do_not_false_positive(self, images):
        store = CheckpointStore()
        store.put(images)
        # A page-server style raw put holds a pin with no manifest ref.
        store.chunks.put(b"served page bytes" * 64)
        assert store.verify() == []

    def test_group_manifest_references_counted(self, images):
        store = CheckpointStore()
        cid = store.put(images).checkpoint_id
        store.put_group([cid], label="audit")
        assert store.verify() == []


# ---------------------------------------------------------------------------
# the systematic crash-point sweep matrix


class TestCrashSweepMatrix:
    def _ops(self, first, second):
        def op_put():
            return (lambda s: None, lambda s, ctx: s.put(first), True)

        def op_put_group():
            def setup(s):
                return s.put(first).checkpoint_id
            return (setup,
                    lambda s, cid: s.put_group([cid], label="m"), True)

        def op_delete():
            def setup(s):
                return s.put(first).checkpoint_id
            return (setup, lambda s, cid: s.delete(cid), True)

        def op_gc():
            def setup(s):
                return s.put(first).checkpoint_id

            def op(s, cid):
                s.delete(cid)
                s.gc()
            return (setup, op, False)

        def op_adopt():
            def op(s, ctx):
                src = CheckpointStore()
                cid = src.put(second).checkpoint_id
                ship(src, s, plan_transfer(src, s, cid))
            return (lambda s: None, op, False)

        return {"put": op_put, "put_group": op_put_group,
                "delete": op_delete, "gc": op_gc, "adopt": op_adopt}

    @pytest.mark.parametrize("name", ["put", "put_group", "delete",
                                      "gc", "adopt"])
    def test_every_site_recovers(self, image_pair, name):
        first, second = image_pair
        setup, op, atomic = self._ops(first, second)[name]()
        result = sweep(setup, op, label=name, seed=11, atomic=atomic)
        assert result.sites, f"{name} exposed no durability sites"
        assert result.ok, "\n".join(
            f"#{t.index} {t.site}: {'; '.join(t.problems)}"
            for t in result.failures())

    def test_put_sites_cover_every_durability_kind(self, images):
        result = sweep(lambda s: None, lambda s, ctx: s.put(images),
                       label="put", seed=0, atomic=True)
        kinds = {site.split(":")[0] for site in result.sites}
        assert {"chunk.write", "chunk.fsync", "chunk.rename",
                "wal.append", "wal.fsync"} <= kinds

    def test_unfired_site_is_reported(self, images):
        # Arm a site index past the end: the op completes, the sweep
        # itself must notice the crash never fired.
        disk = SimDisk(seed=0)
        backend = DirBackend(disk)
        store = CheckpointStore(backend=backend)
        backend.injector = CrashPointInjector(crash_at=10_000)
        store.put(images)       # completes: site 10000 never reached
        assert len(backend.injector.sites) < 10_000


# ---------------------------------------------------------------------------
# group coordinator: durable commit-or-resume


class TestGroupCrashRecovery:
    def _durable_group(self, seed):
        disk = SimDisk(seed=seed)
        backend = DirBackend(disk)
        store = CheckpointStore(backend=backend)
        group, placements = make_group(
            GroupSpec(workers=2, conns=8, drain=4, seed=1))
        return disk, backend, store, GroupCoordinator(group, placements,
                                                      store=store)

    def test_committed_group_survives_node_death(self):
        disk, _backend, store, coordinator = self._durable_group(seed=4)
        result = coordinator.migrate()
        expected = {cid: dict(store.materialize(cid).files)
                    for cid in result.member_ids}
        # Sudden node death after commit: tear unsynced writes, reopen.
        disk.crash()
        recovered, report = CheckpointStore.recover(DirBackend(disk))
        assert report.clean
        assert recovered.is_group(result.gid)
        assert recovered.members(result.gid) == result.member_ids
        for cid, files in expected.items():
            assert dict(recovered.materialize(cid).files) == files

    def test_crash_before_commit_record_rolls_group_back(self):
        # Counting pass: a full committed run enumerates the sites.
        _disk, backend, _store, coordinator = self._durable_group(seed=4)
        backend.injector = CrashPointInjector()
        coordinator.migrate()
        sites = backend.injector.sites
        assert sites[-1] == "wal.fsync"  # the group commit record

        # Armed pass: die exactly as the commit record is fsynced —
        # the record never becomes durable, so the whole group aborts.
        disk, backend, store, coordinator = self._durable_group(seed=4)
        backend.injector = CrashPointInjector(crash_at=len(sites) - 1)
        with pytest.raises(StoreCrash):
            coordinator.migrate()
        disk.crash()
        recovered, report = CheckpointStore.recover(DirBackend(disk))
        assert report.clean or report.fsck == []
        assert recovered.checkpoint_ids() == []
        assert report.aborted_group_members  # prepared members undone
        assert any(action == "group" for _t, action, _c
                   in report.rolled_back)
        assert recovered.chunks.orphans() == []

    def test_handled_abort_writes_abort_record(self):
        # A *handled* coordinator fault (not a crash) aborts in-process
        # and seals its WAL intent, so recovery has nothing to undo.
        disk, _backend, store, coordinator = self._durable_group(seed=5)
        coordinator.fault_phase = "commit"
        with pytest.raises(GroupRollback):
            coordinator.migrate()
        disk.crash()
        recovered, report = CheckpointStore.recover(DirBackend(disk))
        assert report.clean
        assert recovered.checkpoint_ids() == []
        assert report.rolled_back == []
        assert report.aborted_group_members == []


# ---------------------------------------------------------------------------
# EV_RECOVER journaling: crash/recover runs replay bit-identically


class TestRecoverJournal:
    def _journaled_sweep(self, images):
        recorders = []

        def factory():
            recorder = FlightRecorder(digest_every=0,
                                      record_syscalls=False)
            recorders.append(recorder)
            return recorder

        result = sweep(lambda s: None, lambda s, ctx: s.put(images),
                       label="put", seed=7, recorder_factory=factory,
                       atomic=True)
        assert result.ok
        return [list(r.journal.events) for r in recorders]

    def test_recover_events_are_bit_identical_across_runs(self, images):
        first = self._journaled_sweep(images)
        second = self._journaled_sweep(images)
        assert first == second
        flat = [e for events in first for e in events]
        assert any(e["kind"] == jn.EV_RECOVER for e in flat)
        assert any(e["kind"] == jn.EV_FAULT
                   and e.get("label", "").startswith("crashpoint:")
                   for e in flat)

    def test_recover_event_label_names_the_verdict(self, images):
        disk, store = durable_store(seed=8)
        store.put(images)
        disk.crash()
        recorder = FlightRecorder(digest_every=0, record_syscalls=False)
        _store, report = CheckpointStore.recover(DirBackend(disk),
                                                 recorder=recorder)
        events = [e for e in recorder.journal.events
                  if e["kind"] == jn.EV_RECOVER]
        assert len(events) == 1
        verdict = "clean" if report.clean else "torn"
        assert events[0]["label"] == f"recover:{verdict}"
        assert events[0]["a"] == len(report.checkpoints)


# ---------------------------------------------------------------------------
# fleet: durable nodes resume prepared migrations across node death


class TestFleetDurableResume:
    #: heavy on node loss (pskill), so sources die while checkpoints
    #: are durably stored and the resume path genuinely fires
    CHAOS = "seed=2,pskill=2000"

    def _storm(self, durable):
        spec = FleetSpec(seed=2, nodes=32, shards=4, duration=60.0,
                         max_in_flight=12, update_fraction=0.9,
                         durable=durable)
        return FleetStorm(spec, FaultPlan.from_spec(self.CHAOS)).run()

    def test_durable_field_round_trips(self):
        spec = FleetSpec(durable=1)
        assert FleetSpec.from_spec(spec.to_spec()).durable == 1
        # Old spec strings (no durable field) still parse, defaulting 0.
        legacy = ",".join(p for p in spec.to_spec().split(",")
                          if not p.startswith("durable="))
        assert FleetSpec.from_spec(legacy).durable == 0

    def test_durable_nodes_resume_prepared_migrations(self):
        result = self._storm(durable=1)
        assert result.invariant_ok
        assert result.node_losses > 0
        assert result.resumed_durable > 0

    def test_volatile_nodes_never_resume(self):
        result = self._storm(durable=0)
        assert result.invariant_ok
        assert result.resumed_durable == 0

    def test_durable_storm_is_deterministic(self):
        a, b = self._storm(durable=1), self._storm(durable=1)
        da, db = a.to_dict(), b.to_dict()
        for d in (da, db):    # wall-clock metrics may legally differ
            d.pop("wall_s")
            d.pop("events_per_sec_wall")
        assert da == db
        assert a.resumed_durable == b.resumed_durable > 0
