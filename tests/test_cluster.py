"""Tests for the cluster/energy simulation substrate."""

import pytest

from repro.apps import get_app
from repro.cluster import (BatchExperiment, EnergyMeter, EventQueue,
                           Network, SimNode, measure_job_template)
from repro.cluster.jobs import Job, JobTemplate
from repro.core.costs import (ethernet_link, infiniband_link, rpi_profile,
                              xeon_profile)
from repro.errors import ClusterError
from repro.isa import X86_ISA, ARM_ISA
from repro.vm import Machine


class TestEventQueue:
    def test_ordering(self):
        queue = EventQueue()
        seen = []
        queue.schedule(2.0, lambda: seen.append("b"))
        queue.schedule(1.0, lambda: seen.append("a"))
        queue.schedule(3.0, lambda: seen.append("c"))
        queue.run_until(10.0)
        assert seen == ["a", "b", "c"]
        assert queue.now == 10.0

    def test_fifo_tie_break(self):
        queue = EventQueue()
        seen = []
        queue.schedule(1.0, lambda: seen.append(1))
        queue.schedule(1.0, lambda: seen.append(2))
        queue.run_until(2.0)
        assert seen == [1, 2]

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.step()
        with pytest.raises(ClusterError):
            queue.schedule(0.5, lambda: None)

    def test_horizon_respected(self):
        queue = EventQueue()
        seen = []
        queue.schedule(5.0, lambda: seen.append("late"))
        queue.run_until(2.0)
        assert not seen
        queue.run_until(6.0)
        assert seen == ["late"]

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        seen = []

        def first():
            seen.append("first")
            queue.schedule_in(1.0, lambda: seen.append("second"))

        queue.schedule(1.0, first)
        queue.run_until(5.0)
        assert seen == ["first", "second"]

    def test_max_events_stop_does_not_strand_the_clock(self):
        """When ``max_events`` stops the loop early, ``now`` must stay
        at the last fired event — advancing it to the horizon would
        make the still-queued events un-runnable (their neighbors
        would raise "cannot schedule before now")."""
        queue = EventQueue()
        seen = []
        for i in range(4):
            queue.schedule(1.0 + i, lambda i=i: seen.append(i))
        assert queue.run_until(10.0, max_events=2) == 2
        assert seen == [0, 1]
        assert queue.now == 2.0                  # not 10.0
        queue.schedule(2.5, lambda: seen.append("mid"))  # must not raise
        assert queue.run_until(10.0) == 3
        assert seen == [0, 1, "mid", 2, 3]
        assert queue.now == 10.0

    def test_shard_id_sits_in_the_merge_key(self):
        """Two shard queues firing at the same timestamp merge in
        (when, shard, seq) order — stable regardless of iteration
        order, which is what the sharded fleet core's canonical trace
        merge relies on."""
        low, high = EventQueue(shard=0), EventQueue(shard=3)
        high.schedule(1.0, lambda: None)
        low.schedule(1.0, lambda: None)
        assert low.peek_key() < high.peek_key()
        keys = sorted([high.peek_key(), low.peek_key()])
        assert [shard for _w, shard, _s in keys] == [0, 3]


class TestNodeAndEnergy:
    def test_power_calibration_xeon(self):
        # Paper: the Xeon draws 108 W running seven job threads.
        node = SimNode(xeon_profile(), job_slots=7)
        for _ in range(7):
            node.place(object())
        assert node.power_watts() == pytest.approx(108.0)

    def test_power_calibration_rpi(self):
        # Paper: a Pi running three job threads draws 5.1 W.
        node = SimNode(rpi_profile(), job_slots=3)
        for _ in range(3):
            node.place(object())
        assert node.power_watts() == pytest.approx(5.1)

    def test_slots(self):
        node = SimNode(rpi_profile(), job_slots=3)
        slots = [node.place(object()) for _ in range(3)]
        assert node.free_slots() == 0
        with pytest.raises(ClusterError):
            node.place(object())
        node.release(slots[0])
        assert node.free_slots() == 1
        with pytest.raises(ClusterError):
            node.release(slots[0])

    def test_energy_integration(self):
        node = SimNode(xeon_profile(), job_slots=7)
        meter = EnergyMeter([node])
        meter.advance_to(10.0)                       # idle for 10 s
        idle_j = meter.total_joules()
        assert idle_j == pytest.approx(45.0 * 10)
        for _ in range(7):
            node.place(object())
        meter.advance_to(20.0)                       # busy for 10 s
        assert meter.total_joules() == pytest.approx(idle_j + 108.0 * 10)

    def test_energy_backwards_rejected(self):
        meter = EnergyMeter([SimNode(xeon_profile())])
        meter.advance_to(5.0)
        with pytest.raises(ValueError):
            meter.advance_to(4.0)


class TestNetwork:
    def test_scp_copies_and_costs(self):
        network = Network(default_link=infiniband_link())
        a = Machine(X86_ISA, name="a")
        b = Machine(ARM_ISA, name="b")
        a.tmpfs.write("/img/x", b"\x00" * 1000)
        nbytes, seconds = network.scp(a, b, "/img")
        assert nbytes == 1000
        assert b.tmpfs.read("/img/x") == b"\x00" * 1000
        assert seconds > 0

    def test_scp_self_rejected(self):
        network = Network()
        a = Machine(X86_ISA, name="a")
        with pytest.raises(ClusterError):
            network.scp(a, a, "/img")

    def test_link_selection(self):
        network = Network(default_link=ethernet_link())
        network.connect("a", "b", infiniband_link())
        assert network.link_between("a", "b").name == "infiniband"
        assert network.link_between("b", "a").name == "infiniband"
        assert network.link_between("a", "c").name == "ethernet-1g"

    def test_infiniband_faster_than_ethernet(self):
        size = 5_000_000
        assert (infiniband_link().transfer_seconds(size)
                < ethernet_link().transfer_seconds(size))


@pytest.fixture(scope="module")
def cg_template():
    return measure_job_template(get_app("cg"), "B")


class TestJobTemplates:
    def test_measured_quantities(self, cg_template):
        assert cg_template.instructions > 1e10
        assert cg_template.migration_seconds > 0
        assert set(cg_template.cycles_per_instr) == {"x86_64", "aarch64"}

    def test_pi_slower_than_xeon(self, cg_template):
        ratio = cg_template.speed_ratio(xeon_profile(), rpi_profile())
        assert 1.5 < ratio < 6.0

    def test_job_remaining_accounting(self, cg_template):
        job = Job(cg_template)
        full = job.remaining_seconds_on(xeon_profile())
        job.remaining_fraction = 0.5
        assert job.remaining_seconds_on(xeon_profile()) == \
            pytest.approx(full / 2)


class TestBatchExperiment:
    def test_paper_shapes(self, cg_template):
        experiment = BatchExperiment(cg_template, duration_s=1800)
        results = experiment.sweep([0, 1, 3])
        base, one, three = results[0], results[1], results[3]
        # More Pis → strictly more completed jobs and better efficiency.
        assert base.completed < one.completed < three.completed
        assert base.jobs_per_kj < one.jobs_per_kj < three.jobs_per_kj
        # Paper's bands: +37–52 % throughput, +15–39 % efficiency at 3 Pis
        # (allow slack around the bands — this is a simulation).
        assert 20.0 < three.throughput_gain_over(base) < 60.0
        assert 8.0 < three.efficiency_gain_over(base) < 45.0

    def test_evictions_happen(self, cg_template):
        experiment = BatchExperiment(cg_template, duration_s=1800)
        result = experiment.run(pis=3)
        assert result.evictions > 0

    def test_no_pis_means_no_evictions(self, cg_template):
        experiment = BatchExperiment(cg_template, duration_s=1800)
        result = experiment.run(pis=0)
        assert result.evictions == 0

    def test_throughput_metric(self, cg_template):
        experiment = BatchExperiment(cg_template, duration_s=900)
        result = experiment.run(pis=0)
        assert result.throughput_per_hour == pytest.approx(
            result.completed * 4.0)
