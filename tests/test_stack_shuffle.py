"""Tests for the stack-shuffling policy, SBI code patching and entropy."""

import pytest

from repro.core.entropy import (attack_success_probability,
                                binary_entropy_bits,
                                binary_entropy_by_function,
                                double_factorial, frame_entropy_bits,
                                guess_probability, possible_frames,
                                shuffleable_slots)
from repro.core.migration import exe_path_for, install_program
from repro.core.policies.stack_shuffle import (StackShufflePolicy,
                                               shuffle_binary)
from repro.core.rewriter import ProcessRewriter
from repro.core.runtime import DapperRuntime
from repro.criu.restore import restore_process
from repro.isa import ARM_ISA, X86_ISA, get_isa
from repro.vm import Machine


class TestEntropyMath:
    def test_double_factorial(self):
        assert double_factorial(-1) == 1
        assert double_factorial(1) == 1
        assert double_factorial(3) == 3
        assert double_factorial(5) == 15
        assert double_factorial(7) == 105

    def test_paper_example_four_bits(self):
        # Paper: 4 bits → 1 + 7!! = 106 frames, 1/8 guess probability,
        # 0.125³ ≈ 0.19 % for a 3-allocation DOP payload.
        assert possible_frames(4) == 106
        assert guess_probability(4) == 0.125
        assert abs(attack_success_probability(4, 3) - 0.001953125) < 1e-12

    def test_zero_bits(self):
        assert possible_frames(0) == 1
        assert guess_probability(0) == 1.0


class TestShuffledBinary:
    def _shuffle(self, program, arch, seed=99):
        return shuffle_binary(program.binary(arch), seed)

    def test_layout_permuted_but_valid(self, counter_program):
        shuffled, stats = self._shuffle(counter_program, "x86_64")
        original = counter_program.binary("x86_64")
        assert stats.pairs > 0
        changed = 0
        for record in shuffled.frames.frames:
            base = original.frames.get(record.func)
            assert record.frame_size == base.frame_size
            base_offsets = {s.slot_id: s.offset for s in base.slots}
            new_offsets = {s.slot_id: s.offset for s in record.slots}
            assert sorted(base_offsets.values()) == \
                sorted(new_offsets.values())
            if base_offsets != new_offsets:
                changed += 1
        assert changed > 0

    def test_code_addresses_unchanged(self, counter_program):
        shuffled, _stats = self._shuffle(counter_program, "x86_64")
        original = counter_program.binary("x86_64")
        assert len(shuffled.text) == len(original.text)
        for sym in original.symtab:
            assert shuffled.symtab.lookup(sym.name).addr == sym.addr

    def test_stackmaps_follow_slots(self, counter_program):
        shuffled, _stats = self._shuffle(counter_program, "x86_64")
        for record in shuffled.frames.frames:
            for point in shuffled.stackmaps.for_func(record.func):
                for live in point.live:
                    if live.on_stack():
                        slot = record.slot_by_id(live.value_id)
                        if slot is not None:
                            assert live.stack_offset == slot.offset

    def test_shuffled_binary_runs_natively(self, counter_program,
                                           counter_reference_output):
        for arch in ("x86_64", "aarch64"):
            shuffled, _stats = self._shuffle(counter_program, arch)
            machine = Machine(get_isa(arch))
            machine.tmpfs.write("/bin/shuf", shuffled.to_bytes())
            process = machine.spawn_process("/bin/shuf")
            machine.run_process(process)
            assert process.stdout() == counter_reference_output

    def test_deterministic_for_seed(self, counter_program):
        a, _ = self._shuffle(counter_program, "x86_64", seed=5)
        b, _ = self._shuffle(counter_program, "x86_64", seed=5)
        assert a.text == b.text
        c, _ = self._shuffle(counter_program, "x86_64", seed=6)
        assert c.text != a.text

    def test_arm_pair_slots_excluded(self, threaded_program):
        arm = threaded_program.binary("aarch64")
        record = arm.frames.get("bump")      # two params → stp pair
        eligible = shuffleable_slots(record)
        names = {s.name for s in eligible}
        assert "q" not in names and "k" not in names

    def test_arm_entropy_lower_than_x86(self):
        # The paper's Fig. 10 asymmetry, on a function with many params.
        from repro.compiler import compile_source
        src = """
        func busy(int a, int b, int c, int d) -> int {
            int e; int f; int g; int h;
            e = a + b; f = c + d; g = e * f; h = g - a;
            return h;
        }
        func main() -> int { print(busy(1, 2, 3, 4)); return 0; }
        """
        program = compile_source(src, "busy")
        x86_bits = frame_entropy_bits(
            program.binary("x86_64").frames.get("busy"))
        arm_bits = frame_entropy_bits(
            program.binary("aarch64").frames.get("busy"))
        assert arm_bits < x86_bits

    def test_entropy_accounting(self, counter_program):
        bits = binary_entropy_bits(counter_program.binary("x86_64"))
        per_func = binary_entropy_by_function(
            counter_program.binary("x86_64"))
        assert bits == pytest.approx(
            sum(per_func.values()) / len(per_func))
        assert "_start" not in per_func   # prelude excluded

    def test_patch_stats_recorded(self, counter_program):
        _shuffled, stats = self._shuffle(counter_program, "x86_64")
        assert stats.instructions_patched > 0
        assert stats.code_bytes > 0
        assert stats.stackmap_records_updated > 0


class TestShufflePolicyEndToEnd:
    @pytest.mark.parametrize("arch", ["x86_64", "aarch64"])
    @pytest.mark.parametrize("seed", [3, 17])
    def test_shuffled_process_completes_correctly(
            self, counter_program, counter_reference_output, arch, seed):
        machine = Machine(get_isa(arch), name="host")
        install_program(machine, counter_program)
        process = machine.spawn_process(exe_path_for("counter", arch))
        machine.step_all(2500)
        assert not process.exited
        runtime = DapperRuntime(machine, process)
        runtime.pause_at_equivalence_points()
        before = process.stdout()   # capture only once fully parked
        images = runtime.checkpoint()
        runtime.kill_source()
        policy = StackShufflePolicy(
            counter_program.binary(arch), seed=seed,
            dst_exe_path=f"/bin/counter.{arch}.shuf")
        reports = ProcessRewriter().rewrite(images, policy)
        machine.tmpfs.write(policy.dst_exe_path,
                            policy.shuffled_binary.to_bytes())
        restored = restore_process(machine, images)
        machine.run_process(restored)
        assert before + restored.stdout() == counter_reference_output
        assert reports[0].stats["pairs"] > 0

    def test_threaded_shuffle(self, threaded_program,
                              threaded_reference_output):
        machine = Machine(X86_ISA, name="host")
        install_program(machine, threaded_program)
        process = machine.spawn_process(exe_path_for("threaded", "x86_64"))
        machine.step_all(5000)
        assert not process.exited
        runtime = DapperRuntime(machine, process)
        runtime.pause_at_equivalence_points()
        before = process.stdout()   # capture only once fully parked
        images = runtime.checkpoint()
        runtime.kill_source()
        policy = StackShufflePolicy(
            threaded_program.binary("x86_64"), seed=11,
            dst_exe_path="/bin/threaded.x86_64.shuf")
        report = ProcessRewriter().rewrite(images, policy)[0]
        machine.tmpfs.write(policy.dst_exe_path,
                            policy.shuffled_binary.to_bytes())
        restored = restore_process(machine, images)
        machine.run_process(restored)
        assert before + restored.stdout() == threaded_reference_output
        assert report.stats["pointers_remapped"] >= 1

    def test_periodic_rerandomization(self, counter_program,
                                      counter_reference_output):
        """Shuffle the same process repeatedly with different seeds —
        the paper's periodic re-randomization scenario."""
        arch = "x86_64"
        machine = Machine(get_isa(arch), name="host")
        install_program(machine, counter_program)
        process = machine.spawn_process(exe_path_for("counter", arch))
        output = ""
        active_binary = counter_program.binary(arch)
        for round_no in range(3):
            machine.step_all(900)
            if process.exited:
                break
            output += process.stdout()[len(output):] if False else ""
            runtime = DapperRuntime(machine, process)
            runtime.pause_at_equivalence_points()
            images = runtime.checkpoint()
            prefix = process.stdout()
            runtime.kill_source()
            policy = StackShufflePolicy(
                active_binary, seed=100 + round_no,
                dst_exe_path=f"/bin/counter.{arch}.shuf{round_no}")
            ProcessRewriter().rewrite(images, policy)
            machine.tmpfs.write(policy.dst_exe_path,
                                policy.shuffled_binary.to_bytes())
            new_process = restore_process(machine, images)
            # Carry forward accumulated output.
            new_process.output = [prefix]
            process = new_process
            active_binary = policy.shuffled_binary
        machine.run_process(process)
        assert process.stdout() == counter_reference_output
