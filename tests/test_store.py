"""Content-addressed checkpoint store: chunks, checkpoints, transfer."""

from __future__ import annotations

import json

import pytest

from repro.core.migration import (MigrationPipeline, exe_path_for,
                                  install_program)
from repro.core.runtime import DapperRuntime
from repro.criu.dump import dump_process
from repro.criu.lazy import PageServer
from repro.criu.restore import restore_process
from repro.errors import CheckpointError, StoreError
from repro.isa import ARM_ISA, X86_ISA
from repro.mem.paging import PAGE_SIZE
from repro.store import (CheckpointStore, ChunkStore,
                         IncrementalCheckpointer, StorePageServer,
                         chunk_digest, plan_transfer, ship)
from repro.vm import Machine


@pytest.fixture
def parked(counter_program):
    """A counter process parked at an equivalence point."""
    machine = Machine(X86_ISA, name="src")
    install_program(machine, counter_program)
    process = machine.spawn_process(exe_path_for("counter", "x86_64"))
    machine.step_all(2500)
    assert not process.exited
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    return machine, process, runtime


def advance(machine, runtime, steps=3000):
    runtime.resume()
    machine.step_all(steps)
    runtime.pause_at_equivalence_points()


class TestChunkStore:
    def test_put_get_roundtrip(self):
        store = ChunkStore()
        data = b"hello content addressing" * 50
        digest = store.put(data)
        assert digest == chunk_digest(data)
        assert store.get(digest) == data
        assert store.has(digest)

    def test_dedup_and_counters(self):
        store = ChunkStore()
        a = store.put(b"x" * PAGE_SIZE)
        b = store.put(b"x" * PAGE_SIZE)
        assert a == b
        assert len(store) == 1
        assert (store.puts, store.dup_puts) == (2, 1)
        assert store.chunk(a).refs == 2

    def test_incompressible_falls_back_to_raw(self):
        store = ChunkStore()
        # three bytes: the zlib header alone is bigger
        digest = store.put(b"\x01\x02\x03")
        assert store.chunk(digest).codec == "raw"
        assert store.get(digest) == b"\x01\x02\x03"

    def test_compressible_uses_zlib(self):
        store = ChunkStore()
        digest = store.put(bytes(PAGE_SIZE))
        assert store.chunk(digest).codec == "zlib"
        assert store.physical_bytes() < PAGE_SIZE

    def test_missing_chunk_raises(self):
        store = ChunkStore()
        with pytest.raises(StoreError):
            store.get("0" * 32)

    def test_unknown_codec_rejected(self):
        with pytest.raises(StoreError):
            ChunkStore(codec="snappy")

    def test_decref_underflow_raises(self):
        store = ChunkStore()
        digest = store.put(b"data")
        store.decref(digest)
        with pytest.raises(StoreError):
            store.decref(digest)

    def test_gc_reclaims_unreferenced(self):
        store = ChunkStore()
        keep = store.put(b"keep" * 100)
        drop = store.put(b"drop" * 100)
        store.decref(drop)
        count, freed = store.gc()
        assert count == 1 and freed > 0
        assert store.has(keep) and not store.has(drop)

    def test_verify_detects_corruption(self):
        store = ChunkStore()
        digest = store.put(b"pristine" * 64)
        assert store.verify() == []
        store.chunk(digest).payload = b"\x00garbage"
        assert any("corrupt" in p or "decompress" in p
                   for p in store.verify())

    def test_adopt_rejects_mismatched_payload(self):
        src, dst = ChunkStore(), ChunkStore()
        digest = src.put(b"shipit" * 100)
        chunk = src.chunk(digest)
        with pytest.raises(StoreError):
            dst.adopt(digest, chunk.codec, b"tampered payload",
                      chunk.logical_size)
        dst.adopt(digest, chunk.codec, chunk.payload, chunk.logical_size)
        assert dst.get(digest) == b"shipit" * 100


class TestCheckpointStore:
    def test_full_checkpoint_materializes_identically(self, parked):
        _machine, _process, runtime = parked
        images = runtime.checkpoint()
        store = CheckpointStore()
        result = store.put(images)
        assert not result.delta and result.created
        assert store.materialize(result.checkpoint_id).files == \
            images.files

    def test_identical_put_twice_one_checkpoint(self, parked):
        _machine, _process, runtime = parked
        images = runtime.checkpoint()
        store = CheckpointStore()
        first = store.put(images)
        second = store.put(images)
        assert first.checkpoint_id == second.checkpoint_id
        assert second.created is False and second.new_chunks == 0
        assert len(store.checkpoint_ids()) == 1
        assert store.verify() == []

    def test_incremental_delta_is_small(self, parked):
        machine, process, runtime = parked
        store = CheckpointStore()
        ckpt = IncrementalCheckpointer(store, process, runtime=runtime)
        full = ckpt.checkpoint()
        advance(machine, runtime)
        delta = ckpt.checkpoint()
        assert delta.delta
        assert delta.pages_carried < delta.pages_total
        assert delta.new_physical_bytes < full.new_physical_bytes

    def test_delta_materializes_as_canonical_full_dump(self, parked):
        machine, process, runtime = parked
        store = CheckpointStore()
        ckpt = IncrementalCheckpointer(store, process, runtime=runtime)
        ckpt.checkpoint()
        advance(machine, runtime)
        delta = ckpt.checkpoint()
        materialized = store.materialize(delta.checkpoint_id)
        assert not materialized.is_delta()
        runtime.clear_flag()
        fresh = dump_process(process)
        assert materialized.files == fresh.files

    def test_restore_from_materialized_delta(self, parked, counter_program,
                                             counter_reference_output):
        machine, process, runtime = parked
        store = CheckpointStore()
        ckpt = IncrementalCheckpointer(store, process, runtime=runtime)
        ckpt.checkpoint()
        advance(machine, runtime)
        result = ckpt.checkpoint()
        before = process.stdout()
        materialized = store.materialize(result.checkpoint_id)
        dst = Machine(X86_ISA, name="dst")
        install_program(dst, counter_program)
        restored = restore_process(dst, materialized)
        dst.run_process(restored)
        assert before + restored.stdout() == counter_reference_output
        assert restored.exit_code == 0

    def test_delta_dump_requires_tracking_inputs(self, parked):
        _machine, process, _runtime = parked
        with pytest.raises(CheckpointError):
            dump_process(process, parent="a" * 32)

    def test_delta_put_without_parent_rejected(self, parked):
        machine, process, runtime = parked
        store = CheckpointStore()
        ckpt = IncrementalCheckpointer(store, process, runtime=runtime)
        ckpt.checkpoint()
        advance(machine, runtime)
        delta = ckpt.checkpoint()
        delta_images = ckpt.last_images
        assert delta_images.is_delta()
        other = CheckpointStore()
        with pytest.raises(StoreError):
            other.put(delta_images)
        with pytest.raises(StoreError):
            other.put(delta_images, parent="f" * 32)

    def test_delete_refuses_while_children_exist(self, parked):
        machine, process, runtime = parked
        store = CheckpointStore()
        ckpt = IncrementalCheckpointer(store, process, runtime=runtime)
        root = ckpt.checkpoint().checkpoint_id
        advance(machine, runtime)
        leaf = ckpt.checkpoint().checkpoint_id
        with pytest.raises(StoreError):
            store.delete(root)
        store.delete(leaf)
        store.delete(root)
        count, _freed = store.gc()
        assert count > 0
        assert len(store.chunks) == 0

    def test_verify_flags_underreferenced_chunk(self, parked):
        _machine, _process, runtime = parked
        store = CheckpointStore()
        result = store.put(runtime.checkpoint())
        digest = store.manifest(result.checkpoint_id)["meta"]["mm.img"]
        store.chunks.decref(digest)
        assert any("under-referenced" in p for p in store.verify())

    def test_dedup_across_isas(self, counter_program):
        """The aligning linker gives both ISAs identical data pages, so
        checkpoints of the two architectures share chunks."""
        store = CheckpointStore()
        sizes = {}
        for isa in (X86_ISA, ARM_ISA):
            machine = Machine(isa, name=f"m-{isa.name}")
            install_program(machine, counter_program)
            process = machine.spawn_process(
                exe_path_for("counter", isa.name))
            machine.step_all(2500)
            runtime = DapperRuntime(machine, process)
            runtime.pause_at_equivalence_points()
            result = store.put(runtime.checkpoint())
            sizes[isa.name] = result
        assert sizes["aarch64"].dup_chunks > 0
        assert store.verify() == []

    def test_save_load_dir_roundtrip(self, parked, tmp_path):
        machine, process, runtime = parked
        store = CheckpointStore()
        ckpt = IncrementalCheckpointer(store, process, runtime=runtime)
        ckpt.checkpoint()
        advance(machine, runtime)
        leaf = ckpt.checkpoint().checkpoint_id
        store.save_dir(str(tmp_path))
        loaded = CheckpointStore.load_dir(str(tmp_path))
        assert loaded.checkpoint_ids() == store.checkpoint_ids()
        assert loaded.verify() == []
        assert loaded.materialize(leaf).files == \
            store.materialize(leaf).files

    def test_stats_report_dedup(self, parked):
        _machine, _process, runtime = parked
        store = CheckpointStore()
        store.put(runtime.checkpoint())
        stats = store.stats()
        assert stats["checkpoints"] == 1
        assert stats["physical_bytes"] < stats["logical_bytes"]
        assert stats["dedup_ratio"] > 1.0


class TestGroupManifestChains:
    """A group manifest pins its members like a parent link: deleting
    a mid-chain checkpoint a live group references must be refused —
    never silently GC'd out from under the manifest."""

    def _chain(self, parked, store, epochs=2):
        """Build full A <- delta B (<- delta C ...); returns the ids."""
        machine, process, runtime = parked
        ckpt = IncrementalCheckpointer(store, process, runtime=runtime)
        ids = [ckpt.checkpoint().checkpoint_id]
        for _ in range(epochs - 1):
            advance(machine, runtime)
            ids.append(ckpt.checkpoint().checkpoint_id)
        return ids

    def test_mid_chain_member_delete_refused_while_group_lives(
            self, parked):
        store = CheckpointStore()
        root, mid, leaf = self._chain(parked, store, epochs=3)
        gid = store.put_group([mid], label="pins-the-middle")
        assert store.groups_referencing(mid) == [gid]
        store.delete(leaf)              # the chain child goes first...
        with pytest.raises(StoreError):
            store.delete(mid)           # ...but the group still pins mid
        # Nothing was silently reclaimed: the member still materializes
        # and fsck stays clean.
        assert not store.materialize(mid).is_delta()
        assert store.verify() == []
        # Delete in dependency order and the chain drains completely.
        store.delete(gid)
        store.delete(mid)
        store.delete(root)
        store.gc()
        assert len(store.chunks) == 0

    def test_parent_of_group_member_refused_for_children_first(
            self, parked):
        store = CheckpointStore()
        root, leaf = self._chain(parked, store)
        store.put_group([leaf])
        with pytest.raises(StoreError):
            store.delete(root)          # child ordering, group or not

    def test_group_members_must_be_registered_checkpoints(self, parked):
        _machine, _process, runtime = parked
        store = CheckpointStore()
        put = store.put(runtime.checkpoint())
        with pytest.raises(StoreError):
            store.put_group([])
        with pytest.raises(StoreError):
            store.put_group([put.checkpoint_id, "f" * 32])
        gid = store.put_group([put.checkpoint_id])
        with pytest.raises(StoreError):
            store.put_group([gid])      # groups of groups are refused

    def test_put_group_is_idempotent_and_content_derived(self, parked):
        _machine, _process, runtime = parked
        store = CheckpointStore()
        put = store.put(runtime.checkpoint())
        gid = store.put_group([put.checkpoint_id], label="twice")
        again = store.put_group([put.checkpoint_id], label="twice")
        assert gid == again
        assert store.group_ids() == [gid]
        assert store.verify() == []

    def test_group_delete_unpins_members_for_gc(self, parked):
        _machine, _process, runtime = parked
        store = CheckpointStore()
        put = store.put(runtime.checkpoint())
        gid = store.put_group([put.checkpoint_id])
        store.delete(gid)
        assert store.groups_referencing(put.checkpoint_id) == []
        store.delete(put.checkpoint_id)
        store.gc()
        assert len(store.chunks) == 0
        assert store.chunks.orphans() == []


class TestTransfer:
    def _two_epoch_store(self, parked):
        machine, process, runtime = parked
        store = CheckpointStore()
        ckpt = IncrementalCheckpointer(store, process, runtime=runtime)
        ckpt.checkpoint()
        advance(machine, runtime)
        return store, ckpt.checkpoint().checkpoint_id, ckpt

    def test_cold_ship_then_warm_noop(self, parked):
        store, leaf, _ckpt = self._two_epoch_store(parked)
        dst = CheckpointStore()
        plan = plan_transfer(store, dst, leaf)
        assert plan.chunks_needed and plan.bytes_to_ship > 0
        shipped = ship(store, dst, plan)
        assert shipped == plan.bytes_to_ship
        assert dst.materialize(leaf).files == store.materialize(leaf).files
        assert dst.verify() == []
        warm = plan_transfer(store, dst, leaf)
        assert warm.bytes_to_ship == 0
        assert ship(store, dst, warm) == 0

    def test_delta_ships_under_half_of_full_copy(self, parked):
        store, leaf, ckpt = self._two_epoch_store(parked)
        dst = CheckpointStore()
        ship(store, dst, plan_transfer(store, dst, leaf))
        machine, _process, runtime = parked
        advance(machine, runtime)
        epoch3 = ckpt.checkpoint().checkpoint_id
        plan = plan_transfer(store, dst, epoch3)
        assert plan.bytes_to_ship < 0.5 * plan.full_bytes
        assert plan.savings > 0.5

    def test_plan_unknown_checkpoint_raises(self):
        with pytest.raises(StoreError):
            plan_transfer(CheckpointStore(), CheckpointStore(), "a" * 32)

    def test_store_page_server_serves_by_digest(self):
        store = CheckpointStore()
        page = bytes(range(256)) * (PAGE_SIZE // 256)
        digest = store.chunks.put(page)
        server = StorePageServer({0x7000: digest}, store,
                                 node_name="src")
        assert server.remaining_pages() == 1
        assert server.fetch(0x7000) == page
        assert server.fetch(0x7000) is None
        assert (server.requests, server.pages_served) == (2, 1)
        assert server.bytes_served == PAGE_SIZE


class TestPageServerLogCap:
    def test_log_capped_counters_exact(self):
        pages = {i * PAGE_SIZE: bytes(PAGE_SIZE) for i in range(10)}
        server = PageServer(pages, log_limit=4)
        for i in range(10):
            server.fetch(i * PAGE_SIZE)
        assert server.requests == 10
        assert server.pages_served == 10
        assert server.bytes_served == 10 * PAGE_SIZE
        assert len(server.log) == 4
        assert server.log_dropped == 6

    def test_unlimited_log_with_zero(self):
        server = PageServer({}, log_limit=0)
        for i in range(PageServer.DEFAULT_LOG_LIMIT + 10):
            server.fetch(i * PAGE_SIZE)
        assert len(server.log) == PageServer.DEFAULT_LOG_LIMIT + 10
        assert server.log_dropped == 0


class TestStoreMigration:
    def _migrate(self, program, use_store, src_store=None, dst_store=None,
                 lazy=False):
        src = Machine(X86_ISA, name="src")
        dst = Machine(ARM_ISA, name="dst")
        pipeline = MigrationPipeline(src, dst, program,
                                     use_store=use_store,
                                     src_store=src_store,
                                     dst_store=dst_store)
        return pipeline.run_and_migrate(3000, lazy=lazy)

    def test_store_migration_output_matches_plain(self, counter_program,
                                                  counter_reference_output):
        plain = self._migrate(counter_program, use_store=False)
        stored = self._migrate(counter_program, use_store=True)
        assert plain.combined_output() == counter_reference_output
        assert stored.combined_output() == counter_reference_output
        assert "store" in stored.stage_seconds
        assert stored.stats["store"]["bytes_shipped"] > 0

    def test_warm_destination_ships_under_half(self, counter_program):
        src_store, dst_store = CheckpointStore(), CheckpointStore()
        self._migrate(counter_program, True, src_store, dst_store)
        warm = self._migrate(counter_program, True, src_store, dst_store)
        stats = warm.stats["store"]
        assert stats["bytes_shipped"] < 0.5 * stats["bytes_full_copy"]
        assert warm.stage_seconds["scp"] > 0  # link latency still paid
        assert src_store.verify() == [] and dst_store.verify() == []

    def test_store_migration_both_directions(self, counter_program,
                                             counter_reference_output):
        """x86->arm and arm->x86 through the store both restore
        byte-identical output."""
        for src_isa, dst_isa in ((X86_ISA, ARM_ISA), (ARM_ISA, X86_ISA)):
            src = Machine(src_isa, name="src")
            dst = Machine(dst_isa, name="dst")
            pipeline = MigrationPipeline(src, dst, counter_program,
                                         use_store=True)
            result = pipeline.run_and_migrate(3000)
            assert result.combined_output() == counter_reference_output

    def test_lazy_store_migration_uses_store_page_server(
            self, counter_program, counter_reference_output):
        result = self._migrate(counter_program, use_store=True, lazy=True)
        assert isinstance(result.page_server, StorePageServer)
        assert result.combined_output() == counter_reference_output


class TestStoreReplayDeterminism:
    def test_store_migrate_journal_bit_identical(self, counter_program):
        from repro.replay.engine import Replayer, record_migrate
        from repro.replay.journal import EV_STORE
        import tests.conftest as cft
        recorded = record_migrate(cft.COUNTER_SOURCE, "counter",
                                  warmup=3000, store=True)
        events = recorded.journal.of_kind(EV_STORE)
        assert len(events) == 2
        assert events[0]["label"].startswith("put:")
        assert events[1]["label"].startswith("plan:")
        replayed = Replayer(recorded.journal).run()
        assert recorded.journal.to_bytes() == replayed.journal.to_bytes()


class TestNetworkLinks:
    def test_asymmetric_connect(self):
        from repro.cluster.network import Network
        from repro.core.costs import ethernet_link, infiniband_link
        network = Network()
        network.connect("pi", "xeon", ethernet_link(), symmetric=False)
        assert network.link_between("pi", "xeon").name == \
            ethernet_link().name
        assert network.link_between("xeon", "pi") is network.default_link

    def test_conflicting_registration_raises(self):
        from repro.cluster.network import Network
        from repro.core.costs import ethernet_link, infiniband_link
        from repro.errors import ClusterError
        network = Network()
        network.connect("a", "b", infiniband_link())
        network.connect("a", "b", infiniband_link())  # idempotent
        with pytest.raises(ClusterError):
            network.connect("a", "b", ethernet_link())
