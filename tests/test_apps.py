"""Tests over the benchmark application suite."""

import pytest

from repro.apps import all_apps, apps_by_category, get_app
from repro.core.migration import MigrationPipeline
from repro.isa import ARM_ISA, X86_ISA, get_isa
from repro.vm import Machine

from conftest import run_native

APP_NAMES = [spec.name for spec in all_apps()]


class TestRegistry:
    def test_expected_apps_present(self):
        assert {"cg", "mg", "ep", "ft", "is", "linpack", "dhrystone",
                "kmeans", "blackscholes", "swaptions", "streamcluster",
                "redis", "nginx"} <= set(APP_NAMES)

    def test_categories(self):
        assert {s.name for s in apps_by_category("npb")} == \
            {"cg", "mg", "ep", "ft", "is"}
        assert {s.name for s in apps_by_category("parsec")} == \
            {"blackscholes", "swaptions", "streamcluster"}
        assert {s.name for s in apps_by_category("server")} == \
            {"redis", "nginx"}

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            get_app("doom")

    def test_unknown_size_raises(self):
        with pytest.raises(KeyError):
            get_app("cg").source("gigantic")

    def test_nominal_instruction_counts(self):
        for spec in all_apps():
            assert spec.class_b_instructions > spec.class_a_instructions > 0

    def test_parsec_apps_are_threaded(self):
        for spec in apps_by_category("parsec"):
            assert spec.threads > 1


@pytest.mark.parametrize("name", APP_NAMES)
def test_app_runs_identically_on_both_isas(name):
    spec = get_app(name)
    program = spec.compile("small")
    x86 = run_native(program, "x86_64")
    arm = run_native(program, "aarch64")
    assert x86.exit_code == 0
    assert arm.exit_code == 0
    assert x86.stdout() == arm.stdout()
    assert x86.stdout(), f"{name} must produce checkpointable output"


@pytest.mark.parametrize("name", APP_NAMES)
def test_app_migrates_x86_to_arm(name):
    """Every benchmark in the suite survives a mid-run cross-ISA
    migration with byte-identical output — Fig. 5/6's precondition."""
    spec = get_app(name)
    program = spec.compile("small")
    reference = run_native(program, "x86_64").stdout()
    pipeline = MigrationPipeline(Machine(X86_ISA, name="src"),
                                 Machine(ARM_ISA, name="dst"), program)
    result = pipeline.run_and_migrate(warmup_steps=4000)
    assert result.combined_output() == reference
    assert result.process.exit_code == 0


@pytest.mark.parametrize("name", ["cg", "redis", "blackscholes"])
def test_app_migrates_arm_to_x86(name):
    spec = get_app(name)
    program = spec.compile("small")
    reference = run_native(program, "aarch64").stdout()
    pipeline = MigrationPipeline(Machine(ARM_ISA, name="src"),
                                 Machine(X86_ISA, name="dst"), program)
    result = pipeline.run_and_migrate(warmup_steps=4000)
    assert result.combined_output() == reference


class TestServerEntropyOrdering:
    def test_fig10_ordering_nginx_redis_npb(self):
        """Fig. 10: Nginx carries the most shuffle entropy, Redis next,
        the NPB kernels the least — on both ISAs."""
        from repro.core.entropy import binary_entropy_bits
        for arch in ("x86_64", "aarch64"):
            nginx = binary_entropy_bits(
                get_app("nginx").compile("small").binary(arch))
            redis = binary_entropy_bits(
                get_app("redis").compile("small").binary(arch))
            npb = [binary_entropy_bits(
                get_app(n).compile("small").binary(arch))
                for n in ("cg", "mg", "ep", "ft", "is")]
            npb_avg = sum(npb) / len(npb)
            assert nginx > redis > npb_avg

    def test_arm_entropy_below_x86_overall(self):
        from repro.core.entropy import binary_entropy_bits
        x86_vals = []
        arm_vals = []
        for name in ("nginx", "redis", "cg", "mg"):
            program = get_app(name).compile("small")
            x86_vals.append(binary_entropy_bits(program.binary("x86_64")))
            arm_vals.append(binary_entropy_bits(program.binary("aarch64")))
        assert sum(arm_vals) < sum(x86_vals)
