"""End-to-end cross-ISA migration tests — the paper's headline capability.

A process starts on one ISA, is paused at an equivalence point, its
CRIU images are rewritten, and it resumes on the *other* ISA. The
combined output must be byte-identical to a native run.
"""

import pytest

from repro.core.migration import (MigrationPipeline, exe_path_for,
                                  install_program)
from repro.core.policies.cross_isa import CrossIsaPolicy
from repro.core.rewriter import ProcessRewriter
from repro.core.runtime import DapperRuntime
from repro.criu.restore import restore_process
from repro.errors import RewriteError
from repro.isa import ARM_ISA, X86_ISA, get_isa
from repro.vm import Machine


def migrate(program, src_arch, dst_arch, warmup, lazy=False):
    src = Machine(get_isa(src_arch), name="src")
    dst = Machine(get_isa(dst_arch), name="dst")
    pipeline = MigrationPipeline(src, dst, program)
    result = pipeline.run_and_migrate(warmup_steps=warmup, lazy=lazy)
    return result


class TestSingleThreaded:
    @pytest.mark.parametrize("src_arch,dst_arch", [
        ("x86_64", "aarch64"), ("aarch64", "x86_64")])
    def test_both_directions(self, counter_program,
                             counter_reference_output, src_arch, dst_arch):
        result = migrate(counter_program, src_arch, dst_arch, warmup=2500)
        assert result.combined_output() == counter_reference_output
        assert result.process.exit_code == 0

    @pytest.mark.parametrize("warmup", [500, 1500, 3000, 4500])
    def test_many_migration_points(self, counter_program,
                                   counter_reference_output, warmup):
        result = migrate(counter_program, "x86_64", "aarch64", warmup)
        assert result.combined_output() == counter_reference_output

    def test_round_trip_migration(self, counter_program,
                                  counter_reference_output):
        """x86 → arm → x86: two migrations of the same process."""
        m1 = Machine(X86_ISA, name="a")
        m2 = Machine(ARM_ISA, name="b")
        m3 = Machine(X86_ISA, name="c")
        pipe1 = MigrationPipeline(m1, m2, counter_program)
        process = pipe1.start()
        m1.step_all(1200)
        assert not process.exited
        result1 = pipe1.migrate(process)
        m2.step_all(1200)
        assert not result1.process.exited
        pipe2 = MigrationPipeline(m2, m3, counter_program)
        result2 = pipe2.migrate(result1.process)
        m3.run_process(result2.process)
        combined = (result1.output_before + result2.combined_output())
        assert combined == counter_reference_output

    def test_stats_reported(self, counter_program):
        result = migrate(counter_program, "x86_64", "aarch64", 2500)
        assert result.stats["threads"] == 1
        assert result.stats["frames"] >= 2
        assert result.stats["code_pages_swapped"] >= 1
        assert set(result.stage_seconds) == \
            {"checkpoint", "recode", "scp", "verify", "restore"}
        assert all(v > 0 for v in result.stage_seconds.values())


class TestMultiThreaded:
    @pytest.mark.parametrize("src_arch,dst_arch", [
        ("x86_64", "aarch64"), ("aarch64", "x86_64")])
    def test_threads_with_locks_and_pointers(
            self, threaded_program, threaded_reference_output,
            src_arch, dst_arch):
        result = migrate(threaded_program, src_arch, dst_arch, warmup=4000)
        assert result.combined_output() == threaded_reference_output
        assert result.stats["threads"] >= 2
        assert result.stats["pointers_remapped"] >= 1

    def test_late_migration_fewer_threads(self, threaded_program,
                                          threaded_reference_output):
        result = migrate(threaded_program, "x86_64", "aarch64",
                         warmup=8000)
        assert result.combined_output() == threaded_reference_output


class TestLazyMigration:
    def test_lazy_output_matches(self, counter_program,
                                 counter_reference_output):
        result = migrate(counter_program, "x86_64", "aarch64", 2500,
                         lazy=True)
        assert result.combined_output() == counter_reference_output
        assert result.page_server is not None
        assert result.page_server.pages_served >= 1

    def test_lazy_smaller_checkpoint_and_scp(self, counter_program):
        vanilla = migrate(counter_program, "x86_64", "aarch64", 2500)
        lazy = migrate(counter_program, "x86_64", "aarch64", 2500,
                       lazy=True)
        assert lazy.images.total_bytes() < vanilla.images.total_bytes()
        assert lazy.stage_seconds["scp"] < vanilla.stage_seconds["scp"]
        assert lazy.stage_seconds["restore"] < \
            vanilla.stage_seconds["restore"]

    def test_lazy_threaded(self, threaded_program,
                           threaded_reference_output):
        result = migrate(threaded_program, "x86_64", "aarch64", 4000,
                         lazy=True)
        assert result.combined_output() == threaded_reference_output


class TestPolicyValidation:
    def test_same_isa_rejected(self, counter_program):
        with pytest.raises(RewriteError):
            CrossIsaPolicy(counter_program.binary("x86_64"),
                           counter_program.binary("x86_64"), "/bin/x")

    def test_different_programs_rejected(self, counter_program,
                                         threaded_program):
        with pytest.raises(RewriteError):
            CrossIsaPolicy(counter_program.binary("x86_64"),
                           threaded_program.binary("aarch64"), "/bin/x")

    def test_wrong_checkpoint_arch_rejected(self, counter_program):
        machine = Machine(ARM_ISA, name="src")
        install_program(machine, counter_program)
        process = machine.spawn_process(exe_path_for("counter", "aarch64"))
        machine.step_all(2500)
        runtime = DapperRuntime(machine, process)
        runtime.pause_at_equivalence_points()
        images = runtime.checkpoint()
        # Policy claims the checkpoint is x86_64 — it is aarch64.
        policy = CrossIsaPolicy(counter_program.binary("x86_64"),
                                counter_program.binary("aarch64"),
                                "/bin/counter.aarch64")
        with pytest.raises(RewriteError):
            ProcessRewriter().rewrite(images, policy)


class TestImagesAfterRewrite:
    def test_cores_and_files_retargeted(self, counter_program):
        result = migrate(counter_program, "x86_64", "aarch64", 2500)
        images = result.images
        assert images.inventory().arch == "aarch64"
        assert images.files_img().exe_arch == "aarch64"
        for core in images.cores():
            assert core.arch == "aarch64"
            # pc must be a valid destination eqpoint
            point = counter_program.binary("aarch64").stackmaps.by_addr[
                core.pc]
            assert point is not None

    def test_dst_code_page_contains_arm_code(self, counter_program):
        result = migrate(counter_program, "x86_64", "aarch64", 2500)
        images = result.images
        core = images.cores()[0]
        from repro.mem.paging import page_align_down
        page = images.page_at(page_align_down(core.pc))
        assert page is not None
        offset = page_align_down(core.pc) - 0x400000
        expected = counter_program.binary("aarch64").text[
            offset:offset + 64]
        assert page[:64] == expected

    def test_restore_and_inspect_tls(self, counter_program):
        result = migrate(counter_program, "x86_64", "aarch64", 2500)
        thread = result.process.threads[1]
        # After TLS adjustment, block address must match the ISA layout.
        from repro.core.tlsmod import tls_block_address
        block = tls_block_address(thread.tp, "aarch64")
        assert block % 8 == 0
