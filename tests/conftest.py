"""Shared fixtures: compiled programs are expensive, so cache per session."""

from __future__ import annotations

import pytest

from repro.compiler import compile_source
from repro.core.migration import exe_path_for, install_program
from repro.isa import ARM_ISA, X86_ISA
from repro.vm import Machine

COUNTER_SOURCE = """
global int g;
tls int tcount;

func work(int i) -> int {
    int acc;
    int j;
    acc = 0;
    j = 0;
    while (j <= i) {
        acc = acc + j;
        j = j + 1;
    }
    tcount = tcount + 1;
    return acc;
}

func main() -> int {
    int i;
    int arr[6];
    int *p;
    i = 0;
    while (i < 30) {
        arr[i % 6] = work(i);
        print(arr[i % 6]);
        i = i + 1;
    }
    p = &arr[2];
    print(*p);
    print(tcount);
    g = arr[5];
    print(g);
    return 0;
}
"""

THREADED_SOURCE = """
global int total;
global int mtx;
tls int tls_hits;

func bump(int *q, int k) -> int {
    *q = *q + k;
    tls_hits = tls_hits + 1;
    return *q;
}

func worker(int n) {
    int i;
    int local_acc[4];
    int *p;
    p = &local_acc[1];
    *p = 0;
    i = 0;
    while (i < n) {
        bump(p, i);
        lock(&mtx);
        total = total + 1;
        unlock(&mtx);
        i = i + 1;
    }
    lock(&mtx);
    total = total + *p;
    unlock(&mtx);
}

func main() -> int {
    int t1; int t2;
    int mine[8];
    int *mp;
    mp = &mine[5];
    *mp = 7;
    t1 = spawn(worker, 40);
    t2 = spawn(worker, 25);
    join(t1);
    join(t2);
    print(total + *mp);
    return 0;
}
"""


@pytest.fixture(scope="session")
def counter_program():
    return compile_source(COUNTER_SOURCE, "counter")


@pytest.fixture(scope="session")
def threaded_program():
    return compile_source(THREADED_SOURCE, "threaded")


@pytest.fixture(scope="session")
def counter_reference_output(counter_program):
    machine = Machine(X86_ISA)
    install_program(machine, counter_program)
    process = machine.spawn_process(exe_path_for("counter", "x86_64"))
    machine.run_process(process)
    return process.stdout()


@pytest.fixture(scope="session")
def threaded_reference_output(threaded_program):
    machine = Machine(X86_ISA)
    install_program(machine, threaded_program)
    process = machine.spawn_process(exe_path_for("threaded", "x86_64"))
    machine.run_process(process)
    return process.stdout()


def run_native(program, arch: str, max_steps: int = 30_000_000):
    """Run a compiled program natively; returns the finished process."""
    isa = X86_ISA if arch == "x86_64" else ARM_ISA
    machine = Machine(isa)
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(program.name, arch))
    machine.run_process(process, max_steps=max_steps)
    return process


@pytest.fixture
def run_native_fixture():
    return run_native
