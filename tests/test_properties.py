"""Property-based tests (hypothesis) on core data structures/invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.binfmt.delf import DelfBinary
from repro.compiler import compile_source
from repro.core.policies.stack_shuffle import shuffle_binary
from repro.core.rewriter import ImageMemory
from repro.criu.images import ImageSet, PagemapEntry, PagemapImage
from repro.isa import ARM_ISA, X86_ISA, Instruction
from repro.mem.paging import PAGE_SIZE
from repro.testing import generate_program


# -- ImageMemory: arbitrary write/read sequences over sparse pages -------------

def _empty_image_set():
    images = ImageSet()
    images.set_pagemap(PagemapImage([]))
    images.set_pages(b"")
    return images


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=0x40000),
                          st.binary(min_size=1, max_size=64)),
                min_size=1, max_size=20))
def test_image_memory_write_read_property(writes):
    memory = ImageMemory(_empty_image_set())
    # Last write to an address wins; verify via a shadow model.
    shadow = {}
    for addr, data in writes:
        memory.write(addr, data)
        for i, byte in enumerate(data):
            shadow[addr + i] = byte
    for addr, byte in list(shadow.items())[:200]:
        assert memory.read(addr, 1)[0] == byte


@given(st.sets(st.integers(min_value=0, max_value=200), max_size=24))
def test_pagemap_runlength_roundtrip_property(page_numbers):
    """flush() run-length-encodes pages; reloading must see the same set."""
    images = _empty_image_set()
    memory = ImageMemory(images)
    for number in page_numbers:
        memory.add_page(number * PAGE_SIZE,
                        bytes([number % 256]) * PAGE_SIZE)
    memory.flush()
    reloaded = ImageMemory(images)
    assert set(reloaded.page_bases()) == \
        {n * PAGE_SIZE for n in page_numbers}
    for number in page_numbers:
        assert reloaded.read(number * PAGE_SIZE, 1)[0] == number % 256
    # pagemap entries are maximal runs: consecutive entries never abut.
    entries = images.pagemap().entries
    for first, second in zip(entries, entries[1:]):
        assert first.vaddr + first.nr_pages * PAGE_SIZE < second.vaddr


# -- encode/decode totality over both ISAs ---------------------------------------

@given(st.binary(min_size=0, max_size=64))
def test_disassembler_total_on_garbage(blob):
    """Linear sweep must terminate and cover every byte on any input."""
    for isa in (X86_ISA, ARM_ISA):
        instrs = isa.disassemble(blob, 0)
        assert sum(i.size for i in instrs) >= len(blob) - 16
        offset = 0
        for instr in instrs:
            assert instr.addr == offset
            offset += instr.size


@given(st.integers(min_value=0, max_value=15),
       st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
def test_x86_load_store_roundtrip_property(reg, offset):
    for op in ("load", "store", "lea"):
        instr = Instruction(op, rd=reg, rn=6, imm=offset)
        instr.addr = 0
        decoded = X86_ISA.decode(X86_ISA.encode(instr), 0, 0)
        assert (decoded.op, decoded.rd, decoded.rn, decoded.imm) == \
            (op, reg, 6, offset)


# -- shuffle invariants over generated programs ------------------------------------

@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("arch", ["x86_64", "aarch64"])
def test_shuffle_preserves_structure(seed, arch):
    program = compile_source(generate_program(seed + 300), f"prop{seed}")
    original = program.binary(arch)
    shuffled, _stats = shuffle_binary(original, seed=seed * 13 + 1)
    # 1. code length and symbol addresses identical
    assert len(shuffled.text) == len(original.text)
    for symbol in original.symtab:
        assert shuffled.symtab.lookup(symbol.name).addr == symbol.addr
    # 2. per-function: same slot-id set, same offset multiset, same size
    for record in original.frames.frames:
        peer = shuffled.frames.get(record.func)
        assert peer.frame_size == record.frame_size
        assert {s.slot_id for s in peer.slots} == \
            {s.slot_id for s in record.slots}
        assert sorted(s.offset for s in peer.slots) == \
            sorted(s.offset for s in record.slots)
        # 3. pair-excluded slots never move
        for slot in record.slots:
            if slot.pair_member:
                assert peer.slot_by_id(slot.slot_id).offset == slot.offset
    # 4. eqpoint addresses unchanged (only locations move)
    for point in original.stackmaps.eqpoints:
        peer = shuffled.stackmaps.by_id[point.eqpoint_id]
        assert peer.addr == point.addr
        assert peer.trap_addr == point.trap_addr
    # 5. serialization round-trips
    rebuilt = DelfBinary.from_bytes(shuffled.to_bytes())
    assert rebuilt.text == shuffled.text


@pytest.mark.parametrize("seed", range(4))
def test_double_shuffle_composes(seed):
    """Shuffling a shuffled binary must still be valid and runnable."""
    from repro.core.migration import exe_path_for, install_program
    from repro.vm import Machine

    program = compile_source(generate_program(seed + 700), f"dbl{seed}")
    once, _ = shuffle_binary(program.binary("x86_64"), seed=1)
    twice, _ = shuffle_binary(once, seed=2)
    machine = Machine(X86_ISA)
    machine.tmpfs.write("/bin/t", twice.to_bytes())
    process = machine.spawn_process("/bin/t")
    machine.run_process(process, max_steps=3_000_000)
    assert process.exit_code == 0

    reference = Machine(X86_ISA)
    install_program(reference, program)
    ref_proc = reference.spawn_process(exe_path_for(f"dbl{seed}", "x86_64"))
    reference.run_process(ref_proc, max_steps=3_000_000)
    assert process.stdout() == ref_proc.stdout()


# -- wire format fuzz (beyond the unit tests) -----------------------------------------

@given(st.binary(max_size=128))
@settings(suppress_health_check=[HealthCheck.filter_too_much])
def test_image_decoders_never_crash_on_garbage(blob):
    from repro.criu import crit
    from repro.errors import ReproError
    for name in ("inventory.img", "core-1.img", "mm.img", "files.img",
                 "pagemap.img"):
        try:
            crit.decode_image(name, blob)
        except ReproError:
            pass    # clean rejection
        except (KeyError, UnicodeDecodeError):
            pass    # decoded shape missing required fields — acceptable
