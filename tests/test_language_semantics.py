"""Behavioural language-feature matrix: every DapperC construct must
produce identical results on both simulated ISAs."""

import pytest

from repro.compiler import compile_source
from repro.core.migration import exe_path_for, install_program
from repro.isa import ARM_ISA, X86_ISA
from repro.vm import Machine


def run_both(source, name="sem"):
    program = compile_source(source, name)
    outs = []
    for isa in (X86_ISA, ARM_ISA):
        machine = Machine(isa)
        install_program(machine, program)
        process = machine.spawn_process(exe_path_for(name, isa.name))
        machine.run_process(process, max_steps=30_000_000)
        assert process.exit_code == 0, (isa.name, process.exit_code)
        outs.append(process.stdout())
    assert outs[0] == outs[1], "ISAs disagree"
    return outs[0]


CASES = {
    "comparisons": ("""
func main() -> int {
    print(3 < 5); print(5 < 3); print(3 <= 3);
    print(4 > 4); print(4 >= 4); print(1 == 1); print(1 != 1);
    print(-2 < 1); print(-5 > -9);
    return 0;
}
""", "1\n0\n1\n0\n1\n1\n0\n1\n1\n"),

    "bitwise": ("""
func main() -> int {
    print(12 & 10); print(12 | 10); print(12 ^ 10);
    print(3 << 4); print(255 >> 4);
    return 0;
}
""", "8\n14\n6\n48\n15\n"),

    "logical_short_circuit": ("""
func main() -> int {
    int a;
    a = 5;
    print(a > 1 && a < 10);
    print(a > 9 || a == 5);
    print(!a);
    print(!(a - 5));
    return 0;
}
""", "1\n1\n0\n1\n"),

    "nested_loops": ("""
func main() -> int {
    int i; int j; int acc;
    acc = 0;
    i = 0;
    while (i < 5) {
        j = 0;
        while (j < i) {
            acc = acc + i * j;
            j = j + 1;
        }
        i = i + 1;
    }
    print(acc);
    return 0;
}
""", "35\n"),

    "break_continue": ("""
func main() -> int {
    int i; int acc;
    acc = 0;
    i = 0;
    while (i < 100) {
        i = i + 1;
        if (i % 2 == 0) { continue; }
        if (i > 10) { break; }
        acc = acc + i;
    }
    print(acc);
    print(i);
    return 0;
}
""", "25\n11\n"),

    "recursion": ("""
func fib(int n) -> int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() -> int {
    print(fib(12));
    return 0;
}
""", "144\n"),

    "mutual_recursion": ("""
func is_even(int n) -> int {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}
func is_odd(int n) -> int {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}
func main() -> int {
    print(is_even(10));
    print(is_odd(7));
    return 0;
}
""", "1\n1\n"),

    "arrays_and_pointers": ("""
func main() -> int {
    int a[5]; int *p; int i;
    i = 0;
    while (i < 5) { a[i] = i * i; i = i + 1; }
    p = &a[0];
    print(*p);
    p = p + 3;
    print(*p);
    print(p - &a[0]);
    *p = 100;
    print(a[3]);
    return 0;
}
""", "0\n9\n24\n100\n"),

    "pointer_args": ("""
func swap(int *x, int *y) {
    int t;
    t = *x;
    *x = *y;
    *y = t;
}
func main() -> int {
    int a; int b;
    a = 1;
    b = 2;
    swap(&a, &b);
    print(a);
    print(b);
    return 0;
}
""", "2\n1\n"),

    "global_arrays": ("""
global int table[8];
func fill(int n) {
    int i;
    i = 0;
    while (i < n) { table[i] = i + 10; i = i + 1; }
}
func main() -> int {
    fill(8);
    print(table[0] + table[7]);
    return 0;
}
""", "27\n"),

    "global_pointer": ("""
global int *gp;
global int target;
func main() -> int {
    gp = &target;
    *gp = 55;
    print(target);
    return 0;
}
""", "55\n"),

    "tls_basic": ("""
tls int counter;
func bump() { counter = counter + 1; }
func main() -> int {
    bump(); bump(); bump();
    print(counter);
    return 0;
}
""", "3\n"),

    "unary_minus": ("""
func main() -> int {
    int x;
    x = 7;
    print(-x);
    print(-(-x));
    print(-x * -x);
    return 0;
}
""", "-7\n7\n49\n"),

    "deep_expression": ("""
func main() -> int {
    int a;
    a = ((1 + 2) * (3 + 4) - (5 - 6)) * ((7 + 8) / (2 + 1));
    print(a);
    return 0;
}
""", "110\n"),

    "call_in_args": ("""
func double(int x) -> int { return x * 2; }
func addup(int a, int b, int c) -> int { return a + b + c; }
func main() -> int {
    print(addup(double(1), double(double(2)), double(3)));
    return 0;
}
""", "16\n"),

    "void_functions": ("""
global int sink;
func record(int v) { sink = sink + v; }
func main() -> int {
    record(3);
    record(4);
    print(sink);
    return 0;
}
""", "7\n"),

    "hex_literals": ("""
func main() -> int {
    print(0x10);
    print(0xFF & 0x0F);
    return 0;
}
""", "16\n15\n"),

    "big_frames": ("""
func chunky(int seed) -> int {
    int a[40]; int b[40]; int i; int acc;
    i = 0;
    while (i < 40) {
        a[i] = seed + i;
        b[i] = a[i] * 2;
        i = i + 1;
    }
    acc = 0;
    i = 0;
    while (i < 40) { acc = acc + b[i]; i = i + 1; }
    return acc;
}
func main() -> int {
    print(chunky(1));
    return 0;
}
""", "1640\n"),

    "implicit_return_zero": ("""
func noret() -> int { }
func main() -> int {
    print(noret());
    return 0;
}
""", "0\n"),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_semantics(case):
    source, expected = CASES[case]
    assert run_both(source, f"sem_{case}") == expected
