"""Direct instruction-level interpreter tests.

Hand-assembled code blocks (no compiler involved) exercise each
mnemonic's semantics on both ISAs against the same expectations — the
contract the shared interpreter must uphold for cross-ISA state
equivalence to be possible at all.
"""

import pytest

from repro.binfmt.delf import DelfBinary, TEXT_BASE
from repro.binfmt.frames import FrameSection
from repro.binfmt.stackmaps import StackMapSection
from repro.binfmt.symtab import Symbol, SymbolTable
from repro.isa import ARM_ISA, X86_ISA, Instruction
from repro.isa.asm import AsmBlock
from repro.vm import Machine
from repro import sysabi


def run_block(isa, instrs, data_size=64):
    """Assemble ``instrs`` as _start, run it, return the finished process.

    The block must end by placing an exit code in arg0 and issuing the
    exit syscall (use the `exit_with` helper below).
    """
    block = AsmBlock(isa, list(instrs))
    text = block.encode(TEXT_BASE, lambda name: TEXT_BASE)
    binary = DelfBinary(
        arch=isa.name, entry=TEXT_BASE, source_name="raw",
        text=text, data=bytes(data_size),
        symtab=SymbolTable([Symbol("_start", TEXT_BASE, len(text),
                                   "func", ".text")]),
        stackmaps=StackMapSection([]), frames=FrameSection([]),
        tls_template=b"")
    machine = Machine(isa)
    machine.tmpfs.write("/bin/raw", binary.to_bytes())
    process = machine.spawn_process("/bin/raw")
    machine.run_process(process, max_steps=100_000)
    return process


def exit_with(isa, reg=None, imm=None):
    """Instructions that exit with the value of ``reg`` (or ``imm``)."""
    arg0 = isa.reg(isa.abi.syscall_arg_regs[0])
    number = isa.reg(isa.abi.syscall_number_reg)
    out = []
    if imm is not None:
        out.append(Instruction("movi", rd=arg0, imm=imm))
    elif reg is not None and reg != arg0:
        out.append(Instruction("mov", rd=arg0, rn=reg))
    out.append(Instruction("movi", rd=number, imm=sysabi.SYS_EXIT))
    out.append(Instruction("syscall"))
    return out


@pytest.mark.parametrize("isa", [X86_ISA, ARM_ISA], ids=lambda i: i.name)
class TestArithmetic:
    def test_add_sub_mul(self, isa):
        r = isa.reg
        a, b = (r("rbx"), r("rcx")) if isa is X86_ISA else (r("x1"), r("x2"))
        process = run_block(isa, [
            Instruction("movi", rd=a, imm=21),
            Instruction("movi", rd=b, imm=2),
            Instruction("mul", rd=a, rn=a, rm=b),
            Instruction("addi", rd=a, rn=a, imm=5),
            Instruction("sub", rd=a, rn=a, rm=b),
        ] + exit_with(isa, reg=a))
        assert process.exit_code == 21 * 2 + 5 - 2

    def test_division_truncates_toward_zero(self, isa):
        r = isa.reg
        a, b = (r("rbx"), r("rcx")) if isa is X86_ISA else (r("x1"), r("x2"))
        process = run_block(isa, [
            Instruction("movi", rd=a, imm=-7),
            Instruction("movi", rd=b, imm=2),
            Instruction("sdiv", rd=a, rn=a, rm=b),
        ] + exit_with(isa, reg=a))
        assert process.exit_code == -3

    def test_bitwise(self, isa):
        r = isa.reg
        a, b = (r("rbx"), r("rcx")) if isa is X86_ISA else (r("x1"), r("x2"))
        process = run_block(isa, [
            Instruction("movi", rd=a, imm=0b1100),
            Instruction("movi", rd=b, imm=0b1010),
            Instruction("eor", rd=a, rn=a, rm=b),
        ] + exit_with(isa, reg=a))
        assert process.exit_code == 0b0110


@pytest.mark.parametrize("isa", [X86_ISA, ARM_ISA], ids=lambda i: i.name)
class TestControlFlow:
    def test_branch_taken_and_not(self, isa):
        r = isa.reg
        a = r("rbx") if isa is X86_ISA else r("x1")
        skip = Instruction("movi", rd=a, imm=111)   # must be skipped
        landing = Instruction("nop")
        landing.label = "after"
        process = run_block(isa, [
            Instruction("movi", rd=a, imm=5),
            Instruction("cmpi", rn=a, imm=5),
            Instruction("bcc", cond="eq", target="after"),
            skip,
            landing,
        ] + exit_with(isa, reg=a))
        assert process.exit_code == 5

    def test_loop_counts(self, isa):
        r = isa.reg
        a = r("rbx") if isa is X86_ISA else r("x1")
        top = Instruction("addi", rd=a, rn=a, imm=1)
        top.label = "top"
        process = run_block(isa, [
            Instruction("movi", rd=a, imm=0),
            top,
            Instruction("cmpi", rn=a, imm=10),
            Instruction("bcc", cond="lt", target="top"),
        ] + exit_with(isa, reg=a))
        assert process.exit_code == 10

    def test_call_and_ret(self, isa):
        r = isa.reg
        a = r("rbx") if isa is X86_ISA else r("x19")
        callee = Instruction("movi", rd=a, imm=42)
        callee.label = "callee"
        process = run_block(isa, [
            Instruction("b", target="entry"),
            callee,
            Instruction("ret"),
            _labelled(Instruction("call", target="callee"), "entry"),
        ] + exit_with(isa, reg=a))
        assert process.exit_code == 42


def _labelled(instr, label):
    instr.label = label
    return instr


@pytest.mark.parametrize("isa", [X86_ISA, ARM_ISA], ids=lambda i: i.name)
class TestMemory:
    def test_data_load_store(self, isa):
        from repro.binfmt.delf import DATA_BASE
        r = isa.reg
        a, b = (r("rbx"), r("rcx")) if isa is X86_ISA else (r("x1"), r("x2"))
        process = run_block(isa, [
            Instruction("movi", rd=b, imm=DATA_BASE),
            Instruction("movi", rd=a, imm=77),
            Instruction("store", rd=a, rn=b, imm=8),
            Instruction("movi", rd=a, imm=0),
            Instruction("load", rd=a, rn=b, imm=8),
        ] + exit_with(isa, reg=a))
        assert process.exit_code == 77

    def test_stack_push_pop_or_pairs(self, isa):
        r = isa.reg
        if isa is X86_ISA:
            a = r("rbx")
            process = run_block(isa, [
                Instruction("movi", rd=a, imm=9),
                Instruction("push", rd=a),
                Instruction("movi", rd=a, imm=0),
                Instruction("pop", rd=a),
            ] + exit_with(isa, reg=a))
        else:
            a, b = r("x1"), r("x2")
            fp, sp = r("x29"), r("sp")
            process = run_block(isa, [
                Instruction("mov", rd=fp, rn=sp),
                Instruction("movi", rd=a, imm=4),
                Instruction("movi", rd=b, imm=5),
                Instruction("stp", rd=a, rm=b, imm=-16),
                Instruction("movi", rd=a, imm=0),
                Instruction("movi", rd=b, imm=0),
                Instruction("ldp", rd=a, rm=b, imm=-16),
                Instruction("add", rd=a, rn=a, rm=b),
            ] + exit_with(isa, reg=a))
        assert process.exit_code == 9

    def test_lea_computes_address_without_access(self, isa):
        r = isa.reg
        a, b = (r("rbx"), r("rcx")) if isa is X86_ISA else (r("x1"), r("x2"))
        process = run_block(isa, [
            Instruction("movi", rd=b, imm=1000),
            Instruction("lea", rd=a, rn=b, imm=24),
        ] + exit_with(isa, reg=a))
        assert process.exit_code == 1024


@pytest.mark.parametrize("isa", [X86_ISA, ARM_ISA], ids=lambda i: i.name)
def test_trap_parks_thread(isa):
    """Executing the trap must stop the thread with its pc *after* the
    trap (int3 semantics) — the property restore relies on."""
    block = AsmBlock(isa, [Instruction("nop"), Instruction("trap"),
                           Instruction("nop"), Instruction("ret")])
    text = block.encode(TEXT_BASE)
    binary = DelfBinary(
        arch=isa.name, entry=TEXT_BASE, source_name="trap",
        text=text, data=b"", symtab=SymbolTable(
            [Symbol("_start", TEXT_BASE, len(text), "func", ".text")]),
        stackmaps=StackMapSection([]), frames=FrameSection([]))
    machine = Machine(isa)
    machine.tmpfs.write("/bin/t", binary.to_bytes())
    process = machine.spawn_process("/bin/t")
    machine.step_all(10)
    thread = process.threads[1]
    from repro.vm.cpu import ThreadStatus
    assert thread.status == ThreadStatus.TRAPPED
    trap_size = len(isa.trap_bytes)
    nop_size = len(isa.nop_bytes)
    assert thread.pc == TEXT_BASE + nop_size + trap_size
