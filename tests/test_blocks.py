"""Tests for the superblock execution engine (``repro.vm.blocks``).

Covers the engine's three safety-critical contracts:

1. invalidation — code rewrites (stack shuffle, live update, in-place
   patches) must discard predecoded superblocks, and the rewritten code
   must actually execute;
2. eqpoint boundaries — a block never spans an equivalence-point
   checker, so a parked thread's pc equals the eqpoint pc exactly;
3. parity — the generated tier (forced hot, including the partial
   quantum-boundary variant) is bit-identical to the per-step engine.
"""

import pytest

from repro.binfmt.stackmaps import KIND_ENTRY
from repro.compiler import compile_source
from repro.core.migration import exe_path_for, install_program
from repro.core.policies.live_update import LiveUpdatePolicy
from repro.core.policies.stack_shuffle import StackShufflePolicy
from repro.core.rewriter import ProcessRewriter
from repro.core.runtime import DapperRuntime
from repro.criu.restore import restore_process
from repro.isa import get_isa
from repro.vm import Machine, blocks, chains
from repro.vm.cpu import ThreadStatus
from repro.vm.interp import CpuFault

ARCHES = ["x86_64", "aarch64"]


def _spawn(program, arch, name=None):
    machine = Machine(get_isa(arch), name="host")
    install_program(machine, program)
    process = machine.spawn_process(
        exe_path_for(name or program.name, arch))
    return machine, process


def _fingerprint(process):
    return (process.stdout(), process.exit_code,
            process.instr_total, process.cycle_total)


class TestInvalidation:
    @pytest.mark.parametrize("arch", ARCHES)
    def test_stack_shuffle_discards_superblocks(self, arch, counter_program,
                                                counter_reference_output):
        machine, process = _spawn(counter_program, arch, "counter")
        machine.step_all(2500)
        assert not process.exited
        # The source ran under the block engine: its cache is warm and
        # its executable pages have a content key for trace sharing.
        assert process.block_cache
        source_key = process.trace_content_key
        assert source_key is not None

        runtime = DapperRuntime(machine, process)
        runtime.pause_at_equivalence_points()
        before = process.stdout()
        images = runtime.checkpoint()
        runtime.kill_source()
        policy = StackShufflePolicy(
            counter_program.binary(arch), seed=11,
            dst_exe_path=f"/bin/counter.{arch}.blkshuf")
        ProcessRewriter().rewrite(images, policy)
        machine.tmpfs.write(policy.dst_exe_path,
                            policy.shuffled_binary.to_bytes())
        restored = restore_process(machine, images)
        # The rewritten process must not inherit a single predecoded
        # superblock from the source.
        assert restored.block_cache == {}
        machine.run_process(restored)
        # ... and the *shuffled* code really executed, correctly.
        assert before + restored.stdout() == counter_reference_output
        assert restored.block_cache
        # Shuffled text hashes differently, so the global trace cache
        # cannot alias the source's traces onto the restored process.
        assert restored.trace_content_key != source_key

    def test_live_update_swap_discards_superblocks(self):
        v1 = compile_source(V1_SOURCE, "doubler")
        v2 = compile_source(V2_SOURCE, "doubler")
        machine, process = _spawn(v1, "x86_64")
        machine.step_all(2000)
        assert not process.exited
        assert process.block_cache
        source_key = process.trace_content_key

        runtime = DapperRuntime(machine, process)
        runtime.pause_at_equivalence_points()
        lines_before = process.stdout().count("\n")
        images = runtime.checkpoint()
        runtime.kill_source()
        policy = LiveUpdatePolicy(v1.binary("x86_64"), v2.binary("x86_64"),
                                  "/bin/doubler.v2")
        ProcessRewriter().rewrite(images, policy)
        machine.tmpfs.write(policy.dst_exe_path,
                            v2.binary("x86_64").to_bytes())
        updated = restore_process(machine, images)
        assert updated.block_cache == {}
        machine.run_process(updated)
        assert updated.exit_code == 0
        # Every post-update line follows v2's tripling formula — stale
        # v1 superblocks would keep doubling.
        got = [int(line) for line in updated.stdout().splitlines()]
        expected = [3 * i for i in range(lines_before + 1, 201)]
        assert got == expected
        assert updated.trace_content_key != source_key

    def test_in_place_code_write_bumps_version(self, counter_program):
        machine, process = _spawn(counter_program, "x86_64", "counter")
        machine.step_all(2000)
        assert not process.exited
        assert process.block_cache
        version = process.code_version
        thread = next(iter(process.threads.values()))
        # Patch illegal bytes at the thread's very next pc: if any stale
        # superblock survived the write, execution would sail past them.
        process.aspace.write_code(thread.pc, b"\x06" * 16)
        assert process.code_version == version + 1
        assert process.block_cache == {}
        assert process.decode_cache == {}
        with pytest.raises(CpuFault):
            machine.run_process(process)


class TestEqpointBoundary:
    @pytest.mark.parametrize("arch", ARCHES)
    def test_park_pc_is_eqpoint_pc(self, arch, counter_program):
        """Regression: a superblock must never span an eqpoint checker.

        If a trace ran through the trap, the thread would park with its
        pc somewhere past the equivalence point and the stackmap check
        would reject it (or worse, state transformation would read the
        wrong frame).
        """
        machine, process = _spawn(counter_program, arch, "counter")
        machine.step_all(2500)       # warm superblocks before arming
        assert not process.exited
        runtime = DapperRuntime(machine, process)
        # This raises NotAtEquivalencePoint if any park pc is off.
        tids = runtime.pause_at_equivalence_points()
        stackmaps = process.binary.stackmaps
        for tid in tids:
            thread = process.threads[tid]
            assert thread.status == ThreadStatus.TRAPPED
            assert thread.pc == thread.trap_pc
            assert stackmaps.by_addr[thread.pc].kind == KIND_ENTRY

    @pytest.mark.parametrize("arch", ARCHES)
    def test_no_block_contains_kernel_entry(self, arch, counter_program,
                                            threaded_program):
        """Structural invariant: trap and syscall terminate trace decode,
        so no predecoded block body (or specialized terminator) can
        contain a kernel entry."""
        for program, name in ((counter_program, "counter"),
                              (threaded_program, "threaded")):
            machine, process = _spawn(program, arch, name)
            machine.run_process(process)
            assert process.block_cache
            for block in process.block_cache.values():
                ops = [instr.op for instr in block.instrs]
                assert "trap" not in ops and "syscall" not in ops
                if block.term_instr is not None:
                    # backward b/bcc (loop back-edges) and ret are the
                    # only specialized terminators
                    assert block.term_instr.op in ("b", "bcc", "ret")


class TestEngineParity:
    @pytest.mark.parametrize("arch", ARCHES)
    @pytest.mark.parametrize("name", ["counter", "threaded"])
    def test_forced_hot_parity(self, arch, name, counter_program,
                               threaded_program, monkeypatch):
        """With HOT_THRESHOLD forced to 0 every block tiers up on first
        dispatch, so the generated specializations (not tier 0) carry
        the whole run — and must match the per-step engine exactly."""
        program = counter_program if name == "counter" else threaded_program
        isa = get_isa(arch)
        base = Machine(isa, block_engine=False)
        install_program(base, program)
        ref = base.spawn_process(exe_path_for(name, arch))
        base.run_process(ref)

        monkeypatch.setattr(blocks, "HOT_THRESHOLD", 0)
        machine, process = _spawn(program, arch, name)
        machine.run_process(process)
        assert _fingerprint(process) == _fingerprint(ref)

    @pytest.mark.parametrize("quantum", [1, 3, 7])
    def test_partial_variant_parity_at_odd_quanta(self, quantum,
                                                  counter_program,
                                                  monkeypatch):
        """Tiny quanta end inside nearly every trace, exercising the
        partial (quantum-boundary) variant; results must still be
        bit-identical to per-step execution at the same quantum."""
        monkeypatch.setattr(blocks, "HOT_THRESHOLD", 0)
        isa = get_isa("x86_64")
        base = Machine(isa, quantum=quantum, block_engine=False)
        install_program(base, counter_program)
        ref = base.spawn_process(exe_path_for("counter", "x86_64"))
        base.run_process(ref)

        machine = Machine(isa, quantum=quantum)
        install_program(machine, counter_program)
        process = machine.spawn_process(exe_path_for("counter", "x86_64"))
        machine.run_process(process)
        assert _fingerprint(process) == _fingerprint(ref)


def _run_engine(program, name, arch, quantum, engine):
    """One run under the named tier; returns the full observable record
    (including any fault message and per-thread park state)."""
    isa = get_isa(arch)
    flags = {"interp": dict(block_engine=False),
             "blocks": dict(chain_engine=False),
             "chains": dict()}[engine]
    machine = Machine(isa, quantum=quantum, **flags)
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(name, arch))
    fault = None
    try:
        machine.run_process(process)
    except CpuFault as exc:
        fault = str(exc)
    return (process.stdout(), process.exit_code, process.instr_total,
            process.cycle_total, fault,
            sorted((t.pc, t.instr_count) for t in process.threads.values()))


def _force_chains(monkeypatch):
    """Tier every block up immediately and chain on second dispatch, so
    even short test programs execute almost entirely inside chains."""
    monkeypatch.setattr(blocks, "HOT_THRESHOLD", 0)
    monkeypatch.setattr(chains, "CHAIN_THRESHOLD", 1)


class TestChainParity:
    """Tier-3 chains must be observationally identical to per-step
    execution: same output, same totals, same fault text, same park
    state at every quantum boundary — loops closed in-chain, linked
    side exits, metered mid-trace resumes and faults included."""

    @pytest.mark.parametrize("arch", ARCHES)
    @pytest.mark.parametrize("name", ["counter", "threaded"])
    def test_forced_chain_parity(self, arch, name, counter_program,
                                 threaded_program, monkeypatch):
        program = counter_program if name == "counter" else threaded_program
        ref = _run_engine(program, name, arch, 64, "interp")
        _force_chains(monkeypatch)
        assert _run_engine(program, name, arch, 64, "chains") == ref

    @pytest.mark.parametrize("arch", ARCHES)
    def test_chain_actually_forms(self, arch, counter_program, monkeypatch):
        """Guards against the parity tests silently passing on tier-2:
        a chain must really be built and entered."""
        _force_chains(monkeypatch)
        machine, process = _spawn(counter_program, arch, "counter")
        machine.run_process(process)
        bound = [b for b in process.block_cache.values()
                 if b.chain is not None and b.chain is not chains.NO_CHAIN]
        assert bound, "no chain was ever linked"
        # Loop-closing webs register interior pcs as metered resume
        # points for quantum boundaries that park mid-trace.
        assert process.chain_entries

    @pytest.mark.parametrize("quantum", [1, 3, 7, 13])
    def test_chain_parity_at_odd_quanta(self, quantum, counter_program,
                                        monkeypatch):
        """Tiny quanta park inside nearly every trace: every slice ends
        in a metered arm and most resume through chain_entries."""
        ref = _run_engine(counter_program, "counter", "x86_64", quantum,
                          "interp")
        _force_chains(monkeypatch)
        got = _run_engine(counter_program, "counter", "x86_64", quantum,
                          "chains")
        assert got == ref

    @pytest.mark.parametrize("arch", ARCHES)
    @pytest.mark.parametrize("source,name", [
        ("DIVZERO", "divzero"), ("WILD", "wild")])
    def test_fault_parity_mid_chain(self, arch, source, name, monkeypatch):
        """A div-by-zero or segfault raised from inside a linked chain
        must surface the identical fault text and leave the identical
        retired-instruction state as per-step execution."""
        program = compile_source(globals()[source + "_SOURCE"], name)
        ref = _run_engine(program, name, arch, 64, "interp")
        assert ref[4] is not None            # the fault really fired
        _force_chains(monkeypatch)
        assert _run_engine(program, name, arch, 64, "chains") == ref

    def test_invalidation_drops_chains_and_entries(self, counter_program,
                                                   monkeypatch):
        """A code rewrite must discard chain entry points with the block
        cache — a stale resume point would jump into retired code."""
        _force_chains(monkeypatch)
        machine, process = _spawn(counter_program, "x86_64", "counter")
        machine.step_all(2500)
        assert not process.exited
        assert process.chain_entries
        thread = next(iter(process.threads.values()))
        process.aspace.write_code(thread.pc, b"\x06" * 16)
        assert process.block_cache == {}
        assert process.chain_entries == {}


class TestDemotion:
    def test_demoted_block_stays_tier0_and_chains_skip_it(
            self, counter_program, counter_reference_output, monkeypatch):
        """When codegen refuses a block the engine must pin it to tier 0
        (``demoted``), never retry the compile, and chains must route
        around it rather than link it."""
        monkeypatch.setattr(blocks, "HOT_THRESHOLD", 0)
        monkeypatch.setattr(chains, "CHAIN_THRESHOLD", 1)
        # Find the hottest pc under normal execution, then refuse it.
        machine, process = _spawn(counter_program, "x86_64", "counter")
        machine.run_process(process)
        target = max(process.block_cache.values(), key=lambda b: b.heat).pc

        real_codegen = blocks.codegen

        def refusing(process, block, partial=False, bind_only=False):
            if block.pc == target and not bind_only:
                return None
            return real_codegen(process, block, partial=partial,
                                bind_only=bind_only)

        monkeypatch.setattr(blocks, "codegen", refusing)
        machine, process = _spawn(counter_program, "x86_64", "counter")
        machine.run_process(process)
        demoted = process.block_cache[target]
        assert demoted.demoted
        assert demoted.fn is None
        # Correctness is unaffected: the block just runs per-step.
        assert process.stdout() == counter_reference_output
        assert process.exit_code == 0
        # No chain web may contain the demoted block.
        for block in process.block_cache.values():
            if block.chain is not None and block.chain is not chains.NO_CHAIN:
                assert target not in block.chain_web


class TestTraceCacheLRU:
    def test_global_trace_cache_is_capped(self, counter_program,
                                          counter_reference_output,
                                          monkeypatch):
        """The shared trace cache must stay bounded under churn: inserts
        past the cap evict the least-recently-used trace, and eviction
        is only ever a perf event, never a correctness one."""
        monkeypatch.setattr(blocks, "GLOBAL_TRACES_CAP", 4)
        blocks._GLOBAL_TRACES.clear()
        before = blocks.trace_cache_info()["evictions"]
        machine, process = _spawn(counter_program, "x86_64", "counter")
        machine.run_process(process)
        info = blocks.trace_cache_info()
        assert info["size"] <= 4
        assert info["evictions"] > before
        assert process.stdout() == counter_reference_output


DIVZERO_SOURCE = """
func main() -> int {
    int i; int d; int acc;
    i = 0; d = 10; acc = 0;
    while (i < 120) {
        d = d - 1;
        acc = acc + i / d;
        print(acc);
        i = i + 1;
    }
    return 0;
}
"""

WILD_SOURCE = """
func main() -> int {
    int i; int acc;
    int x;
    int *p;
    p = &x;
    i = 0; acc = 0;
    while (i < 40) {
        acc = acc + i;
        i = i + 1;
    }
    p = p + 123456789;
    *p = acc;
    return 0;
}
"""

# v1 doubles, v2 triples; identical call structure so the live-update
# policy accepts the patch at any equivalence point.
V1_SOURCE = """
func f(int x) -> int {
    int y;
    y = x * 2;
    return y;
}

func main() -> int {
    int i;
    i = 1;
    while (i <= 200) {
        print(f(i));
        i = i + 1;
    }
    return 0;
}
"""

V2_SOURCE = """
func f(int x) -> int {
    int y;
    y = x * 3;
    return y;
}

func main() -> int {
    int i;
    i = 1;
    while (i <= 200) {
        print(f(i));
        i = i + 1;
    }
    return 0;
}
"""
