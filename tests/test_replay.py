"""Flight recorder: journal format, record/replay bit-identity, fault
pinpointing, seek, and the repro-replay CLI."""

from __future__ import annotations

import pytest

from repro.apps.registry import get_app
from repro.compiler import compile_source
from repro.errors import JournalError
from repro.isa import X86_ISA
from repro.replay import (BitFlip, FlightRecorder, Journal, Replayer,
                          bisect_digest_streams, pinpoint_by_reexecution,
                          pinpoint_divergence, record_migrate,
                          record_rerandomize, record_run)
from repro.replay import journal as jn
from repro.tools import replay as replay_cli
from repro.vm import Machine

LOOP_SOURCE = """
global int acc;
func bump(int i) -> int {
    acc = acc + i;
    return acc;
}
func main() -> int {
    int i;
    i = 0;
    while (i < 400) { bump(i); i = i + 1; }
    print(acc);
    return 0;
}
"""

SENTINEL_SOURCE = """
global int sentinel;
global int acc;
func main() -> int {
    int i;
    sentinel = 12345;
    i = 0;
    while (i < 800) { acc = acc + i; i = i + 1; }
    print(sentinel);
    print(acc);
    return 0;
}
"""


@pytest.fixture(scope="module")
def loop_recording():
    return record_run(LOOP_SOURCE, "loop")


class TestJournalFormat:
    def test_roundtrip(self, loop_recording):
        journal = loop_recording.journal
        blob = journal.to_bytes()
        back = Journal.from_bytes(blob)
        assert back.header == journal.header
        assert back.events == journal.events
        assert back.to_bytes() == blob

    def test_bad_magic_rejected(self):
        with pytest.raises(JournalError):
            Journal.from_bytes(b"NOTAJRNL" + b"\x00" * 16)

    def test_bad_version_rejected(self, loop_recording):
        blob = bytearray(loop_recording.journal.to_bytes())
        blob[len(jn.MAGIC)] = 99
        with pytest.raises(JournalError):
            Journal.from_bytes(bytes(blob))

    def test_truncation_rejected(self, loop_recording):
        blob = loop_recording.journal.to_bytes()
        with pytest.raises(JournalError):
            Journal.from_bytes(blob[:len(blob) // 2])

    def test_save_load(self, loop_recording, tmp_path):
        path = str(tmp_path / "loop.jrn")
        loop_recording.journal.save(path)
        assert Journal.load(path).digest_stream() \
            == loop_recording.journal.digest_stream()

    def test_streams_and_summary(self, loop_recording):
        journal = loop_recording.journal
        assert journal.exit_code() == 0
        assert journal.instructions() == loop_recording.recorder.instructions
        summary = journal.summary()
        assert summary["sched"] > 0
        assert summary["digest"] == summary["sched"] + 1  # + final digest
        assert summary["end"] == 1


class TestRecordReplay:
    def test_same_engine_bit_identical(self, loop_recording):
        replayed = Replayer(loop_recording.journal).run()
        assert replayed.journal.digest_stream() \
            == loop_recording.journal.digest_stream()
        assert replayed.journal.sched_stream() \
            == loop_recording.journal.sched_stream()
        assert replayed.exit_code == loop_recording.exit_code

    def test_cross_engine_bit_identical(self, loop_recording):
        replayed = Replayer(loop_recording.journal, engine="interp").run()
        assert replayed.journal.digest_stream() \
            == loop_recording.journal.digest_stream()

    def test_cross_tier_matrix_bit_identical(self, loop_recording):
        """All three execution tiers are interchangeable under the
        flight recorder: a journal recorded under any one of them
        replays bit-identically under every other."""
        chain_rec = record_run(LOOP_SOURCE, "loop", engine="chains")
        assert chain_rec.journal.digest_stream() \
            == loop_recording.journal.digest_stream()
        for engine in ("interp", "blocks", "chains"):
            replayed = Replayer(chain_rec.journal, engine=engine).run()
            assert replayed.journal.digest_stream() \
                == chain_rec.journal.digest_stream()
            assert replayed.journal.sched_stream() \
                == chain_rec.journal.sched_stream()

    def test_unknown_engine_rejected(self, loop_recording):
        with pytest.raises(JournalError):
            Replayer(loop_recording.journal, engine="turbo")

    def test_clean_run_pinpoints_nothing(self, loop_recording):
        assert pinpoint_by_reexecution(loop_recording.journal,
                                       engine="interp") is None

    @pytest.mark.parametrize("app_name", ["dhrystone", "kmeans"])
    @pytest.mark.parametrize("arch", ["x86_64", "aarch64"])
    def test_benchmarks_both_isas(self, app_name, arch):
        source = get_app(app_name).source("small")
        recorded = record_run(source, app_name, arch=arch, digest_every=8)
        assert recorded.exit_code == 0
        replayed = Replayer(recorded.journal, engine="interp").run()
        assert replayed.journal.digest_stream() \
            == recorded.journal.digest_stream()

    def test_migration_replays_across_isa_boundary(self):
        recorded = record_migrate(LOOP_SOURCE, "loop", src_arch="x86_64",
                                  dst_arch="aarch64", warmup=3000)
        assert recorded.exit_code == 0
        assert recorded.journal.of_kind(jn.EV_MIGRATE)
        for engine in (None, "interp"):
            replayed = Replayer(recorded.journal, engine=engine).run()
            assert replayed.journal.digest_stream() \
                == recorded.journal.digest_stream()

    def test_rerandomize_replays_with_identical_rng(self):
        recorded = record_rerandomize(LOOP_SOURCE, "loop", interval=2000,
                                      seed=7)
        assert recorded.exit_code == 0
        assert recorded.journal.rng_stream()  # draws were journaled
        replayed = Replayer(recorded.journal).run()
        assert replayed.journal.rng_stream() \
            == recorded.journal.rng_stream()
        assert replayed.journal.digest_stream() \
            == recorded.journal.digest_stream()

    def test_seek_stops_at_instruction(self, loop_recording):
        result = Replayer(loop_recording.journal).run(stop_at_instr=2000)
        assert result.stopped
        assert result.snapshot is not None
        (_, proc), = [(k, v) for k, v in result.snapshot.items()]
        assert proc["instr_total"] >= 2000
        assert not proc["exited"]

    def test_syscalls_journaled(self, loop_recording):
        stream = loop_recording.journal.syscall_stream()
        assert stream  # at least print + exit
        numbers = [entry[2] for entry in stream]
        assert len(numbers) == len(stream)


class TestBisect:
    def test_identical_streams(self):
        stream = [b"a", b"b", b"c"]
        assert bisect_digest_streams(stream, list(stream)) is None

    def test_prefix_is_not_divergence(self):
        assert bisect_digest_streams([b"a", b"b"], [b"a", b"b", b"c"]) is None
        assert bisect_digest_streams([], [b"a"]) is None

    def test_finds_first_difference(self):
        a = [b"a", b"b", b"c", b"d"]
        b = [b"a", b"x", b"y", b"z"]
        assert bisect_digest_streams(a, b) == 1

    def test_minimal_even_if_streams_reconverge(self):
        a = [b"a", b"b", b"c", b"d", b"e"]
        b = [b"a", b"X", b"c", b"Y", b"e"]
        assert bisect_digest_streams(a, b) == 1

    def test_difference_at_zero_and_end(self):
        assert bisect_digest_streams([b"x"], [b"y"]) == 0
        a = [bytes([i]) for i in range(100)]
        b = list(a)
        b[99] = b"zz"
        assert bisect_digest_streams(a, b) == 99


class TestFaultInjection:
    def test_pinpoints_exact_quantum_and_address(self):
        program = compile_source(SENTINEL_SOURCE, "faulty")
        addr = program.binary("x86_64").symtab.address_of("sentinel")
        good = record_run(SENTINEL_SOURCE, "faulty")
        bad = record_run(SENTINEL_SOURCE, "faulty",
                         fault=BitFlip(at_slice=40, addr=addr, bit=3))
        report = pinpoint_divergence(good.journal, bad.journal)
        assert report is not None
        # digest_every=1: the digest right after the faulted slice
        # catches it, so the index is exactly the fault slice - 1
        # (digest #k follows slice k+1).
        assert report.digest_index == 40 - 1
        assert report.first_addr == addr
        assert report.mem_diffs[0][1] ^ report.mem_diffs[0][2] == 1 << 3
        assert not report.reg_diffs
        assert f"{addr:#x}" in report.format()

    def test_faulty_journal_reproduces_itself(self):
        program = compile_source(SENTINEL_SOURCE, "faulty")
        addr = program.binary("x86_64").symtab.address_of("sentinel")
        bad = record_run(SENTINEL_SOURCE, "faulty",
                         fault=BitFlip(at_slice=40, addr=addr, bit=3))
        assert bad.journal.of_kind(jn.EV_FAULT)
        replayed = Replayer(bad.journal).run()
        assert replayed.journal.digest_stream() \
            == bad.journal.digest_stream()

    def test_faulty_journal_replays_on_every_tier(self):
        """A bit-flip mid-run perturbs control flow (different branch
        outcomes, different park points); every tier must still follow
        the perturbed execution digest-for-digest."""
        program = compile_source(SENTINEL_SOURCE, "faulty")
        addr = program.binary("x86_64").symtab.address_of("sentinel")
        bad = record_run(SENTINEL_SOURCE, "faulty", engine="chains",
                         fault=BitFlip(at_slice=40, addr=addr, bit=3))
        for engine in ("interp", "blocks", "chains"):
            replayed = Replayer(bad.journal, engine=engine).run()
            assert replayed.journal.digest_stream() \
                == bad.journal.digest_stream()


class TestZeroOverheadOff:
    def test_machine_defaults_to_no_recorder(self):
        assert Machine(X86_ISA).recorder is None

    def test_attach_is_exclusive(self):
        machine = Machine(X86_ISA)
        FlightRecorder().attach(machine)
        with pytest.raises(Exception):
            FlightRecorder().attach(machine)


class TestReplayCli:
    @pytest.fixture(scope="class")
    def source_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("src") / "loop.dc"
        path.write_text(LOOP_SOURCE)
        return str(path)

    def test_record_replay_show_seek(self, source_file, tmp_path, capsys):
        journal = str(tmp_path / "loop.jrn")
        assert replay_cli.main(["record", source_file, "-o", journal]) == 0
        assert replay_cli.main(["replay", journal,
                                "--engine", "interp"]) == 0
        assert replay_cli.main(["show", journal]) == 0
        assert replay_cli.main(["seek", journal, "--instr", "1000"]) == 0
        out = capsys.readouterr().out
        assert "replay OK" in out
        assert "pc=" in out

    def test_diff_pinpoints_fault(self, source_file, tmp_path, capsys):
        program = compile_source(LOOP_SOURCE, "loop")
        addr = program.binary("x86_64").symtab.address_of("acc")
        good = str(tmp_path / "good.jrn")
        bad = str(tmp_path / "bad.jrn")
        assert replay_cli.main(["record", source_file, "-o", good]) == 0
        assert replay_cli.main(["record", source_file, "-o", bad,
                                "--fault-slice", "20",
                                "--fault-addr", hex(addr)]) == 0
        assert replay_cli.main(["diff", good, bad]) == 1
        out = capsys.readouterr().out
        assert "first divergence" in out
        assert hex(addr) in out

    def test_diff_identical_journals(self, source_file, tmp_path, capsys):
        a = str(tmp_path / "a.jrn")
        b = str(tmp_path / "b.jrn")
        assert replay_cli.main(["record", source_file, "-o", a]) == 0
        assert replay_cli.main(["record", source_file, "-o", b]) == 0
        assert replay_cli.main(["diff", a, b]) == 0
        assert "journals agree" in capsys.readouterr().out

    def test_record_migrate_scenario(self, source_file, tmp_path):
        journal = str(tmp_path / "mig.jrn")
        assert replay_cli.main(["record", source_file, "-o", journal,
                                "--scenario", "migrate",
                                "--warmup", "3000"]) == 0
        assert replay_cli.main(["replay", journal]) == 0

    def test_unknown_app_errors(self, tmp_path, capsys):
        # unified CLI contract: typed errors exit 1 (argparse usage
        # errors keep exit 2)
        assert replay_cli.main(["record", "no-such-app",
                                "-o", str(tmp_path / "x.jrn")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-replay: error: ")
