"""Chaos engine + transactional migration tests.

Covers the fault taxonomy (spec round-trip, injector determinism), the
instrumented layers (network strict mode + fault-before-copy ordering,
page-server death, mid-ship faults + orphan GC), the transactional
pipeline (retry/backoff, integrity verification, pre-copy fallback,
rollback-to-source), the scheduler's supervisor loop, and record/replay
bit-identity of faulted runs.
"""

from __future__ import annotations

import pytest

from repro.apps.registry import get_app
from repro.chaos import BP, KINDS, FaultInjector, FaultPlan
from repro.chaos.harness import ChaosHarness, memory_digest, \
    settle_lazy_pages
from repro.cluster import EnergyMeter, EventQueue, Network, SimNode
from repro.cluster.jobs import JobTemplate
from repro.cluster.scheduler import EvictionScheduler
from repro.core.costs import ethernet_link, rpi_profile, xeon_profile
from repro.core.migration import MigrationPipeline
from repro.criu.lazy import PageServer
from repro.errors import (ClusterError, LazyPageError, LinkDropFault,
                          MigrationRollback, PageServerDead, ReproError,
                          StoreError)
from repro.isa import get_isa
from repro.store import CheckpointStore
from repro.store.transfer import plan_transfer, ship
from repro.vm import Machine


@pytest.fixture(scope="module")
def kmeans_program():
    return get_app("kmeans").compile("small")


@pytest.fixture(scope="module")
def harness():
    return ChaosHarness("kmeans")


def make_pipeline(program, injector=None, **kw):
    return MigrationPipeline(Machine(get_isa("x86_64"), name="src"),
                             Machine(get_isa("aarch64"), name="dst"),
                             program, injector=injector, **kw)


# -- fault plans ---------------------------------------------------------------


class TestFaultPlan:
    def test_spec_round_trip(self):
        plan = FaultPlan(42, drop=0.3, pskill=0.05, corrupt=1.0)
        spec = plan.to_spec()
        assert spec == "seed=42,drop=3000,corrupt=10000,pskill=500"
        again = FaultPlan.from_spec(spec)
        assert again.seed == 42
        assert again.bp == plan.bp
        assert again.to_spec() == spec

    def test_zero_kinds_omitted(self):
        assert FaultPlan(7).to_spec() == "seed=7"
        assert not FaultPlan(7).any_faults()
        assert FaultPlan(7, latency=0.5).any_faults()

    def test_bad_specs_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan.from_spec("seed=1,bogus=10")
        with pytest.raises(ReproError):
            FaultPlan.from_spec("drop=notanumber")
        with pytest.raises(ReproError):
            FaultPlan.from_spec(f"drop={BP + 1}")
        with pytest.raises(ReproError):
            FaultPlan(0, drop=1.5)

    def test_all_kinds_have_constructor_args(self):
        plan = FaultPlan(0, **{kind: 0.25 for kind in KINDS})
        assert all(plan.bp[kind] == BP // 4 for kind in KINDS)


class TestInjectorDeterminism:
    def drive(self, injector):
        fired = []
        for i in range(20):
            try:
                injector.link_fault("a", "b", site="scp")
            except LinkDropFault:
                pass
            fired.append(injector.ship_faults(16))
        return fired, [repr(f) for f in injector.fired]

    def test_same_seed_same_faults(self):
        plan = FaultPlan(9, drop=0.3, partition=0.2, latency=0.4,
                         corrupt=0.3)
        a = self.drive(FaultInjector(plan))
        b = self.drive(FaultInjector(plan))
        assert a == b

    def test_different_seed_diverges(self):
        kw = dict(drop=0.3, partition=0.2, latency=0.4, corrupt=0.3)
        a = self.drive(FaultInjector(FaultPlan(1, **kw)))
        b = self.drive(FaultInjector(FaultPlan(2, **kw)))
        assert a != b

    def test_zero_probability_draws_nothing(self):
        import random
        injector = FaultInjector(FaultPlan(3))
        assert injector.link_fault("a", "b") == 1.0
        assert injector.ship_faults(100) == (None, None)
        # Zero-probability kinds consume no RNG state at all.
        assert injector.rng._rng.getstate() == random.Random(3).getstate()
        assert injector.fired == []


# -- network satellites --------------------------------------------------------


class TestNetworkStrict:
    def test_strict_mode_raises_for_unregistered_pair(self):
        network = Network(strict=True)
        network.connect("xeon", "rpi", ethernet_link())
        assert network.link_between("xeon", "rpi") is not None
        with pytest.raises(ClusterError, match="no link registered"):
            network.link_between("xeon", "ghost")

    def test_per_call_strict_override(self):
        network = Network()          # lax by default (back-compat)
        assert network.link_between("a", "b") is network.default_link
        with pytest.raises(ClusterError):
            network.link_between("a", "b", strict=True)

    def test_pipeline_uses_strict_lookup(self, kmeans_program):
        network = Network()
        with pytest.raises(ClusterError, match="no link registered"):
            MigrationPipeline(Machine(get_isa("x86_64"), name="src"),
                              Machine(get_isa("aarch64"), name="dst"),
                              kmeans_program, network=network)

    def test_scp_consults_link_before_copying(self):
        # Fault/partition decisions land *before* any bytes move: a
        # failed scp must leave no partial subtree at the destination.
        network = Network(injector=FaultInjector(FaultPlan(0, drop=1.0)))
        src = Machine(get_isa("x86_64"), name="a")
        dst = Machine(get_isa("x86_64"), name="b")
        src.tmpfs.write("/images/1/pages.img", b"x" * 64)
        src.tmpfs.write("/images/1/core.img", b"y" * 32)
        with pytest.raises(LinkDropFault):
            network.scp(src, dst, "/images/1")
        assert dst.tmpfs.listdir("/images/1") == []

    def test_partitioned_scp_raises_until_healed(self):
        network = Network()
        src = Machine(get_isa("x86_64"), name="a")
        dst = Machine(get_isa("x86_64"), name="b")
        src.tmpfs.write("/d/f", b"data")
        network.partition("a", "b")
        with pytest.raises(LinkDropFault):
            network.scp(src, dst, "/d")
        assert dst.tmpfs.listdir("/d") == []
        network.heal("a", "b")
        nbytes, seconds = network.scp(src, dst, "/d")
        assert nbytes == 4 and seconds > 0
        assert dst.tmpfs.read("/d/f") == b"data"


# -- page-server hardening -----------------------------------------------------


class TestPageServerFailure:
    def test_scheduled_death_raises_typed_error(self):
        server = PageServer({0x1000: b"\x01" * 4096})
        server.schedule_death(after_requests=1)
        assert server.fetch(0x1000) is not None
        with pytest.raises(PageServerDead):
            server.fetch(0x2000)

    def test_kill_is_immediate(self):
        server = PageServer({0x1000: b"\x01" * 4096})
        server.kill()
        with pytest.raises(PageServerDead):
            server.fetch(0x1000)

    def test_strict_fetch_distinguishes_unowned_page(self):
        server = PageServer({0x1000: b"\x01" * 4096})
        # Default (lax) keeps the zero-fill contract.
        assert server.fetch(0x9000) is None
        with pytest.raises(LazyPageError) as err:
            server.fetch(0x9000, strict=True)
        assert not isinstance(err.value, PageServerDead)
        # PageServerDead is a LazyPageError subtype: one except clause
        # catches both, isinstance distinguishes them.
        assert issubclass(PageServerDead, LazyPageError)


# -- mid-ship faults + orphan GC (satellite) -----------------------------------


def _stores_with_checkpoint(kmeans_program):
    pipeline = make_pipeline(kmeans_program, use_store=True)
    process = pipeline.start()
    pipeline.src_machine.step_all(5000)
    result = pipeline.migrate(process)
    return pipeline.src_store, result


class TestAbortedShipGc:
    def test_dropped_ship_leaves_only_orphans(self, kmeans_program):
        src_store, _ = _stores_with_checkpoint(kmeans_program)
        cid = src_store.checkpoint_ids()[0]
        dst_store = CheckpointStore()
        injector = FaultInjector(FaultPlan(5, drop=1.0))
        plan = plan_transfer(src_store, dst_store, cid)
        with pytest.raises(LinkDropFault):
            ship(src_store, dst_store, plan, injector=injector)
        # Chunks that landed before the drop carry no references (their
        # manifest never registered) — exactly what gc() reclaims.
        assert cid not in dst_store
        orphans = dst_store.chunks.orphans()
        assert len(orphans) == len(dst_store.chunks)
        assert dst_store.verify() == []
        chunks, _freed = dst_store.gc()
        assert chunks == len(orphans)
        assert dst_store.chunks.orphans() == []
        assert len(dst_store.chunks) == 0

    def test_retry_after_drop_ships_strictly_less(self, kmeans_program):
        src_store, _ = _stores_with_checkpoint(kmeans_program)
        cid = src_store.checkpoint_ids()[0]
        dst_store = CheckpointStore()
        injector = FaultInjector(FaultPlan(5, drop=1.0))
        first = plan_transfer(src_store, dst_store, cid)
        with pytest.raises(LinkDropFault):
            ship(src_store, dst_store, first, injector=injector)
        # Landed chunks survive for the retry: the new plan is smaller,
        # and a fault-free retry completes with zero orphans.
        retry = plan_transfer(src_store, dst_store, cid)
        if len(dst_store.chunks):
            assert len(retry.chunks_needed) < len(first.chunks_needed)
        ship(src_store, dst_store, retry)
        assert cid in dst_store
        assert dst_store.chunks.orphans() == []
        assert dst_store.verify() == []

    def test_corrupted_chunk_rejected_on_arrival(self, kmeans_program):
        src_store, _ = _stores_with_checkpoint(kmeans_program)
        cid = src_store.checkpoint_ids()[0]
        dst_store = CheckpointStore()
        injector = FaultInjector(FaultPlan(2, corrupt=1.0))
        plan = plan_transfer(src_store, dst_store, cid)
        # Either detector is fine: a flipped byte can break the codec
        # framing (decompress error) or survive it (digest mismatch).
        with pytest.raises(StoreError,
                           match="does not (match|decompress)"):
            ship(src_store, dst_store, plan, injector=injector)
        # The poisoned payload never entered the store.
        assert dst_store.verify() == []


# -- the transactional pipeline ------------------------------------------------


class TestTransactionalMigrate:
    def test_fault_free_stage_keys_unchanged(self, kmeans_program):
        # No injector → no txn bookkeeping, no "retries" key, no
        # "txn" stat. The verify stage (the restore guard) runs on
        # every migration, fault-free or not.
        result = make_pipeline(kmeans_program).run_and_migrate(5000)
        assert set(result.stage_seconds) == {"checkpoint", "recode",
                                             "scp", "verify", "restore"}
        assert "txn" not in result.stats
        assert result.stats["verify"]["repaired_pages"] == 0

    def test_retry_then_success(self, harness, kmeans_program):
        # Seed 1 drops the scp once; the retry lands it.
        injector = FaultInjector(FaultPlan(1, drop=0.4))
        pipeline = make_pipeline(kmeans_program, injector=injector,
                                 retry_budget=4)
        result = pipeline.run_and_migrate(5000)
        txn = result.stats["txn"]
        assert txn["attempts"]["scp"] == 2
        assert not txn["rolled_back"]
        assert result.stage_seconds["retries"] == pytest.approx(
            pipeline.backoff_base_s)
        assert result.combined_output() == harness.expected_output

    def test_backoff_is_exponential(self, kmeans_program):
        # partition=1.0 swallows every attempt: 3 attempts, 2 backoffs
        # (base * 1, base * 2), then rollback.
        injector = FaultInjector(FaultPlan(1, partition=1.0))
        pipeline = make_pipeline(kmeans_program, injector=injector,
                                 retry_budget=3, backoff_base_s=0.1)
        process = pipeline.start()
        pipeline.src_machine.step_all(5000)
        with pytest.raises(MigrationRollback) as err:
            pipeline.migrate(process)
        assert err.value.txn["backoff_seconds"] == pytest.approx(0.3)

    def test_rollback_resumes_source(self, harness):
        trial = harness.run_trial(FaultPlan(1, partition=1.0))
        assert trial.outcome == "rolled-back"
        assert trial.ok, trial.detail

    def test_rollback_exception_carries_stage(self, kmeans_program):
        injector = FaultInjector(FaultPlan(1, partition=1.0))
        pipeline = make_pipeline(kmeans_program, injector=injector)
        process = pipeline.start()
        pipeline.src_machine.step_all(5000)
        with pytest.raises(MigrationRollback) as err:
            pipeline.migrate(process)
        assert err.value.stage == "scp"
        assert err.value.attempts == 3
        assert err.value.txn["rolled_back"]
        # Source is runnable again; destination holds nothing.
        assert not process.stopped and not process.exited
        assert pipeline.dst_machine.tmpfs.listdir(
            f"/images/{process.pid}") == []

    def test_corruption_caught_and_retried(self, harness, kmeans_program):
        injector = FaultInjector(FaultPlan(0, corrupt=1.0))
        pipeline = make_pipeline(kmeans_program, injector=injector,
                                 retry_budget=3)
        process = pipeline.start()
        pipeline.src_machine.step_all(5000)
        # corrupt=1.0 poisons every attempt; the integrity check must
        # catch each one and the budget must end in rollback, never in
        # a restore from corrupt images.
        with pytest.raises(MigrationRollback) as err:
            pipeline.migrate(process)
        assert any("digest" in e or "unreadable" in e
                   for e in err.value.txn["errors"])

    def test_store_retry_leaves_no_orphans(self, harness, kmeans_program):
        injector = FaultInjector(FaultPlan(1, drop=0.4))
        pipeline = make_pipeline(kmeans_program, injector=injector,
                                 use_store=True, retry_budget=4)
        result = pipeline.run_and_migrate(5000)
        txn = result.stats["txn"]
        assert txn["attempts"]["ship"] > 1
        assert pipeline.dst_store.chunks.orphans() == []
        assert pipeline.dst_store.verify() == []
        assert result.combined_output() == harness.expected_output

    def test_store_rollback_sweeps_destination(self, kmeans_program):
        harness = ChaosHarness("kmeans", use_store=True)
        trial = harness.run_trial(FaultPlan(2, partition=1.0))
        assert trial.outcome == "rolled-back"
        assert trial.ok, trial.detail


class TestPrecopyFallback:
    def test_page_server_death_degrades_to_precopy(self, kmeans_program):
        # pskill=1.0 always arms the server to die mid post-copy; the
        # migration must still complete with byte-identical settled
        # memory via the pre-copy fallback.
        harness = ChaosHarness("kmeans", lazy=True)
        trial = harness.run_trial(FaultPlan(1, pskill=1.0))
        assert trial.outcome == "completed"
        assert trial.ok, trial.detail
        assert trial.fallback
        assert trial.faults.get("pskill") == 1
        assert trial.faults.get("fallback") == 1

    def test_fallback_memory_matches_lazy_reference(self, kmeans_program):
        reference = make_pipeline(kmeans_program).run_and_migrate(
            5000, lazy=True)
        settle_lazy_pages(reference.process, reference.page_server)
        injector = FaultInjector(FaultPlan(1, pskill=1.0))
        pipeline = make_pipeline(kmeans_program, injector=injector)
        result = pipeline.run_and_migrate(5000, lazy=True)
        assert result.stats["txn"]["fallback"]
        settle_lazy_pages(result.process, result.page_server)
        assert memory_digest(result.process) \
            == memory_digest(reference.process)
        assert result.combined_output() == reference.combined_output()


# -- scheduler supervisor loop -------------------------------------------------


def _template():
    return JobTemplate(name="t", instructions=2e8,
                       cycles_per_instr={"x86_64": 1.0, "aarch64": 1.6},
                       migration_seconds=0.5)


def _run_schedule(injector, duration=600.0, pis=1):
    queue = EventQueue()
    server = SimNode(xeon_profile(), name="xeon", job_slots=7)
    pi_nodes = [SimNode(rpi_profile(), name=f"rpi{i}", job_slots=3)
                for i in range(pis)]
    meter = EnergyMeter([server] + pi_nodes)
    scheduler = EvictionScheduler(queue, server, pi_nodes, _template(),
                                  meter, injector=injector,
                                  retry_backoff_s=5.0)
    scheduler.start()
    queue.run_until(duration)
    return scheduler


class TestSchedulerSupervisor:
    def test_no_injector_identical_to_baseline(self):
        plain = _run_schedule(None)
        zero = _run_schedule(FaultInjector(FaultPlan(0)))
        assert (plain.completed, plain.evictions) \
            == (zero.completed, zero.evictions)
        assert zero.failed_evictions == 0 and not zero.unhealthy

    def test_certain_failure_marks_node_unhealthy(self):
        scheduler = _run_schedule(FaultInjector(FaultPlan(0, drop=1.0)))
        assert scheduler.evictions == 0
        assert scheduler.failed_evictions >= scheduler.max_node_failures
        assert scheduler.node_failures["rpi0"] \
            >= scheduler.max_node_failures
        # Jobs still complete on the server: failed evictions re-queue,
        # they do not vanish.
        assert scheduler.completed > 0

    def test_flaky_node_requeues_and_recovers(self):
        flaky = _run_schedule(FaultInjector(FaultPlan(3, drop=0.5)))
        healthy = _run_schedule(None)
        assert flaky.failed_evictions > 0
        assert flaky.evictions > 0          # some migrations land
        assert flaky.completed > 0
        # Chaos can only hurt throughput, never help it.
        assert flaky.completed <= healthy.completed

    def test_probe_reopens_unhealthy_node(self):
        # Failures trip the breaker; after the probe delay the node is
        # eligible again (half-open) — with drop=1.0 it re-trips, so it
        # must be unhealthy at *some* point and probed after.
        queue = EventQueue()
        server = SimNode(xeon_profile(), name="xeon", job_slots=7)
        pi = SimNode(rpi_profile(), name="rpi0", job_slots=3)
        meter = EnergyMeter([server, pi])
        scheduler = EvictionScheduler(
            queue, server, [pi], _template(), meter,
            injector=FaultInjector(FaultPlan(0, drop=1.0)),
            max_node_failures=2, retry_backoff_s=10.0)
        scheduler.start()
        assert "rpi0" in scheduler.unhealthy
        failures_before = scheduler.node_failures["rpi0"]
        queue.run_until(30.0)
        # The probe fired, evictions were attempted again and failed
        # again: the failure count grew past the first trip point.
        assert scheduler.node_failures["rpi0"] > failures_before


# -- record/replay bit-identity ------------------------------------------------


class TestChaosReplay:
    def _streams(self, result):
        from repro.replay import journal as jn
        events = result.journal.events
        return (result.journal.digest_stream(),
                [(e["label"], e["a"]) for e in events
                 if e["kind"] == jn.EV_RNG],
                [(e["label"], e["a"], e["b"]) for e in events
                 if e["kind"] == jn.EV_FAULT])

    def _round_trip(self, **kw):
        from repro.replay.engine import Replayer, record_migrate
        source = get_app("kmeans").source("small")
        recorded = record_migrate(source, "kmeans", digest_every=8, **kw)
        replayed = Replayer(recorded.journal).run()
        assert self._streams(recorded) == self._streams(replayed)
        assert recorded.exit_code == replayed.exit_code
        return recorded

    def test_faulted_migration_replays_bit_identically(self):
        recorded = self._round_trip(chaos="seed=1,drop=4000", retries=4)
        assert recorded.journal.header["chaos"] == "seed=1,drop=4000"
        faults = self._streams(recorded)[2]
        assert ("chaos:drop@scp", 0, 0) in faults

    def test_rollback_replays_bit_identically(self):
        recorded = self._round_trip(chaos="seed=1,partition=10000")
        faults = self._streams(recorded)[2]
        assert any(label.startswith("chaos:rollback@")
                   for label, _a, _b in faults)
        from repro.replay import journal as jn
        migs = [e for e in recorded.journal.events
                if e["kind"] == jn.EV_MIGRATE]
        assert migs and migs[0]["label"].startswith("rolled-back@")

    def test_pskill_fallback_replays_bit_identically(self):
        recorded = self._round_trip(chaos="seed=1,pskill=10000",
                                    lazy=True)
        faults = self._streams(recorded)[2]
        labels = [label for label, _a, _b in faults]
        assert "chaos:pskill@page-server" in labels
        assert "chaos:fallback@page-server" in labels

    def test_plain_journal_has_no_chaos_fields(self):
        recorded = self._round_trip()
        assert "chaos" not in recorded.journal.header
        assert self._streams(recorded)[2] == []
