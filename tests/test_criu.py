"""Tests for the CRIU-style checkpoint/restore substrate and CRIT."""

import pytest

from repro.core.migration import exe_path_for, install_program
from repro.core.runtime import DapperRuntime
from repro.criu import crit
from repro.criu.dump import dump_process
from repro.criu.images import (CoreImage, FilesImage, ImageSet,
                               InventoryImage, MmImage, PagemapEntry,
                               PagemapImage)
from repro.criu.lazy import dump_process_lazy, restore_process_lazy
from repro.criu.restore import restore_process
from repro.errors import (CheckpointError, ImageFormatError, RestoreError)
from repro.isa import X86_ISA
from repro.mem.paging import PAGE_SIZE, page_align_down
from repro.vm import Machine


@pytest.fixture
def parked(counter_program):
    """A counter process parked at an equivalence point, SIGSTOPped."""
    machine = Machine(X86_ISA, name="src")
    install_program(machine, counter_program)
    process = machine.spawn_process(exe_path_for("counter", "x86_64"))
    machine.step_all(2500)
    assert not process.exited
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    return machine, process, runtime


class TestImageEncoding:
    def test_inventory_roundtrip(self):
        inv = InventoryImage(101, "x86_64", "app", [1, 2, 3], lazy=True)
        copy = InventoryImage.from_bytes(inv.to_bytes())
        assert (copy.pid, copy.arch, copy.tids, copy.lazy) == \
            (101, "x86_64", [1, 2, 3], True)

    def test_core_roundtrip(self):
        core = CoreImage(2, "aarch64", 0x400100, -1, 0x20000000, "trapped",
                         {0: -5, 31: 0x7FFE0000})
        copy = CoreImage.from_bytes(core.to_bytes())
        assert copy.regs == core.regs
        assert copy.pc == 0x400100
        assert copy.flags == -1

    def test_bad_magic_rejected(self):
        core = CoreImage(1, "x86_64", 0, 0, 0, "running", {})
        blob = core.to_bytes()
        with pytest.raises(ImageFormatError):
            InventoryImage.from_bytes(blob)

    def test_pagemap_page_addresses(self):
        pm = PagemapImage([PagemapEntry(0x1000, 2), PagemapEntry(0x8000, 1)])
        assert pm.total_pages() == 3
        assert pm.page_addresses() == [0x1000, 0x2000, 0x8000]

    def test_files_roundtrip(self):
        files = FilesImage("/bin/app.x86_64", "x86_64")
        copy = FilesImage.from_bytes(files.to_bytes())
        assert copy.exe_path == "/bin/app.x86_64"


class TestDump:
    def test_requires_sigstop(self, counter_program):
        machine = Machine(X86_ISA)
        install_program(machine, counter_program)
        process = machine.spawn_process(exe_path_for("counter", "x86_64"))
        machine.step_all(100)
        with pytest.raises(CheckpointError):
            dump_process(process)

    def test_dump_contents(self, parked):
        _machine, process, runtime = parked
        images = runtime.checkpoint()
        names = set(images.files)
        assert {"inventory.img", "mm.img", "files.img", "pagemap.img",
                "pages-1.img"} <= names
        assert f"core-{process.threads[1].tid}.img" in names
        inv = images.inventory()
        assert inv.arch == "x86_64"
        assert inv.tids == [1]

    def test_code_pages_limited_to_execution_context(self, parked):
        _machine, process, runtime = parked
        images = runtime.checkpoint()
        text_vma = process.aspace.vma_by_name(".text")
        code_pages = [e for e in images.pagemap().entries
                      if text_vma.start <= e.vaddr < text_vma.end]
        total_code_pages = sum(e.nr_pages for e in code_pages)
        # Paper: "one or two code pages pointed by the program counter".
        assert 1 <= total_code_pages <= 2
        pc_page = page_align_down(process.threads[1].pc)
        dumped = set(images.pagemap().page_addresses())
        assert pc_page in dumped

    def test_data_and_stack_pages_dumped(self, parked):
        _machine, process, runtime = parked
        images = runtime.checkpoint()
        dumped = set(images.pagemap().page_addresses())
        stack_vma = process.aspace.vma_by_name("stack:1")
        assert any(stack_vma.start <= a < stack_vma.end for a in dumped)
        data_vma = process.aspace.vma_by_name(".data")
        assert any(data_vma.start <= a < data_vma.end for a in dumped)

    def test_page_at_lookup(self, parked):
        _machine, process, runtime = parked
        images = runtime.checkpoint()
        entry = images.pagemap().entries[0]
        page = images.page_at(entry.vaddr)
        assert page is not None and len(page) == PAGE_SIZE
        assert images.page_at(0xDEAD000) is None

    def test_dead_process_rejected(self, parked):
        machine, process, _runtime = parked
        machine.kill(process)
        with pytest.raises(CheckpointError):
            dump_process(process, require_stopped=False)


class TestRestoreSameIsa:
    def test_restore_continues_to_same_output(self, parked,
                                              counter_reference_output):
        machine, process, runtime = parked
        before = process.stdout()
        images = runtime.checkpoint()
        runtime.kill_source()
        restored = restore_process(machine, images)
        machine.run_process(restored)
        assert before + restored.stdout() == counter_reference_output
        assert restored.exit_code == 0

    def test_restore_on_wrong_arch_rejected(self, parked):
        _machine, _process, runtime = parked
        images = runtime.checkpoint()
        from repro.isa import ARM_ISA
        wrong = Machine(ARM_ISA, name="wrong")
        with pytest.raises(RestoreError):
            restore_process(wrong, images)

    def test_restore_missing_binary_rejected(self, parked):
        _machine, _process, runtime = parked
        images = runtime.checkpoint()
        empty = Machine(X86_ISA, name="empty")
        with pytest.raises(RestoreError):
            restore_process(empty, images)

    def test_tmpfs_save_load_roundtrip(self, parked):
        machine, _process, runtime = parked
        images = runtime.checkpoint()
        images.save(machine.tmpfs, "/images/ckpt")
        loaded = ImageSet.load(machine.tmpfs, "/images/ckpt")
        assert loaded.files.keys() == images.files.keys()
        assert loaded.pages() == images.pages()


class TestCrit:
    def test_decode_all_images(self, parked):
        _machine, _process, runtime = parked
        images = runtime.checkpoint()
        decoded = crit.decode_set(images)
        assert decoded["inventory.img"]["kind"] == "inventory"
        assert decoded["mm.img"]["kind"] == "mm"
        assert decoded["pages-1.img"]["kind"] == "raw_pages"
        core_name = next(n for n in decoded if n.startswith("core-"))
        assert "regs" in decoded[core_name]

    def test_roundtrip_lossless(self, parked):
        _machine, _process, runtime = parked
        images = runtime.checkpoint()
        rebuilt = crit.roundtrip(images)
        for name in images.files:
            # Decoded views must agree (byte-level equality also holds for
            # our canonical encoder, but semantic equality is the contract).
            assert crit.decode_image(name, rebuilt.files[name]) == \
                crit.decode_image(name, images.files[name])

    def test_show_is_json(self, parked):
        import json
        _machine, _process, runtime = parked
        images = runtime.checkpoint()
        parsed = json.loads(crit.show(images))
        assert "inventory.img" in parsed

    def test_unknown_filename_rejected(self):
        with pytest.raises(ImageFormatError):
            crit.decode_image("bogus.img", b"")

    def test_mm_vmas_decoded(self, parked):
        _machine, _process, runtime = parked
        images = runtime.checkpoint()
        mm = crit.decode_image("mm.img", images.files["mm.img"])
        names = {v["name"] for v in mm["vmas"]}
        assert ".text" in names and "stack:1" in names


class TestLazy:
    def test_lazy_dump_leaves_pages_behind(self, parked):
        _machine, _process, runtime = parked
        images, server = runtime.checkpoint_lazy()
        assert images.inventory().lazy
        full = dump_process(runtime.process, require_stopped=False)
        assert images.total_bytes() < full.total_bytes()
        assert server.remaining_pages() > 0

    def test_lazy_restore_faults_pages_in(self, parked,
                                          counter_reference_output):
        machine, process, runtime = parked
        before = process.stdout()
        images, server = runtime.checkpoint_lazy()
        runtime.kill_source()
        restored = restore_process_lazy(machine, images, server)
        machine.run_process(restored)
        assert before + restored.stdout() == counter_reference_output
        assert server.requests > 0
        assert server.pages_served > 0
        assert server.log

    def test_stack_pages_dumped_eagerly(self, parked):
        _machine, process, runtime = parked
        images, _server = runtime.checkpoint_lazy()
        dumped = set(images.pagemap().page_addresses())
        stack_vma = process.aspace.vma_by_name("stack:1")
        fp_page = page_align_down(process.threads[1].fp)
        assert stack_vma.start <= fp_page < stack_vma.end
        assert fp_page in dumped
