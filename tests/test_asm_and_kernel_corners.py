"""Corner-case tests: the assembler block layer, scheduler determinism,
and page-server edge behaviour."""

import pytest

from repro.compiler import compile_source
from repro.core.migration import exe_path_for, install_program
from repro.criu.lazy import PageServer
from repro.errors import EncodingError
from repro.isa import ARM_ISA, X86_ISA, Instruction
from repro.isa.asm import AsmBlock, movi_symbol
from repro.mem.paging import PAGE_SIZE
from repro.vm import Machine


class TestAsmBlock:
    def _block(self, isa):
        loop = Instruction("addi", rd=0, rn=0, imm=1)
        loop.label = "top"
        return AsmBlock(isa, [
            Instruction("movi", rd=0, imm=0),
            loop,
            Instruction("cmpi", rn=0, imm=5),
            Instruction("bcc", cond="lt", target="top"),
            Instruction("ret"),
        ])

    @pytest.mark.parametrize("isa", [X86_ISA, ARM_ISA])
    def test_labels_resolve(self, isa):
        block = self._block(isa)
        encoded = block.encode(0x1000)
        instrs = isa.disassemble(encoded, 0x1000)
        branch = next(i for i in instrs if i.op == "bcc")
        target = next(i for i in instrs if i.op == "addi")
        assert branch.target == target.addr

    @pytest.mark.parametrize("isa", [X86_ISA, ARM_ISA])
    def test_encode_repeatable_at_other_base(self, isa):
        # Encoding must not mutate the instruction list: re-encoding at a
        # different base has to produce consistent relative branches.
        block = self._block(isa)
        first = block.encode(0x1000)
        second = block.encode(0x9000)
        assert len(first) == len(second)
        branch_1 = next(i for i in isa.disassemble(first, 0x1000)
                        if i.op == "bcc")
        branch_2 = next(i for i in isa.disassemble(second, 0x9000)
                        if i.op == "bcc")
        assert branch_2.target - branch_1.target == 0x8000

    def test_duplicate_label_rejected(self):
        a = Instruction("nop")
        a.label = "dup"
        b = Instruction("nop")
        b.label = "dup"
        with pytest.raises(EncodingError):
            AsmBlock(X86_ISA, [a, b]).layout()

    def test_unresolved_target_rejected(self):
        block = AsmBlock(X86_ISA, [Instruction("b", target="nowhere")])
        with pytest.raises(EncodingError):
            block.encode(0x1000)

    def test_symbol_resolution(self):
        block = AsmBlock(X86_ISA, [Instruction("call", target="helper")])
        encoded = block.encode(0x1000, lambda name: 0x400000)
        decoded = X86_ISA.decode(encoded, 0, 0x1000)
        assert decoded.target == 0x400000

    @pytest.mark.parametrize("isa", [X86_ISA, ARM_ISA])
    def test_movi_symbol_size_independent_of_value(self, isa):
        # The whole point of movi_full: layout cannot depend on where the
        # linker puts the symbol.
        instr = movi_symbol(isa, 0, "whatever")
        size_before = isa.size_of(instr)
        block = AsmBlock(isa, [instr])
        for address in (0x1, 0x10000, 0xFFFF_FFFF, 0xFFFF_FFFF_FFFF):
            encoded = block.encode(0, lambda name, a=address: a)
            assert len(encoded) == size_before


MT_SOURCE = """
global int order_hash;
global int mtx;

func worker(int k) {
    int i;
    i = 0;
    while (i < 15) {
        lock(&mtx);
        order_hash = (order_hash * 31 + k * 100 + i) % 1000000007;
        unlock(&mtx);
        i = i + 1;
    }
}

func main() -> int {
    int a; int b; int c;
    a = spawn(worker, 1);
    b = spawn(worker, 2);
    c = spawn(worker, 3);
    join(a);
    join(b);
    join(c);
    print(order_hash);
    return 0;
}
"""


class TestSchedulerDeterminism:
    def _run(self, quantum):
        program = compile_source(MT_SOURCE, "order")
        machine = Machine(X86_ISA, quantum=quantum)
        install_program(machine, program)
        process = machine.spawn_process(exe_path_for("order", "x86_64"))
        machine.run_process(process)
        return process.stdout()

    def test_same_quantum_same_interleaving(self):
        # order_hash is interleaving-sensitive by construction; identical
        # quanta must reproduce it exactly.
        assert self._run(64) == self._run(64)
        assert self._run(17) == self._run(17)

    def test_interleaving_actually_depends_on_quantum(self):
        # Sanity that the hash really captures scheduling order (i.e. the
        # previous test isn't vacuous).
        outcomes = {self._run(q) for q in (3, 64, 999)}
        assert len(outcomes) >= 2


class TestPageServer:
    def test_fetch_consumes_page(self):
        server = PageServer({0x1000: b"\xAA" * PAGE_SIZE})
        assert server.fetch(0x1000) == b"\xAA" * PAGE_SIZE
        assert server.fetch(0x1000) is None      # served exactly once
        assert server.pages_served == 1
        assert server.requests == 2
        assert server.remaining_pages() == 0

    def test_unknown_page_counts_as_request(self):
        server = PageServer({})
        assert server.fetch(0x5000) is None
        assert server.requests == 1
        assert server.pages_served == 0

    def test_log_records_order(self):
        server = PageServer({0x1000: bytes(PAGE_SIZE),
                             0x2000: bytes(PAGE_SIZE)})
        server.fetch(0x2000)
        server.fetch(0x1000)
        assert [addr for _i, addr in server.log] == [0x2000, 0x1000]

    def test_remaining_bytes(self):
        server = PageServer({0x1000: bytes(PAGE_SIZE),
                             0x2000: bytes(PAGE_SIZE)})
        assert server.remaining_bytes() == 2 * PAGE_SIZE
