"""Tests for the time-travel debugger: resumable replay sessions, DAP
framing, the snapshot-backed debug session (forward/reverse stepping,
breakpoints, watchpoint bisection, cross-ISA inspection), the TCP DAP
server end to end, and the repro-debug CLI error contract."""

import threading

import pytest

from repro.debug import (DapClient, DebugSession, SourceMap,
                         StreamDecoder, encode_message)
from repro.debug.server import run_tcp
from repro.debug.session import StopInfo
from repro.debug.snapshots import SnapshotIndex, WorldSnapshot
from repro.errors import DebugError, JournalTruncated
from repro.replay import (Journal, ReplaySession, Replayer,
                          bisect_last_transition, record_migrate,
                          record_run)
from repro.replay import journal as jn
from repro.tools import debug as debug_cli

LOOP_SOURCE = """
global int acc;
func bump(int i) -> int {
    acc = acc + i;
    return acc;
}
func main() -> int {
    int i;
    i = 0;
    while (i < 400) { bump(i); i = i + 1; }
    print(acc);
    return 0;
}
"""

#: sentinel is corrupted exactly once, mid-run, inside a helper — the
#: watchpoint-bisection scenario
CORRUPT_SOURCE = """
global int sentinel;
global int acc;
func work(int i) -> int {
    acc = acc + i;
    if (i == 150) { sentinel = 666; }
    return acc;
}
func main() -> int {
    int i;
    sentinel = 12345;
    i = 0;
    while (i < 300) { work(i); i = i + 1; }
    print(sentinel);
    print(acc);
    return 0;
}
"""


@pytest.fixture(scope="module")
def loop_recording():
    return record_run(LOOP_SOURCE, "loop", digest_every=8)


@pytest.fixture(scope="module")
def corrupt_recording():
    return record_run(CORRUPT_SOURCE, "corrupt", digest_every=8)


@pytest.fixture(scope="module")
def migrate_recording():
    return record_migrate(LOOP_SOURCE, "loop", warmup=3000,
                          digest_every=8)


@pytest.fixture(scope="module")
def loop_session(loop_recording):
    return DebugSession(loop_recording.journal, snapshot_every=16)


@pytest.fixture(scope="module")
def migrate_session(migrate_recording):
    return DebugSession(migrate_recording.journal, snapshot_every=16)


@pytest.fixture
def clean(loop_session):
    """The shared session with no breakpoints, parked at the start."""
    loop_session.pc_breakpoints = set()
    loop_session.quantum_breakpoints = set()
    loop_session.clear_watchpoints()
    loop_session.seek(loop_session.start_position())
    return loop_session


# -- satellite: resumable replay sessions --------------------------------


class TestReplaySession:
    def test_pauses_at_targets(self, loop_recording):
        with ReplaySession(loop_recording.journal) as session:
            assert session.run_until(500)
            assert session.paused and not session.finished
            first = session.instructions
            assert first >= 500
            assert session.run_until(1500)
            assert session.instructions >= 1500 > first

    def test_journal_bit_identical_to_straight_replay(
            self, loop_recording):
        straight = Replayer(loop_recording.journal).run()
        with ReplaySession(loop_recording.journal) as session:
            session.run_until(700)
            session.run_until(2500)
            result = session.run_to_end()
        assert result.journal.to_bytes() == straight.journal.to_bytes()

    def test_rewind_rejected(self, loop_recording):
        from repro.errors import JournalError
        with ReplaySession(loop_recording.journal) as session:
            session.run_until(2000)
            with pytest.raises(JournalError):
                session.run_until(100)

    def test_close_mid_run_is_clean(self, loop_recording):
        session = ReplaySession(loop_recording.journal)
        session.run_until(1000)
        session.close()  # no hang, no error


# -- satellite: typed journal truncation ---------------------------------


class TestTruncatedJournals:
    def test_truncated_blob_raises_typed_error(self, loop_recording):
        blob = loop_recording.journal.to_bytes()
        with pytest.raises(JournalTruncated) as info:
            Journal.from_bytes(blob[:len(blob) - 30])
        exc = info.value
        assert exc.journal is not None
        assert len(exc.journal.events) > 0
        assert exc.last_instr >= 0

    def test_truncated_journal_is_debuggable(self, loop_recording):
        blob = loop_recording.journal.to_bytes()
        with pytest.raises(JournalTruncated) as info:
            Journal.from_bytes(blob[:int(len(blob) * 0.7)])
        partial = info.value.journal
        session = DebugSession(partial, snapshot_every=32)
        assert session.total_instructions > 0
        # the partial timeline's digests still verify exactly
        index, _pos = session.digest_positions()[-1]
        assert session.verify_digest(index)

    def test_cli_loads_truncated_journal(self, loop_recording,
                                         tmp_path, capsys):
        blob = loop_recording.journal.to_bytes()
        path = tmp_path / "cut.jrn"
        path.write_bytes(blob[:len(blob) - 30])
        journal = debug_cli._load_journal(str(path))
        assert len(journal.events) > 0
        assert "truncated" in capsys.readouterr().err


# -- DAP framing ---------------------------------------------------------


class TestProtocol:
    def test_roundtrip(self):
        message = {"seq": 1, "type": "request", "command": "initialize"}
        decoder = StreamDecoder()
        assert decoder.feed(encode_message(message)) == [message]

    def test_split_and_coalesced_frames(self):
        a = {"seq": 1, "type": "request", "command": "x"}
        b = {"seq": 2, "type": "request", "command": "y"}
        data = encode_message(a) + encode_message(b)
        decoder = StreamDecoder()
        collected = []
        for i in range(0, len(data), 7):
            collected.extend(decoder.feed(data[i:i + 7]))
        assert collected == [a, b]

    def test_bad_body_raises(self):
        decoder = StreamDecoder()
        with pytest.raises(DebugError):
            decoder.feed(b"Content-Length: 3\r\n\r\nnope")

    def test_missing_length_raises(self):
        decoder = StreamDecoder()
        with pytest.raises(DebugError):
            decoder.feed(b"Content-Type: json\r\n\r\n{}")


# -- source mapping ------------------------------------------------------


class TestSourceMap:
    def test_function_extents(self):
        sm = SourceMap(LOOP_SOURCE)
        names = [name for name, _first, _last in sm.functions]
        assert names == ["bump", "main"]
        assert sm.function_at_line(4) == "bump"
        assert sm.function_at_line(9) == "main"
        assert sm.function_at_line(1) is None
        assert sm.line_of("bump") == 3

    def test_unknown_function(self):
        sm = SourceMap(LOOP_SOURCE)
        assert sm.line_of("nope") is None


# -- the debug session ---------------------------------------------------


class TestDebugSession:
    def test_timeline_totals(self, clean):
        assert clean.total_instructions > 0
        assert clean.total_slices > 0
        assert len(clean.snapshots) > 1

    def test_seek_by_instruction(self, clean):
        clean.seek_instr(1000)
        assert clean.instructions == 1000
        clean.seek_instr(3000)
        assert clean.instructions == 3000
        clean.seek_instr(0)
        assert clean.instructions == 0

    def test_seek_cost_is_gap_not_run(self, clean):
        clean.seek_instr(clean.total_instructions - 100)
        before = clean.slices_reexecuted
        clean.seek_instr(clean.total_instructions - 150)
        cost = clean.slices_reexecuted - before
        # one snapshot gap (16 slices) plus slack, never the whole run
        assert cost <= 2 * clean.snapshot_every
        assert cost < clean.total_slices / 2

    def test_step_and_step_back_are_inverse(self, clean):
        clean.seek_instr(997)
        trail = [clean.position]
        for _ in range(6):
            clean.step()
            trail.append(clean.position)
        for expected in reversed(trail[:-1]):
            clean.step_back()
            assert clean.position == expected

    def test_step_back_at_start_returns_none(self, clean):
        assert clean.step_back() is None

    def test_function_breakpoint_and_reverse(self, clean):
        for addr, arch, _line in clean.resolve_function("bump"):
            clean.pc_breakpoints.add((addr, arch))
        first = clean.continue_forward()
        assert first.reason == "breakpoint"
        second = clean.continue_forward()
        assert second.reason == "breakpoint"
        assert second.position > first.position
        back = clean.reverse_continue()
        assert back.reason == "breakpoint"
        assert back.position == first.position
        # nothing before the first hit: reverse lands at the entry
        entry = clean.reverse_continue()
        assert entry.reason == "entry"

    def test_quantum_breakpoints(self, clean):
        clean.quantum_breakpoints = {40, 80}
        stop = clean.continue_forward()
        assert stop.reason == "quantum" and clean.slice_index == 40
        stop = clean.continue_forward()
        assert stop.reason == "quantum" and clean.slice_index == 80
        back = clean.reverse_continue()
        assert back.reason == "quantum" and clean.slice_index == 40

    def test_run_to_end_reports_exit(self, clean):
        stop = clean.continue_forward()
        assert stop.reason == "end"
        assert clean.at_end()
        assert clean.exit_code == 0

    def test_frames_and_variables(self, clean):
        for addr, arch, _line in clean.resolve_function("bump"):
            clean.pc_breakpoints.add((addr, arch))
        clean.continue_forward()
        clean.continue_forward()  # second call: i == 1
        ref = clean.focused_thread()
        frames = clean.stack_frames(ref)
        assert [f.func for f in frames] == ["bump", "main", "_start"]
        variables = {v.name: v for v in clean.frame_variables(ref)}
        assert variables["i"].value == 1
        # outer frame decodes from frame slots
        outer = {v.name for v in clean.frame_variables(ref, 1)}
        assert "i" in outer
        names = {v.name for v in clean.registers(ref)}
        assert "pc" in names and "flags" in names

    def test_evaluate(self, clean):
        for addr, arch, _line in clean.resolve_function("bump"):
            clean.pc_breakpoints.add((addr, arch))
        clean.continue_forward()
        assert clean.evaluate("i").value == 0
        assert clean.evaluate("pc").value is not None
        with pytest.raises(DebugError):
            clean.evaluate("no_such_thing")

    def test_every_digest_verifies(self, clean):
        # the acceptance guarantee: at every recorded digest point the
        # reconstructed world folds to the exact recorded digest —
        # every register and byte equal to the original run
        positions = clean.digest_positions()
        assert len(positions) > 5
        for index, _pos in positions:
            assert clean.verify_digest(index), \
                f"digest #{index} does not verify"

    def test_rejects_unsupported_scenarios(self, loop_recording):
        bad = Journal.from_bytes(loop_recording.journal.to_bytes())
        bad.header["scenario"] = "fleet"
        with pytest.raises(DebugError):
            DebugSession(bad)


class TestWatchpoints:
    def test_reverse_continue_finds_corrupting_write(
            self, corrupt_recording):
        session = DebugSession(corrupt_recording.journal,
                               snapshot_every=16)
        addr = None
        for machine in session.machines:
            for process in machine.processes.values():
                addr = process.binary.symtab.lookup("sentinel").addr
                pid = process.pid
        session.seek(session.end_position())
        session.add_watchpoint(pid, addr, 8)
        stop = session.reverse_continue()
        assert stop.reason == "watchpoint"
        assert "666" in stop.detail or "0x29a" in stop.detail
        # the write is old: bisection crossed many snapshot segments
        value = session.read_memory(addr, 8, pid=pid)
        assert int.from_bytes(value, "little") == 666
        # one step back: the value is the pre-corruption sentinel
        session.step_back()
        value = session.read_memory(addr, 8, pid=pid)
        assert int.from_bytes(value, "little") == 12345

    def test_forward_watch_stop(self, corrupt_recording):
        session = DebugSession(corrupt_recording.journal,
                               snapshot_every=16)
        process = next(iter(session.machines[0].processes.values()))
        addr = process.binary.symtab.lookup("sentinel").addr
        session.add_watchpoint(process.pid, addr, 8)
        stop = session.continue_forward()  # sentinel = 12345
        assert stop.reason == "watchpoint"
        assert "0x3039" in stop.detail  # 12345


class TestCrossIsaMigration:
    def test_inspect_both_sides(self, migrate_session):
        s = migrate_session
        s.pc_breakpoints = set()
        s.quantum_breakpoints = set()
        s.clear_watchpoints()
        restore_at = next(k for k, e in enumerate(s.events)
                          if e["kind"] == jn.EV_RESTORE)
        s.seek((restore_at, 0))
        pre = s.focused_thread()
        pre_frames = s.stack_frames(pre)
        pre_vars = {v.name: v.value for v in s.frame_variables(pre)}
        assert pre.isa == "x86_64"
        assert all(f.isa == "x86_64" for f in pre_frames)
        migrate_at = next(k for k, e in enumerate(s.events)
                          if e["kind"] == jn.EV_MIGRATE)
        s.seek((migrate_at + 1, 0))
        post = s.focused_thread()
        post_frames = s.stack_frames(post)
        post_vars = {v.name: v.value for v in s.frame_variables(post)}
        assert post.isa == "aarch64"
        assert all(f.isa == "aarch64" for f in post_frames)
        # same logical stack and values, re-decoded per ISA
        assert [f.func for f in pre_frames] == \
            [f.func for f in post_frames]
        assert pre_vars == post_vars

    def test_source_breakpoint_binds_on_both_isas(self, migrate_session):
        func, sites = migrate_session.resolve_line(4)
        assert func == "bump"
        assert {arch for _addr, arch, _line in sites} == \
            {"x86_64", "aarch64"}

    def test_step_back_across_migration_boundary(self, migrate_session):
        s = migrate_session
        s.pc_breakpoints = set()
        s.quantum_breakpoints = set()
        s.clear_watchpoints()
        restore_at = next(k for k, e in enumerate(s.events)
                          if e["kind"] == jn.EV_RESTORE)
        s.seek((restore_at, 0))
        forward = [s.position]
        for _ in range(6):  # steps through restore/exit/ckpt/rewrite/
            s.step()        # migrate events and into dst execution
            forward.append(s.position)
        for expected in reversed(forward[:-1]):
            s.step_back()
            assert s.position == expected
        assert s.focused_thread().isa == "x86_64"

    def test_every_digest_verifies_across_migration(
            self, migrate_session):
        for index, _pos in migrate_session.digest_positions():
            assert migrate_session.verify_digest(index), \
                f"digest #{index} does not verify"


# -- divergence helper ---------------------------------------------------


class TestBisectLastTransition:
    def test_finds_transition(self):
        samples = [0, 0, 0, 7, 7]
        calls = []

        def probe(i):
            calls.append(i)
            return samples[i]

        assert bisect_last_transition(probe, 0, 4) == 3
        assert len(calls) <= 5

    def test_no_transition(self):
        assert bisect_last_transition(lambda i: 1, 0, 4) is None
        assert bisect_last_transition(lambda i: 1, 2, 2) is None


# -- the DAP server, end to end ------------------------------------------


@pytest.fixture(scope="module")
def dap(migrate_session):
    """A live TCP DAP server over the migrate session, plus a
    connected scripted client through the full handshake."""
    migrate_session.pc_breakpoints = set()
    migrate_session.quantum_breakpoints = set()
    migrate_session.clear_watchpoints()
    migrate_session.seek(migrate_session.start_position())
    address = {}
    ready = threading.Event()

    def announce(host, port):
        address["host"], address["port"] = host, port
        ready.set()

    thread = threading.Thread(target=run_tcp, args=(migrate_session,),
                              kwargs={"announce": announce},
                              daemon=True)
    thread.start()
    assert ready.wait(30)
    client = DapClient(address["host"], address["port"])
    client.initialize()
    client.launch()
    yield client
    try:
        client.disconnect()
    except DebugError:
        pass
    client.close()
    thread.join(timeout=30)


class TestDapServer:
    """The acceptance scenario, over the wire, on a cross-ISA migrate
    journal: source-line breakpoint, frames/variables on both sides of
    the migration, reverse execution, memory reads."""

    def test_scripted_session(self, dap):
        bps = dap.set_breakpoints([4])
        assert bps[0]["verified"]
        stop = dap.configuration_done()
        assert stop["body"]["reason"] == "entry"

        # hit the source-line breakpoint pre-migration (x86_64)
        stop = dap.continue_()
        assert stop["body"]["reason"] == "breakpoint"
        tid = stop["body"]["threadId"]
        frames = dap.stack_trace(tid)
        assert frames[0]["name"] == "bump"
        assert frames[0]["line"] == 3
        pre_locals = dap.locals_of(frames[0]["id"])
        assert pre_locals["i"] == "0"
        threads = dap.threads()
        assert any("x86_64" in t["name"] for t in threads)

        # jump past the migration; same logical frame on aarch64
        info = dap.time_travel()
        dap.set_breakpoints([])
        dap.set_quantum_breakpoints([info["totalSlices"] - 10])
        stop = dap.continue_()
        threads = dap.threads()
        assert any("aarch64" in t["name"] for t in threads)
        tid = stop["body"]["threadId"]
        frames = dap.stack_trace(tid)
        assert frames[-1]["name"] == "_start"

        # step backward twice across a snapshot boundary and verify
        # the instruction counter walks back exactly
        dap.set_quantum_breakpoints([])
        before = dap.time_travel()["instruction"]
        dap.step_back()
        dap.step_back()
        after = dap.time_travel()["instruction"]
        assert after == before - 2

        # a variable read over the wire matches the live evaluate
        stop = dap.set_function_breakpoints(["bump"])
        stop = dap.reverse_continue()
        assert stop["body"]["reason"] == "breakpoint"
        tid = stop["body"]["threadId"]
        frames = dap.stack_trace(tid)
        values = dap.locals_of(frames[0]["id"])
        assert values["i"] == dap.evaluate("i", frames[0]["id"])

        # readMemory round-trips through base64
        dap.set_function_breakpoints([])
        info = dap.data_breakpoint_info("i", frames[0]["id"])
        assert info["dataId"]
        _pid, addr, _size = info["dataId"].split(":")
        body = dap.read_memory(int(addr, 0), 8)
        assert body["data"]

    def test_unknown_command_fails_cleanly(self, dap):
        with pytest.raises(DebugError):
            dap.request("teleport")

    def test_source_request_serves_embedded_text(self, dap):
        body = dap.request("source", {"sourceReference": 1})
        assert "func bump" in body["content"]


# -- CLI error contract --------------------------------------------------


class TestDebugCli:
    def test_missing_journal_is_handled(self, capsys):
        assert debug_cli.main(["/nonexistent/path.jrn"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-debug: error:")
        assert "Traceback" not in err

    def test_garbage_journal_is_handled(self, tmp_path, capsys):
        path = tmp_path / "garbage.jrn"
        path.write_bytes(b"not a journal at all")
        assert debug_cli.main([str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro-debug: error:")
        assert "Traceback" not in err
