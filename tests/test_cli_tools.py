"""Tests for the command-line tools (dapperc, crit, run, migrate,
store, chaos, replay, repro-verify) and their shared error contract:
a typed failure is one ``<prog>: error: <msg>`` line on stderr and a
nonzero exit — never a traceback."""

import json
import os

import pytest

from repro.tools import chaos as chaos_cli
from repro.tools import crit as crit_cli
from repro.tools import fleet as fleet_cli
from repro.tools import group as group_cli
from repro.tools import dapperc, migrate, run as run_cli
from repro.tools import replay as replay_cli
from repro.tools import store as store_cli
from repro.tools import verify as verify_cli

SOURCE = """
global int total;
func square(int x) -> int { return x * x; }
func main() -> int {
    int i;
    i = 0;
    while (i < 40) {
        total = (total + square(i)) % 100000;
        print(total);
        i = i + 1;
    }
    return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "demo.dc"
    path.write_text(SOURCE)
    return str(path)


class TestDapperc:
    def test_compiles_both_isas(self, source_file, tmp_path, capsys):
        prefix = str(tmp_path / "build" / "demo")
        assert dapperc.main([source_file, "-o", prefix]) == 0
        assert os.path.exists(f"{prefix}.x86_64.delf")
        assert os.path.exists(f"{prefix}.aarch64.delf")
        out = capsys.readouterr().out
        assert "eqpoints=" in out

    def test_single_arch(self, source_file, tmp_path):
        prefix = str(tmp_path / "demo")
        assert dapperc.main([source_file, "-o", prefix,
                             "--arch", "aarch64"]) == 0
        assert os.path.exists(f"{prefix}.aarch64.delf")
        assert not os.path.exists(f"{prefix}.x86_64.delf")

    def test_dump_ir(self, source_file, capsys):
        assert dapperc.main([source_file, "--dump-ir"]) == 0
        out = capsys.readouterr().out
        assert "func main" in out
        assert "eqpoint.entry" in out

    def test_symbols_and_stackmaps(self, source_file, tmp_path, capsys):
        prefix = str(tmp_path / "demo")
        assert dapperc.main([source_file, "-o", prefix, "--symbols",
                             "--stackmaps"]) == 0
        out = capsys.readouterr().out
        assert "main" in out and "entry" in out

    def test_missing_file(self, capsys):
        assert dapperc.main(["/nonexistent.dc"]) == 2

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.dc"
        bad.write_text("func main() -> int { return undefined_var; }")
        assert dapperc.main([str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_runs_binary(self, source_file, tmp_path, capsys):
        prefix = str(tmp_path / "demo")
        dapperc.main([source_file, "-o", prefix])
        capsys.readouterr()
        assert run_cli.main([f"{prefix}.x86_64.delf", "--stats"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines()[0] == "0"
        assert "instructions=" in captured.err

    def test_both_archs_same_output(self, source_file, tmp_path, capsys):
        prefix = str(tmp_path / "demo")
        dapperc.main([source_file, "-o", prefix])
        capsys.readouterr()
        run_cli.main([f"{prefix}.x86_64.delf"])
        x86_out = capsys.readouterr().out
        run_cli.main([f"{prefix}.aarch64.delf"])
        arm_out = capsys.readouterr().out
        assert x86_out == arm_out

    def test_missing_binary(self, capsys):
        assert run_cli.main(["/nonexistent.delf"]) == 1


class TestMigrate:
    def test_end_to_end(self, source_file, tmp_path, capsys):
        images_dir = str(tmp_path / "imgs")
        code = migrate.main([source_file, "--warmup", "1200",
                             "--keep-images", images_dir, "--quiet"])
        captured = capsys.readouterr()
        assert code == 0
        assert "output identical to native run: True" in captured.err
        assert os.path.exists(os.path.join(images_dir, "core-1.img"))
        assert os.path.exists(os.path.join(images_dir, "pages-1.img"))

    def test_lazy_flag(self, source_file, capsys):
        code = migrate.main([source_file, "--warmup", "1200", "--lazy",
                             "--quiet"])
        assert code == 0
        assert "lazy" in capsys.readouterr().err

    def test_same_arch_rejected(self, source_file, capsys):
        assert migrate.main([source_file, "--from", "x86_64",
                             "--to", "x86_64"]) == 2


class TestCrit:
    @pytest.fixture
    def images_dir(self, source_file, tmp_path, capsys):
        images = str(tmp_path / "imgs")
        migrate.main([source_file, "--warmup", "1200",
                      "--keep-images", images, "--quiet"])
        capsys.readouterr()
        return images

    def test_show(self, images_dir, capsys):
        assert crit_cli.main(["show", images_dir]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert "inventory.img" in parsed

    def test_decode(self, images_dir, capsys):
        path = os.path.join(images_dir, "files.img")
        assert crit_cli.main(["decode", path]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["kind"] == "files"
        assert decoded["exe_arch"] == "aarch64"

    def test_encode_roundtrip(self, images_dir, tmp_path, capsys):
        path = os.path.join(images_dir, "files.img")
        crit_cli.main(["decode", path])
        decoded = json.loads(capsys.readouterr().out)
        decoded.pop("kind")
        json_path = str(tmp_path / "files.json")
        with open(json_path, "w") as handle:
            json.dump(decoded, handle)
        out_path = str(tmp_path / "files.img")
        assert crit_cli.main(["encode", json_path, out_path]) == 0
        with open(out_path, "rb") as handle:
            re_encoded = handle.read()
        with open(path, "rb") as handle:
            original = handle.read()
        assert re_encoded == original

    def test_empty_directory(self, tmp_path, capsys):
        assert crit_cli.main(["show", str(tmp_path)]) == 1


class TestReproVerify:
    @pytest.fixture
    def guarded_setup(self, source_file, tmp_path, capsys):
        """Images from a real migration plus the dst binary and the
        sender's fingerprint."""
        images = str(tmp_path / "imgs")
        migrate.main([source_file, "--warmup", "1200",
                      "--keep-images", images, "--quiet"])
        prefix = str(tmp_path / "demo")
        dapperc.main([source_file, "-o", prefix])
        fingerprint = str(tmp_path / "images.fp")
        verify_cli.main(["fingerprint", images, "-o", fingerprint])
        capsys.readouterr()
        return {"images": images, "fingerprint": fingerprint,
                "binary": f"{prefix}.aarch64.delf",
                "quarantine": str(tmp_path / "q")}

    def _flip(self, setup, index):
        path = os.path.join(setup["images"], "pages-1.img")
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        blob[index] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))

    def test_clean_images_verify_ok(self, guarded_setup, capsys):
        code = verify_cli.main(["verify", guarded_setup["images"],
                                "--binary", guarded_setup["binary"],
                                "--digests",
                                guarded_setup["fingerprint"]])
        out = capsys.readouterr().out
        assert code == 0
        assert "ok" in out

    def test_fingerprint_is_json_manifest(self, guarded_setup, capsys):
        assert verify_cli.main(["fingerprint",
                                guarded_setup["images"]]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert "content_digest" in manifest
        assert all(vaddr.startswith("0x") for vaddr in manifest["pages"])

    def test_corruption_detected(self, guarded_setup, capsys):
        self._flip(guarded_setup, 100)
        code = verify_cli.main(["verify", guarded_setup["images"],
                                "--digests",
                                guarded_setup["fingerprint"]])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out and "page-digest" in out

    def test_doctor_repairs_text_page_in_place(self, guarded_setup,
                                               capsys):
        self._flip(guarded_setup, 100)  # byte 100 is in the first
        code = verify_cli.main(        # (text) page: binary-backed
            ["doctor", guarded_setup["images"],
             "--binary", guarded_setup["binary"],
             "--digests", guarded_setup["fingerprint"],
             "--quarantine", guarded_setup["quarantine"]])
        assert code == 0
        assert "repaired" in capsys.readouterr().out
        assert verify_cli.main(["verify", guarded_setup["images"],
                                "--binary", guarded_setup["binary"],
                                "--digests",
                                guarded_setup["fingerprint"]]) == 0

    def test_doctor_quarantines_unrepairable(self, guarded_setup,
                                             capsys):
        self._flip(guarded_setup, -10)  # stack page: no repair source
        code = verify_cli.main(
            ["doctor", guarded_setup["images"],
             "--binary", guarded_setup["binary"],
             "--digests", guarded_setup["fingerprint"],
             "--quarantine", guarded_setup["quarantine"]])
        out = capsys.readouterr().out
        assert code == 1
        assert "quarantined as" in out
        qid = out.split("quarantined as ")[1].split()[0]
        diagnosis_path = os.path.join(guarded_setup["quarantine"], qid,
                                      "diagnosis.json")
        with open(diagnosis_path) as handle:
            diagnosis = json.load(handle)
        assert diagnosis["failing_pass"] == "structural"

        assert verify_cli.main(["quarantine", "ls",
                                guarded_setup["quarantine"]]) == 0
        assert qid in capsys.readouterr().out
        assert verify_cli.main(["quarantine", "rm",
                                guarded_setup["quarantine"],
                                qid[:6]]) == 0
        capsys.readouterr()
        verify_cli.main(["quarantine", "ls", guarded_setup["quarantine"]])
        assert "empty" in capsys.readouterr().out


class TestUnifiedErrorHandling:
    """Every tool fails the same way on typed errors: one
    ``<prog>: error: <msg>`` line on stderr, exit 1, no traceback."""

    CASES = [
        (run_cli, "dapper-run", ["/nonexistent.delf"]),
        (crit_cli, "crit", ["show", "/nonexistent-dir"]),
        (store_cli, "store", ["ls", "/nonexistent-store"]),
        (replay_cli, "repro-replay", ["show", "/nonexistent.jrn"]),
        (verify_cli, "repro-verify", ["verify", "/nonexistent-dir"]),
        (verify_cli, "repro-verify",
         ["quarantine", "rm", "/nonexistent-q", "feedbeef"]),
        (chaos_cli, "dapper-chaos",
         ["--app", "no-such-app", "--trials", "1", "--crash", "0.1"]),
        (fleet_cli, "repro-fleet", ["--nodes", "0"]),
        (fleet_cli, "repro-fleet", ["--nodes", "4", "--shards", "9"]),
        (group_cli, "repro-group", ["--workers", "0"]),
        (group_cli, "repro-group", ["--fault", "bogus"]),
        (group_cli, "repro-group", ["--chaos", "--trials", "2"]),
    ]

    @pytest.mark.parametrize("tool,prog,argv", CASES,
                             ids=lambda c: getattr(c, "__name__", str(c)))
    def test_typed_error_is_one_clean_line(self, tool, prog, argv,
                                           capsys):
        assert tool.main(argv) == 1
        captured = capsys.readouterr()
        lines = captured.err.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith(f"{prog}: error: ")
        assert "Traceback" not in captured.err

    def test_usage_errors_still_exit_2(self, capsys):
        with pytest.raises(SystemExit) as err:
            verify_cli.main(["no-such-command"])
        assert err.value.code == 2
