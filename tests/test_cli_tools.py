"""Tests for the command-line tools (dapperc, crit, run, migrate)."""

import json
import os

import pytest

from repro.tools import crit as crit_cli
from repro.tools import dapperc, migrate, run as run_cli

SOURCE = """
global int total;
func square(int x) -> int { return x * x; }
func main() -> int {
    int i;
    i = 0;
    while (i < 40) {
        total = (total + square(i)) % 100000;
        print(total);
        i = i + 1;
    }
    return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "demo.dc"
    path.write_text(SOURCE)
    return str(path)


class TestDapperc:
    def test_compiles_both_isas(self, source_file, tmp_path, capsys):
        prefix = str(tmp_path / "build" / "demo")
        assert dapperc.main([source_file, "-o", prefix]) == 0
        assert os.path.exists(f"{prefix}.x86_64.delf")
        assert os.path.exists(f"{prefix}.aarch64.delf")
        out = capsys.readouterr().out
        assert "eqpoints=" in out

    def test_single_arch(self, source_file, tmp_path):
        prefix = str(tmp_path / "demo")
        assert dapperc.main([source_file, "-o", prefix,
                             "--arch", "aarch64"]) == 0
        assert os.path.exists(f"{prefix}.aarch64.delf")
        assert not os.path.exists(f"{prefix}.x86_64.delf")

    def test_dump_ir(self, source_file, capsys):
        assert dapperc.main([source_file, "--dump-ir"]) == 0
        out = capsys.readouterr().out
        assert "func main" in out
        assert "eqpoint.entry" in out

    def test_symbols_and_stackmaps(self, source_file, tmp_path, capsys):
        prefix = str(tmp_path / "demo")
        assert dapperc.main([source_file, "-o", prefix, "--symbols",
                             "--stackmaps"]) == 0
        out = capsys.readouterr().out
        assert "main" in out and "entry" in out

    def test_missing_file(self, capsys):
        assert dapperc.main(["/nonexistent.dc"]) == 2

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.dc"
        bad.write_text("func main() -> int { return undefined_var; }")
        assert dapperc.main([str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_runs_binary(self, source_file, tmp_path, capsys):
        prefix = str(tmp_path / "demo")
        dapperc.main([source_file, "-o", prefix])
        capsys.readouterr()
        assert run_cli.main([f"{prefix}.x86_64.delf", "--stats"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines()[0] == "0"
        assert "instructions=" in captured.err

    def test_both_archs_same_output(self, source_file, tmp_path, capsys):
        prefix = str(tmp_path / "demo")
        dapperc.main([source_file, "-o", prefix])
        capsys.readouterr()
        run_cli.main([f"{prefix}.x86_64.delf"])
        x86_out = capsys.readouterr().out
        run_cli.main([f"{prefix}.aarch64.delf"])
        arm_out = capsys.readouterr().out
        assert x86_out == arm_out

    def test_missing_binary(self, capsys):
        assert run_cli.main(["/nonexistent.delf"]) == 1


class TestMigrate:
    def test_end_to_end(self, source_file, tmp_path, capsys):
        images_dir = str(tmp_path / "imgs")
        code = migrate.main([source_file, "--warmup", "1200",
                             "--keep-images", images_dir, "--quiet"])
        captured = capsys.readouterr()
        assert code == 0
        assert "output identical to native run: True" in captured.err
        assert os.path.exists(os.path.join(images_dir, "core-1.img"))
        assert os.path.exists(os.path.join(images_dir, "pages-1.img"))

    def test_lazy_flag(self, source_file, capsys):
        code = migrate.main([source_file, "--warmup", "1200", "--lazy",
                             "--quiet"])
        assert code == 0
        assert "lazy" in capsys.readouterr().err

    def test_same_arch_rejected(self, source_file, capsys):
        assert migrate.main([source_file, "--from", "x86_64",
                             "--to", "x86_64"]) == 2


class TestCrit:
    @pytest.fixture
    def images_dir(self, source_file, tmp_path, capsys):
        images = str(tmp_path / "imgs")
        migrate.main([source_file, "--warmup", "1200",
                      "--keep-images", images, "--quiet"])
        capsys.readouterr()
        return images

    def test_show(self, images_dir, capsys):
        assert crit_cli.main(["show", images_dir]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert "inventory.img" in parsed

    def test_decode(self, images_dir, capsys):
        path = os.path.join(images_dir, "files.img")
        assert crit_cli.main(["decode", path]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["kind"] == "files"
        assert decoded["exe_arch"] == "aarch64"

    def test_encode_roundtrip(self, images_dir, tmp_path, capsys):
        path = os.path.join(images_dir, "files.img")
        crit_cli.main(["decode", path])
        decoded = json.loads(capsys.readouterr().out)
        decoded.pop("kind")
        json_path = str(tmp_path / "files.json")
        with open(json_path, "w") as handle:
            json.dump(decoded, handle)
        out_path = str(tmp_path / "files.img")
        assert crit_cli.main(["encode", json_path, out_path]) == 0
        with open(out_path, "rb") as handle:
            re_encoded = handle.read()
        with open(path, "rb") as handle:
            original = handle.read()
        assert re_encoded == original

    def test_empty_directory(self, tmp_path, capsys):
        assert crit_cli.main(["show", str(tmp_path)]) == 1
