"""Coordinated group checkpoints: the two-phase coordinator's
commit-or-resume invariant, the transactional connection drain, split
cross-ISA group restore, bit-identical replay of chaotic group
journals, and two-phase groups at fleet scale."""

import pytest

from repro.chaos import FaultInjector, FaultPlan
from repro.errors import GroupError, GroupRollback, StoreError
from repro.fleet import FleetSpec, FleetStorm
from repro.group import (FAULT_PHASES, ConnectionBroker,
                         GroupChaosHarness, GroupCoordinator, GroupSpec,
                         ServiceGroup, restore_group, split_placements)
from repro.isa import get_isa
from repro.replay import journal as jn
from repro.replay.engine import Replayer, record_group
from repro.store import CheckpointStore
from repro.vm import Machine


def make_group(spec: GroupSpec):
    """One warmed-up source group plus a split destination placement:
    workers cross to aarch64, the backend stays on x86_64."""
    group = ServiceGroup(spec)
    group.warmup()
    dst_a = Machine(get_isa("aarch64"), name="dst-a")
    dst_b = Machine(get_isa("x86_64"), name="dst-b")
    return group, split_placements(group, dst_a, dst_b)


class TestGroupSpec:
    def test_round_trip(self):
        spec = GroupSpec(workers=3, conns=12, drain=5, seed=7,
                         warmup=5000, fault="commit")
        again = GroupSpec.from_spec(spec.to_spec())
        assert again.to_spec() == spec.to_spec()
        assert again.fault == "commit"

    def test_fault_only_appended_when_set(self):
        assert "fault" not in GroupSpec().to_spec()
        assert GroupSpec(fault="drain").to_spec().endswith("fault=drain")

    @pytest.mark.parametrize("kwargs", [
        dict(workers=0), dict(conns=-1), dict(drain=-1),
        dict(warmup=0), dict(fault="bogus"),
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(GroupError):
            GroupSpec(**kwargs)

    def test_bad_spec_strings_rejected(self):
        with pytest.raises(GroupError):
            GroupSpec.from_spec("workers=2,nonsense=1")
        with pytest.raises(GroupError):
            GroupSpec.from_spec("workers=two")


class TestConnectionBroker:
    def _broker(self, count=8):
        return ConnectionBroker(seed=0, count=count,
                                worker_pids=[100, 101], backend_pid=102)

    def test_seeded_connections_are_deterministic(self):
        assert self._broker().in_flight == self._broker().in_flight

    def test_drain_stages_up_to_budget(self):
        broker = self._broker(count=8)
        drained, leftover = broker.begin_drain(5)
        assert (len(drained), len(leftover)) == (5, 3)
        assert broker.in_flight == leftover

    def test_double_begin_rejected(self):
        broker = self._broker()
        broker.begin_drain(2)
        with pytest.raises(GroupError):
            broker.begin_drain(2)

    def test_abort_restores_pre_drain_state_exactly(self):
        broker = self._broker()
        before = broker.digest()
        broker.begin_drain(5)
        broker.abort_drain()
        assert broker.digest() == before
        broker.abort_drain()            # idempotent
        assert broker.digest() == before

    def test_commit_retires_staged_connections(self):
        broker = self._broker(count=8)
        drained, leftover = broker.begin_drain(5)
        broker.commit_drain()
        assert broker.completed == drained
        assert broker.in_flight == leftover
        broker.begin_drain(1)           # a new drain can open

    def test_journaled_for_filters_by_endpoint(self):
        broker = self._broker()
        for conn in broker.journaled_for(102):
            assert 102 in (conn["src_pid"], conn["dst_pid"])
        everything = broker.journaled_for(102)
        assert everything == broker.in_flight   # backend touches all
        assert broker.journaled_for(9999) == []


class TestGroupCommit:
    @pytest.fixture(scope="class")
    def committed(self):
        spec = GroupSpec(workers=2, conns=8, drain=4, seed=1)
        group, placements = make_group(spec)
        store = CheckpointStore()
        coordinator = GroupCoordinator(group, placements, store=store)
        result = coordinator.migrate()
        return group, placements, store, result

    def test_manifest_registered_with_members_in_order(self, committed):
        _group, _placements, store, result = committed
        assert store.is_group(result.gid)
        assert store.members(result.gid) == result.member_ids
        assert len(result.member_ids) == 3      # 2 nginx + 1 redis

    def test_drain_settled_at_the_cut(self, committed):
        group, _placements, _store, result = committed
        assert (result.drained, result.leftover) == (4, 4)
        assert len(group.broker.completed) == 4
        assert len(group.broker.in_flight) == 4

    def test_leftovers_journaled_onto_restored_members(self, committed):
        group, _placements, _store, result = committed
        for member, process in zip(group.members, result.processes):
            journaled = group.broker.journaled_for(member.process.pid)
            restored = getattr(process, "restored_connections", [])
            assert restored == journaled
        redis = result.processes[-1]
        assert len(redis.restored_connections) == result.leftover

    def test_sources_torn_down_destinations_run_to_exit(self, committed):
        group, placements, _store, result = committed
        assert not group.machine.processes
        for machine, process in zip(placements, result.processes):
            assert machine.run_process(process) == 0

    def test_store_fsck_clean_after_commit(self, committed):
        _group, _placements, store, _result = committed
        assert store.verify() == []
        assert store.chunks.orphans() == []


class TestGroupAbort:
    @pytest.mark.parametrize("phase", FAULT_PHASES)
    def test_forced_fault_aborts_cleanly(self, phase):
        spec = GroupSpec(workers=1, conns=6, drain=3, fault=phase)
        group, placements = make_group(spec)
        store = CheckpointStore()
        broker_before = group.broker.digest()
        coordinator = GroupCoordinator(group, placements, store=store,
                                       fault_phase=phase)
        with pytest.raises(GroupRollback) as exc:
            coordinator.migrate()
        assert exc.value.phase == phase
        # An aborted run never leaves a group manifest, a prepared
        # member checkpoint, or an orphan chunk behind...
        assert store.group_ids() == []
        assert store.checkpoint_ids() == []
        assert store.chunks.orphans() == []
        # ...the drain rolled back byte-identically...
        assert group.broker.digest() == broker_before
        # ...and every destination was swept.
        for machine in dict.fromkeys(placements):
            assert not machine.processes
        # Every member resumed at the cut and runs to completion.
        assert group.run_to_exit_on_source() == [0, 0]

    def test_restore_phase_abort_reports_prepared_members(self):
        spec = GroupSpec(workers=1, conns=4, drain=2, fault="restore")
        group, placements = make_group(spec)
        coordinator = GroupCoordinator(group, placements,
                                       fault_phase="restore")
        with pytest.raises(GroupRollback) as exc:
            coordinator.migrate()
        # The forced restore fault fires after the first member held
        # its migration open — the abort had real work to undo.
        assert exc.value.prepared >= 1


class TestGroupChaos:
    @pytest.fixture(scope="class")
    def harness(self):
        return GroupChaosHarness(GroupSpec(workers=1, conns=6, drain=3))

    def test_forced_sweep_holds_commit_or_resume(self, harness):
        trials = harness.sweep_phases()
        assert [t.phase for t in trials] == list(FAULT_PHASES) + [""]
        assert all(t.ok for t in trials), [t.detail for t in trials]
        assert all(t.outcome == "resumed"
                   for t in trials if t.phase)
        assert trials[-1].outcome == "committed"

    def test_seeded_trials_hold_commit_or_resume(self, harness):
        trials = harness.run_trials(3, seed0=11, crash=0.4, corrupt=0.2)
        assert all(t.ok for t in trials), [t.detail for t in trials]
        assert {t.outcome for t in trials} <= {"committed", "resumed"}


class TestRestoreGroup:
    @pytest.fixture(scope="class")
    def committed(self):
        spec = GroupSpec(workers=1, conns=4, drain=2, seed=3)
        group, placements = make_group(spec)
        store = CheckpointStore()
        result = GroupCoordinator(group, placements, store=store).migrate()
        for machine, process in zip(placements, result.processes):
            machine.run_process(process)
        return group, store, result

    def test_split_isa_restore_from_manifest(self, committed):
        group, store, result = committed
        # Flip the split: workers back to x86_64, backend to aarch64 —
        # every member re-crosses an ISA from its stored checkpoint.
        flip_a = Machine(get_isa("x86_64"), name="flip-a")
        flip_b = Machine(get_isa("aarch64"), name="flip-b")
        placements = split_placements(group, flip_a, flip_b)
        processes = restore_group(store, result.gid, placements,
                                  group.programs)
        assert len(processes) == len(result.member_ids)
        for machine, process in zip(placements, processes):
            assert machine.run_process(process) == 0

    def test_placement_count_mismatch_rejected(self, committed):
        group, store, result = committed
        with pytest.raises(GroupError):
            restore_group(store, result.gid,
                          [Machine(get_isa("x86_64"), name="one")],
                          group.programs)

    def test_missing_program_kills_partial_restore(self, committed):
        group, store, result = committed
        flip_a = Machine(get_isa("x86_64"), name="flip-a")
        flip_b = Machine(get_isa("aarch64"), name="flip-b")
        placements = split_placements(group, flip_a, flip_b)
        programs = {"nginx": group.programs["nginx"]}   # no redis
        with pytest.raises(GroupRollback) as exc:
            restore_group(store, result.gid, placements, programs)
        assert exc.value.phase == "restore"
        # The nginx member restored before redis failed — it was killed.
        for machine in dict.fromkeys(placements):
            assert not any(not p.exited
                           for p in machine.processes.values())


def _group_streams(result):
    events = result.journal.events
    return (result.journal.digest_stream(),
            [(e["label"], e["a"]) for e in events
             if e["kind"] == jn.EV_RNG],
            [(e["label"], e["a"], e["b"]) for e in events
             if e["kind"] == jn.EV_FAULT],
            [(e["label"], e["a"], e["b"]) for e in events
             if e["kind"] == jn.EV_GROUP])


class TestGroupReplay:
    SPEC = "workers=1,conns=6,drain=3,seed=2,warmup=4000"

    def _assert_bit_identical(self, recorded):
        replayed = Replayer(recorded.journal).run()
        assert _group_streams(replayed) == _group_streams(recorded)
        assert replayed.exit_code == recorded.exit_code

    def test_committed_group_replays_bit_identically(self):
        recorded = record_group(self.SPEC)
        labels = [e["label"] for e in
                  recorded.journal.of_kind(jn.EV_GROUP)]
        assert labels[-1].startswith("group:committed:")
        self._assert_bit_identical(recorded)

    @pytest.mark.parametrize("phase", ["drain", "commit"])
    def test_forced_abort_replays_bit_identically(self, phase):
        recorded = record_group(f"{self.SPEC},fault={phase}")
        labels = [e["label"] for e in
                  recorded.journal.of_kind(jn.EV_GROUP)]
        assert labels[-1] == f"group:aborted@{phase}"
        self._assert_bit_identical(recorded)

    def test_chaotic_group_replays_bit_identically(self):
        recorded = record_group(self.SPEC, chaos="seed=5,crash=5000")
        self._assert_bit_identical(recorded)

    def test_gid_is_content_derived_across_runs(self):
        a = record_group(self.SPEC)
        b = record_group(self.SPEC)
        commits_a = [e["label"] for e in a.journal.of_kind(jn.EV_GROUP)
                     if e["label"].startswith("group:committed:")]
        commits_b = [e["label"] for e in b.journal.of_kind(jn.EV_GROUP)
                     if e["label"].startswith("group:committed:")]
        assert commits_a and commits_a == commits_b


#: a storm whose rolling update wave is submitted as coordinated
#: groups of 4 — small enough to stay fast, chaotic enough (in the
#: chaos variant) to force at least one group abort
GROUPED = dict(seed=9, nodes=24, shards=3, duration=30.0,
               max_in_flight=6, update_fraction=0.6, update_group=4)
GROUPED_CHAOS = "seed=9,drop=1000,latency=1000,pskill=300,crash=5000"


class TestFleetGroups:
    def test_fault_free_wave_commits_every_group(self):
        result = FleetStorm(FleetSpec(**GROUPED)).run()
        assert result.invariant_ok
        assert result.groups_committed >= 1
        assert result.groups_aborted == 0
        assert result.rolled_back == 0

    def test_chaotic_wave_holds_commit_or_resume(self):
        plan = FaultPlan.from_spec(GROUPED_CHAOS)
        result = FleetStorm(FleetSpec(**GROUPED), plan).run()
        assert result.invariant_ok          # includes the group clause
        assert result.groups_aborted >= 1   # chaos actually bit a group
        assert result.groups_committed + result.groups_aborted >= 1

    def test_grouped_storm_is_deterministic(self):
        plan = FaultPlan.from_spec(GROUPED_CHAOS)
        a = FleetStorm(FleetSpec(**GROUPED), plan).run()
        b = FleetStorm(FleetSpec(**GROUPED),
                       FaultPlan.from_spec(GROUPED_CHAOS)).run()
        assert a.to_dict()["migrations"] == b.to_dict()["migrations"]

    def test_submit_group_admission_is_all_or_nothing(self):
        storm = FleetStorm(FleetSpec(seed=1, nodes=8, duration=5.0))
        scheduler = storm.migrations
        assert scheduler.submit(0, "rebalance")
        assert scheduler.submit_group([0, 1], "update") is None
        assert scheduler.submit_group([], "update") is None
        assert scheduler.submit_group([2, 2], "update") is None
        gid = scheduler.submit_group([2, 3], "update")
        assert gid is not None
        assert scheduler.submit_group([3, 4], "update") is None
        assert scheduler.groups[gid]["sids"] == {2, 3}
