"""Determinism regressions: the invariants record/replay depends on.

The flight recorder assumes the simulated platform is deterministic:
the event queue fires equal-time events in FIFO order, the kernel
schedules threads in stable round-robin order, all policy randomness
flows through the seeded RNG service, and the rewriter's wall clock is
injectable. Each test here pins one of those invariants.
"""

from __future__ import annotations

import random

from repro.cluster.events import EventQueue
from repro.core.rewriter import ProcessRewriter
from repro.core.rng import RngService
from repro.isa import X86_ISA
from repro.vm import Machine

THREE_THREADS = """
global int mtx;
global int trace[64];
global int cursor;

func note(int who) {
    lock(&mtx);
    trace[cursor] = who;
    cursor = cursor + 1;
    unlock(&mtx);
}

func worker(int who) {
    int i;
    i = 0;
    while (i < 5) { note(who); i = i + 1; }
}

func main() -> int {
    int a; int b;
    a = spawn(worker, 1);
    b = spawn(worker, 2);
    worker(0);
    join(a);
    join(b);
    print(cursor);
    return 0;
}
"""


class TestEventQueueFifo:
    def test_equal_time_events_fire_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for i in range(50):
            queue.schedule(1.0, lambda i=i: fired.append(i), label=f"e{i}")
        while not queue.empty():
            queue.step()
        assert fired == list(range(50))

    def test_interleaved_times_stay_stable(self):
        queue = EventQueue()
        fired = []
        # Schedule in a scrambled order with many ties; replaying the
        # same schedule must fire identically.
        entries = [(t, i) for i in range(10) for t in (2.0, 1.0, 2.0)]
        for seq, (t, i) in enumerate(entries):
            queue.schedule(t, lambda s=seq: fired.append(s),
                           label=f"s{seq}")
        queue.run_until(10.0)
        by_time = sorted(range(len(entries)),
                         key=lambda s: (entries[s][0], s))
        assert fired == by_time

    def test_on_fire_observer_sees_exact_order(self):
        queue = EventQueue()
        seen = []
        queue.on_fire = lambda when, label: seen.append((when, label))
        queue.schedule(1.0, lambda: None, label="a")
        queue.schedule(1.0, lambda: None, label="b")
        queue.schedule(0.5, lambda: None, label="c")
        queue.run_until(2.0)
        assert seen == [(0.5, "c"), (1.0, "a"), (1.0, "b")]


class TestSchedulerDeterminism:
    def _trace(self, engine, chains=False):
        machine = Machine(X86_ISA, block_engine=engine,
                          chain_engine=chains)
        from repro.compiler import compile_source
        program = compile_source(THREE_THREADS, "threads")
        machine.tmpfs.write("/bin/t", program.binary("x86_64").to_bytes())
        process = machine.spawn_process("/bin/t")
        order = []
        original = machine._run_thread

        def spy(proc, thread, quantum):
            order.append(thread.tid)
            return original(proc, thread, quantum)

        machine._run_thread = spy
        machine.run_process(process)
        return order, process.stdout()

    def test_round_robin_order_is_reproducible(self):
        first, out_first = self._trace(engine=True)
        second, out_second = self._trace(engine=True)
        assert first == second
        assert out_first == out_second

    def test_round_robin_order_matches_across_engines(self):
        blocks_order, blocks_out = self._trace(engine=True)
        interp_order, interp_out = self._trace(engine=False)
        assert blocks_order == interp_order
        assert blocks_out == interp_out

    def test_round_robin_order_matches_under_chains(self):
        """Tier-3 chains retire whole multi-block stretches per call;
        the slice stream handed to the scheduler must not change."""
        chains_order, chains_out = self._trace(engine=True, chains=True)
        interp_order, interp_out = self._trace(engine=False)
        assert chains_order == interp_order
        assert chains_out == interp_out


class TestRngService:
    def test_matches_ad_hoc_random(self):
        service = RngService(42)
        reference = random.Random(42)
        assert [service.randrange(1000, label="x") for _ in range(20)] \
            == [reference.randrange(1000) for _ in range(20)]

    def test_shuffle_matches_ad_hoc_random(self):
        service = RngService(7)
        reference = random.Random(7)
        a = list(range(32))
        b = list(range(32))
        service.shuffle(a, label="perm")
        reference.shuffle(b)
        assert a == b

    def test_observer_sees_every_draw(self):
        draws = []
        service = RngService(1, observer=lambda *d: draws.append(d))
        service.randrange(100, label="r")
        service.randint(0, 9, label="i")
        service.choice("abcd", label="c")
        service.shuffle(list(range(4)), label="s")
        assert [d[:2] for d in draws] == [
            ("rng", "r"), ("rng", "i"), ("rng", "c"), ("rng", "s")]

    def test_child_inherits_observer(self):
        draws = []
        parent = RngService(1, observer=lambda *d: draws.append(d),
                            name="parent")
        child = parent.child(2, "child")
        child.randrange(10, label="x")
        assert draws == [("child", "x", draws[0][2])]

    def test_same_seed_same_sequence(self):
        a = RngService(5)
        b = RngService(5)
        assert [a.randrange(1 << 30) for _ in range(10)] \
            == [b.randrange(1 << 30) for _ in range(10)]


class TestInjectableClock:
    def test_rewriter_uses_injected_clock(self):
        ticks = iter([10.0, 12.5])
        rewriter = ProcessRewriter(clock=lambda: next(ticks))
        assert rewriter.clock() == 10.0
        assert rewriter.clock() == 12.5

    def test_rewrite_report_timing_is_deterministic(self, tmp_path):
        from repro.compiler import compile_source
        from repro.core.policies.stack_shuffle import StackShufflePolicy
        from repro.core.runtime import DapperRuntime

        source = """
        global int acc;
        func bump(int i) -> int { acc = acc + i; return acc; }
        func main() -> int {
            int i;
            i = 0;
            while (i < 2000) { bump(i); i = i + 1; }
            print(acc);
            return 0;
        }
        """
        program = compile_source(source, "clocked")
        machine = Machine(X86_ISA)
        machine.tmpfs.write("/bin/t", program.binary("x86_64").to_bytes())
        process = machine.spawn_process("/bin/t")
        machine.step_all(2000)
        assert not process.exited
        runtime = DapperRuntime(machine, process)
        runtime.pause_at_equivalence_points()
        images = runtime.checkpoint()

        clock_values = iter([100.0, 100.25])
        rewriter = ProcessRewriter(clock=lambda: next(clock_values))
        policy = StackShufflePolicy(program.binary("x86_64"), seed=3,
                                    dst_exe_path="/bin/t.s")
        report = rewriter.rewrite(images, policy)[0]
        assert report.wall_seconds == 0.25
