"""Tests for the Dapper runtime monitor (pausing at equivalence points)."""

import pytest

from repro import sysabi
from repro.compiler import compile_source
from repro.core.migration import exe_path_for, install_program
from repro.core.runtime import DapperRuntime
from repro.isa import X86_ISA
from repro.vm import Machine
from repro.vm.cpu import ThreadStatus


def setup(program, steps=2000):
    machine = Machine(X86_ISA)
    install_program(machine, program)
    process = machine.spawn_process(
        exe_path_for(program.name, "x86_64"))
    machine.step_all(steps)
    assert not process.exited
    return machine, process


class TestPausing:
    def test_all_threads_park_at_entry_eqpoints(self, threaded_program):
        machine, process = setup(threaded_program)
        runtime = DapperRuntime(machine, process)
        tids = runtime.pause_at_equivalence_points()
        assert len(tids) == len(process.live_threads())
        stackmaps = threaded_program.binary("x86_64").stackmaps
        for tid in tids:
            thread = process.threads[tid]
            assert thread.status == ThreadStatus.TRAPPED
            point = stackmaps.by_addr[thread.pc]
            assert point.kind == "entry"
        assert process.stopped

    def test_flag_poked_through_ptrace(self, counter_program):
        machine, process = setup(counter_program)
        flag_addr = counter_program.binary("x86_64").symtab.address_of(
            sysabi.DAPPER_FLAG_SYMBOL)
        assert process.aspace.read_u64(flag_addr) == 0
        runtime = DapperRuntime(machine, process)
        runtime.pause_at_equivalence_points()
        assert process.aspace.read_u64(flag_addr) == 1

    def test_resume_continues_execution(self, counter_program,
                                         counter_reference_output):
        machine, process = setup(counter_program)
        runtime = DapperRuntime(machine, process)
        runtime.pause_at_equivalence_points()
        runtime.resume()
        machine.run_process(process)
        assert process.stdout() == counter_reference_output

    def test_repeated_pause_resume(self, counter_program,
                                   counter_reference_output):
        machine, process = setup(counter_program, steps=500)
        runtime = DapperRuntime(machine, process)
        for _ in range(5):
            runtime.pause_at_equivalence_points()
            runtime.resume()
            machine.step_all(200)
            if process.exited:
                break
        if not process.exited:
            machine.run_process(process)
        assert process.stdout() == counter_reference_output

    def test_checkpoint_clears_flag_in_dump(self, counter_program):
        machine, process = setup(counter_program)
        runtime = DapperRuntime(machine, process)
        runtime.pause_at_equivalence_points()
        images = runtime.checkpoint()
        flag_addr = counter_program.binary("x86_64").symtab.address_of(
            sysabi.DAPPER_FLAG_SYMBOL)
        from repro.core.rewriter import ImageMemory
        memory = ImageMemory(images)
        assert memory.read_u64(flag_addr) == 0


class TestLockInteraction:
    LOCKED_SOURCE = """
    global int m;
    global int progress;

    func tick() { progress = progress + 1; }

    func main() -> int {
        int i;
        lock(&m);
        i = 0;
        while (i < 2000) {
            tick();
            i = i + 1;
        }
        unlock(&m);
        i = 0;
        while (i < 2000) {
            tick();
            i = i + 1;
        }
        print(progress);
        return 0;
    }
    """

    def test_holder_never_parks_inside_critical_section(self):
        program = compile_source(self.LOCKED_SOURCE, "locked")
        machine = Machine(X86_ISA)
        install_program(machine, program)
        process = machine.spawn_process(exe_path_for("locked", "x86_64"))
        # Step into the critical section: the lock is taken early.
        machine.step_all(300)
        assert process.locks, "main should hold the lock by now"
        runtime = DapperRuntime(machine, process)
        runtime.pause_at_equivalence_points()
        # The thread must have run past unlock before parking.
        assert not process.locks, "parked while holding a lock"
        runtime.resume()
        machine.run_process(process)
        assert process.stdout() == "4000\n"
