"""Property/fuzz tests for the CRIU image codecs and the restore guard.

Two invariants for every image kind:

1. *Roundtrip*: ``from_bytes(to_bytes(x))`` reproduces the image.
2. *Total decoding*: for arbitrary, truncated, or bit-flipped input,
   ``from_bytes`` either succeeds or raises :class:`ImageFormatError` —
   never ``KeyError``/``IndexError``/``struct.error``/``WireError``.

Plus one for whole image *sets* (the restore guard's contract): any
mutation of a real checkpoint, pushed through the armed verifier and
through ``restore_process``, yields only typed errors
(``ImageFormatError`` / ``VerifyError`` / ``RestoreError`` / ``WireError``)
or an honest restore — never a raw ``KeyError``/``struct.error`` and
never a silent restore of corrupted bytes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.migration import exe_path_for, install_program
from repro.core.runtime import DapperRuntime
from repro.criu.images import (PE_PARENT, CoreImage, FilesImage,
                               ImageSet, InventoryImage, MmImage,
                               PagemapEntry, PagemapImage)
from repro.criu.restore import restore_process
from repro.errors import (ImageFormatError, RestoreError, VerifyError,
                          WireError)
from repro.isa import X86_ISA
from repro.mem.vma import Vma
from repro.verify import image_page_digests, verify_images
from repro.vm import Machine

u32 = st.integers(min_value=0, max_value=2 ** 32 - 1)
u48 = st.integers(min_value=0, max_value=2 ** 48 - 1)
i64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
name = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=24)

IMAGE_KINDS = [InventoryImage, CoreImage, MmImage, FilesImage,
               PagemapImage]


def sample_images():
    """One representative instance per image kind."""
    return [
        InventoryImage(42, "x86_64", "app", [1, 2, 3], lazy=True,
                       parent="ab" * 16),
        CoreImage(2, "aarch64", 0x400100, -1, 0x20000000, "trapped",
                  {7: 123, 16: -1}),
        MmImage([Vma(0x1000, 0x3000, 0b101, "code", True, "/bin/a", 0),
                 Vma(0x7000, 0x9000, 0b110, "stack:1", False, "", 0)],
                0x500000),
        FilesImage("/bin/app.x86_64", "x86_64"),
        PagemapImage([PagemapEntry(0x1000, 2),
                      PagemapEntry(0x5000, 3, PE_PARENT)]),
    ]


class TestRoundtrips:
    @given(pid=u32, tids=st.lists(u32, max_size=6), parent=name,
           lazy=st.booleans())
    def test_inventory(self, pid, tids, parent, lazy):
        image = InventoryImage(pid, "x86_64", "prog", tids, lazy=lazy,
                               parent=parent)
        copy = InventoryImage.from_bytes(image.to_bytes())
        assert (copy.pid, copy.tids, copy.parent, copy.lazy) == \
            (pid, tids, parent, lazy)

    @given(tid=u32, pc=u48, flags=i64, tls=u48,
           regs=st.dictionaries(st.integers(0, 64), i64, max_size=8))
    def test_core(self, tid, pc, flags, tls, regs):
        image = CoreImage(tid, "aarch64", pc, flags, tls, "running",
                          regs)
        copy = CoreImage.from_bytes(image.to_bytes())
        assert (copy.tid, copy.pc, copy.flags, copy.tls_base) == \
            (tid, pc, flags, tls)
        assert copy.regs == regs

    @given(heap=u48, starts=st.lists(u32, min_size=0, max_size=4,
                                     unique=True))
    def test_mm(self, heap, starts):
        vmas = [Vma(s * 0x1000, s * 0x1000 + 0x2000, 0b110,
                    f"vma{i}", False, "", 0)
                for i, s in enumerate(sorted(starts))]
        copy = MmImage.from_bytes(MmImage(vmas, heap).to_bytes())
        assert copy.heap_end == heap
        assert [(v.start, v.end, v.name) for v in copy.vmas] == \
            [(v.start, v.end, v.name) for v in vmas]

    @given(path=name, arch=name)
    def test_files(self, path, arch):
        copy = FilesImage.from_bytes(FilesImage(path, arch).to_bytes())
        assert (copy.exe_path, copy.exe_arch) == (path, arch)

    @given(entries=st.lists(
        st.tuples(u48, st.integers(1, 16),
                  st.sampled_from([0, PE_PARENT])),
        max_size=6))
    def test_pagemap(self, entries):
        image = PagemapImage([PagemapEntry(v * 0x1000, n, f)
                              for v, n, f in entries])
        copy = PagemapImage.from_bytes(image.to_bytes())
        assert [(e.vaddr, e.nr_pages, e.flags) for e in copy.entries] \
            == [(e.vaddr, e.nr_pages, e.flags)
                for e in image.entries]
        assert copy.total_pages() == image.total_pages()
        assert copy.data_pages() + copy.parent_pages() == \
            copy.total_pages()


class TestMalformedInputsAreContained:
    """Arbitrary bytes must produce ImageFormatError, nothing rawer."""

    def _assert_contained(self, kind, blob):
        try:
            kind.from_bytes(blob)
        except ImageFormatError:
            pass  # the contract: exactly this error for bad input

    @pytest.mark.parametrize("kind", IMAGE_KINDS)
    @given(blob=st.binary(max_size=64))
    def test_random_bytes(self, kind, blob):
        self._assert_contained(kind, blob)

    @pytest.mark.parametrize("image", sample_images(),
                             ids=lambda i: type(i).__name__)
    def test_truncations(self, image):
        blob = image.to_bytes()
        kind = type(image)
        for cut in range(len(blob)):
            self._assert_contained(kind, blob[:cut])

    @pytest.mark.parametrize("image", sample_images(),
                             ids=lambda i: type(i).__name__)
    def test_bit_flips(self, image):
        blob = image.to_bytes()
        kind = type(image)
        for pos in range(len(blob)):
            for bit in (0, 3, 7):
                flipped = bytearray(blob)
                flipped[pos] ^= 1 << bit
                self._assert_contained(kind, bytes(flipped))

    @pytest.mark.parametrize("image", sample_images(),
                             ids=lambda i: type(i).__name__)
    def test_bad_magic_rejected(self, image):
        blob = bytearray(image.to_bytes())
        blob[0] ^= 0xFF
        with pytest.raises(ImageFormatError):
            type(image).from_bytes(bytes(blob))

    def test_wrong_kind_magic_rejected(self):
        """Feeding one kind's bytes to another kind's decoder fails
        cleanly at the magic check."""
        images = sample_images()
        for image in images:
            for other in IMAGE_KINDS:
                if isinstance(image, other):
                    continue
                with pytest.raises(ImageFormatError):
                    other.from_bytes(image.to_bytes())

    def test_missing_required_fields_rejected(self):
        from repro.criu.images import (_INVENTORY_SCHEMA, _wrap)
        # an inventory with no pid: structurally valid wire data but
        # semantically incomplete
        payload = _INVENTORY_SCHEMA.encode({"arch": "x86_64"})
        with pytest.raises(ImageFormatError):
            InventoryImage.from_bytes(_wrap("inventory", payload))


# Every error the image stack is allowed to surface for a damaged set.
TYPED = (ImageFormatError, VerifyError, RestoreError, WireError)


@pytest.fixture(scope="module")
def real_checkpoint(counter_program):
    """A genuine checkpoint plus the ground truth the sender would ship:
    the linked binary, the whole-set digest and the per-page manifest."""
    machine = Machine(X86_ISA, name="src")
    install_program(machine, counter_program)
    process = machine.spawn_process(exe_path_for("counter", "x86_64"))
    machine.step_all(2500)
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    images = runtime.checkpoint()
    return {
        "files": dict(images.files),
        "binary": counter_program.binary("x86_64"),
        "digest": images.content_digest(),
        "pages": image_page_digests(images),
        "program": counter_program,
    }


def _mutations(files):
    """A bounded sweep of whole-set mutations: bit flips at a stride
    through every file, truncations, and file deletions."""
    for name in sorted(files):
        blob = files[name]
        stride = max(1, len(blob) // 12)
        for pos in range(0, len(blob), stride):
            flipped = bytearray(blob)
            flipped[pos] ^= 1 << (pos % 8)
            yield f"{name}:flip@{pos}", {**files, name: bytes(flipped)}
        for cut in (0, len(blob) // 3, max(0, len(blob) - 3)):
            yield f"{name}:cut@{cut}", {**files, name: blob[:cut]}
        survivors = {k: v for k, v in files.items() if k != name}
        yield f"{name}:deleted", survivors


class TestMutatedSetsAreContained:
    """The restore guard's end-to-end promise, fuzzed over a real dump."""

    def test_armed_verifier_catches_every_mutation(self, real_checkpoint):
        """With the sender's digest manifest, no mutation that changes
        bytes can pass verification — and no failure is ever a raw
        KeyError/struct.error."""
        pristine = real_checkpoint["files"]
        for label, mutated_files in _mutations(pristine):
            mutated = ImageSet(dict(mutated_files))
            if mutated.content_digest() == real_checkpoint["digest"]:
                continue  # a no-op mutation would be honest to accept
            with pytest.raises(TYPED):
                verify_images(mutated,
                              binary=real_checkpoint["binary"],
                              page_digests=real_checkpoint["pages"],
                              expected_digest=real_checkpoint["digest"])

    def test_restore_never_leaks_raw_errors(self, real_checkpoint):
        """restore_process on a mutated set either restores (when its
        own checks can't see the damage — the armed verifier above is
        the layer that can) or raises a typed error."""
        program = real_checkpoint["program"]
        for label, mutated_files in _mutations(real_checkpoint["files"]):
            machine = Machine(X86_ISA, name="dst")
            install_program(machine, program)
            mutated = ImageSet(dict(mutated_files))
            try:
                restore_process(machine, mutated)
            except TYPED:
                continue
            except Exception as exc:  # noqa: BLE001 - the assertion
                pytest.fail(f"{label}: raw {type(exc).__name__}: {exc}")

    def test_pristine_set_passes_both_layers(self, real_checkpoint):
        images = ImageSet(dict(real_checkpoint["files"]))
        report = verify_images(images,
                               binary=real_checkpoint["binary"],
                               page_digests=real_checkpoint["pages"],
                               expected_digest=real_checkpoint["digest"])
        assert report.ok
        machine = Machine(X86_ISA, name="dst")
        install_program(machine, real_checkpoint["program"])
        process = restore_process(machine, images)
        machine.run_process(process)
        assert process.exit_code == 0
