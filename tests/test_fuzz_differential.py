"""Differential fuzzing of the entire stack.

Random DapperC programs (deterministic per seed) are pushed through
every pipeline and must behave identically everywhere:

* native x86_64 vs native aarch64 (compiler + VM),
* native vs migrated-at-a-random-point (runtime + CRIU + cross-ISA
  rewriter),
* native vs shuffled-mid-run (SBI + same-ISA retargeting).

Any divergence — exit code, output bytes, or a crash — is a real bug in
one of the layers.
"""

import random

import pytest

from repro.compiler import compile_source
from repro.core.migration import (MigrationPipeline, exe_path_for,
                                  install_program)
from repro.core.policies.stack_shuffle import StackShufflePolicy
from repro.core.rewriter import ProcessRewriter
from repro.core.runtime import DapperRuntime
from repro.criu.restore import restore_process
from repro.errors import MigrationError
from repro.isa import ARM_ISA, X86_ISA, get_isa
from repro.testing import generate_program
from repro.vm import Machine

SEEDS = list(range(20))
MIGRATION_SEEDS = list(range(10))
SHUFFLE_SEEDS = list(range(8))


def _native(program, arch, max_steps=3_000_000):
    machine = Machine(get_isa(arch))
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(program.name, arch))
    machine.run_process(process, max_steps=max_steps)
    return process


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_dual_isa_equivalence(seed):
    source = generate_program(seed)
    program = compile_source(source, f"fuzz{seed}")
    x86 = _native(program, "x86_64")
    arm = _native(program, "aarch64")
    assert x86.exit_code == arm.exit_code == 0
    assert x86.stdout() == arm.stdout()
    assert x86.stdout().strip(), "generated program must print something"


@pytest.mark.parametrize("seed", MIGRATION_SEEDS)
def test_fuzz_migration_at_random_point(seed):
    source = generate_program(seed)
    program = compile_source(source, f"fuzz{seed}")
    reference = _native(program, "x86_64")
    total = reference.instr_total
    rng = random.Random(seed * 7919 + 13)
    warmup = rng.randrange(max(1, total // 10), max(2, int(total * 0.9)))
    pipeline = MigrationPipeline(Machine(X86_ISA, name="src"),
                                 Machine(ARM_ISA, name="dst"), program)
    try:
        result = pipeline.run_and_migrate(warmup_steps=warmup)
    except MigrationError:
        # The random point landed after program exit — legitimate.
        return
    assert result.combined_output() == reference.stdout()
    assert result.process.exit_code == 0


@pytest.mark.parametrize("seed", MIGRATION_SEEDS)
def test_fuzz_migration_reverse_direction(seed):
    source = generate_program(seed + 1000)
    program = compile_source(source, f"fuzzrev{seed}")
    reference = _native(program, "aarch64")
    warmup = max(1, reference.instr_total // 3)
    pipeline = MigrationPipeline(Machine(ARM_ISA, name="src"),
                                 Machine(X86_ISA, name="dst"), program)
    try:
        result = pipeline.run_and_migrate(warmup_steps=warmup)
    except MigrationError:
        return
    assert result.combined_output() == reference.stdout()


@pytest.mark.parametrize("seed", SHUFFLE_SEEDS)
@pytest.mark.parametrize("arch", ["x86_64", "aarch64"])
def test_fuzz_shuffle_mid_run(seed, arch):
    source = generate_program(seed + 500)
    program = compile_source(source, f"fuzzshuf{seed}")
    reference = _native(program, arch)
    machine = Machine(get_isa(arch), name="host")
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(program.name, arch))
    machine.step_all(max(1, reference.instr_total // 2))
    if process.exited:
        assert process.stdout() == reference.stdout()
        return
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    before = process.stdout()
    images = runtime.checkpoint()
    runtime.kill_source()
    policy = StackShufflePolicy(program.binary(arch), seed=seed * 31 + 7,
                                dst_exe_path=f"/bin/{program.name}.shuf")
    ProcessRewriter().rewrite(images, policy)
    machine.tmpfs.write(policy.dst_exe_path,
                        policy.shuffled_binary.to_bytes())
    restored = restore_process(machine, images)
    machine.run_process(restored, max_steps=3_000_000)
    assert before + restored.stdout() == reference.stdout()


def test_generator_is_deterministic():
    assert generate_program(42) == generate_program(42)
    assert generate_program(42) != generate_program(43)


def test_generator_produces_parseable_programs():
    from repro.compiler.parser import parse
    for seed in range(40):
        parse(generate_program(seed))   # must not raise (prelude-free)
