"""Checkpoint plugin pipeline tests: the ordered registry, per-plugin
image sections, extensibility without touching core code, the sockets
and tmpfs plugins, per-plugin verify attribution, and the lazy restore
path's guard routing."""

from __future__ import annotations

import pytest

from repro import wire
from repro.core.migration import exe_path_for, install_program
from repro.core.runtime import DapperRuntime
from repro.criu.dump import dump_process
from repro.criu.images import ImageSet, _decode, _wrap, register_magic
from repro.criu.lazy import restore_process_lazy
from repro.criu.plugins import (CheckpointPlugin, DumpContext,
                                PluginRegistry, default_registry)
from repro.criu.plugins.sockets import SocketsImage, sockets_img
from repro.criu.plugins.tmpfs import TmpfsImage, tmpfs_img
from repro.criu.restore import restore_process
from repro.errors import CheckpointError, VerifyError
from repro.isa import X86_ISA
from repro.mem.paging import PAGE_SIZE
from repro.verify import image_page_digests, verify_images
from repro.vm import Machine


@pytest.fixture
def parked(counter_program):
    """A counter process parked at an equivalence point, SIGSTOPped."""
    machine = Machine(X86_ISA, name="src")
    install_program(machine, counter_program)
    process = machine.spawn_process(exe_path_for("counter", "x86_64"))
    machine.step_all(2500)
    assert not process.exited
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    return machine, process, runtime


def fresh_dst(counter_program, name="dst"):
    machine = Machine(X86_ISA, name=name)
    install_program(machine, counter_program)
    return machine


CONNECTIONS = [
    {"cid": 0, "src_pid": 100, "dst_pid": 102, "payload": "GET /key-1"},
    {"cid": 3, "src_pid": 101, "dst_pid": 100, "payload": "GET /key-9"},
]


class TestRegistry:
    def test_default_order_is_restore_dependency_order(self):
        assert default_registry().names() == [
            "files", "vmas", "task", "registers", "tls", "tmpfs",
            "sockets"]

    def test_register_anchored(self):
        registry = default_registry()

        class P(CheckpointPlugin):
            name = "custom"
        registry.register(P(), after="vmas")
        assert registry.names().index("custom") == \
            registry.names().index("vmas") + 1
        registry2 = default_registry()
        registry2.register(P(), before="files")
        assert registry2.names()[0] == "custom"

    def test_duplicate_and_ambiguous_anchors_rejected(self):
        registry = default_registry()
        with pytest.raises(CheckpointError):
            registry.register(default_registry().get("vmas"))

        class P(CheckpointPlugin):
            name = "p"
        with pytest.raises(CheckpointError):
            registry.register(P(), before="files", after="vmas")
        with pytest.raises(CheckpointError):
            registry.get("nope")

    def test_section_and_code_ownership(self):
        registry = default_registry()
        assert registry.plugin_for_file("pages-1.img") == "vmas"
        assert registry.plugin_for_file("core-1.img") == "registers"
        assert registry.plugin_for_file("sockets.img") == "sockets"
        assert registry.plugin_for_code("socket-dup") == "sockets"
        assert registry.plugin_for_code("decode:core-2.img") == "registers"
        assert registry.plugin_for_file("nonsense.bin") is None


class TestPluginDump:
    def test_no_extra_emits_no_optional_sections(self, parked):
        _, process, _ = parked
        images = dump_process(process)
        assert "sockets.img" not in images.files
        assert "tmpfs.img" not in images.files

    def test_dump_is_deterministic_across_registries(self, parked):
        """Two fresh registries dump byte-identical image sets — the
        refactor's parity guarantee."""
        _, process, _ = parked
        a = dump_process(process, registry=default_registry())
        b = dump_process(process, registry=default_registry())
        assert a.content_digest() == b.content_digest()
        assert a.files.keys() == b.files.keys()

    def test_extra_sections_do_not_perturb_core_sections(self, parked):
        _, process, _ = parked
        plain = dump_process(process)
        extra = dump_process(process,
                             extra={"connections": CONNECTIONS})
        assert set(extra.files) - set(plain.files) == {"sockets.img"}
        for name in plain.files:
            assert plain.files[name] == extra.files[name]


class TestExtensibility:
    def test_new_resource_class_without_touching_core(self, parked,
                                                      counter_program):
        """The tentpole claim: a brand-new plugin — own magic, wire
        schema, section, restore hook, verify finding — dumps and
        restores through the unchanged core drivers."""
        _, process, _ = parked

        MAGIC = register_magic("leases", 0x4C454153)
        SCHEMA = wire.Schema("leases", [wire.field(1, "owner", "str")])

        class LeasesPlugin(CheckpointPlugin):
            name = "leases"
            sections = ("leases.img",)
            codes = ("lease-owner",)

            def dump(self, ctx, images):
                owner = ctx.extra.get("lease_owner")
                if owner:
                    images.files["leases.img"] = _wrap(
                        "leases", SCHEMA.encode({"owner": owner}))

            def restore(self, ctx, images):
                blob = images.files.get("leases.img")
                if blob is not None:
                    data = _decode("leases", SCHEMA, blob)
                    ctx.process.restored_lease = data["owner"]

            def verify(self, images, report, binary=None, store=None):
                if "leases.img" in images.files:
                    report.checks += 1

        registry = default_registry()
        registry.register(LeasesPlugin(), after="sockets")
        images = dump_process(process, extra={"lease_owner": "node-7"},
                              registry=registry)
        assert "leases.img" in images.files
        assert registry.plugin_for_file("leases.img") == "leases"

        dst = fresh_dst(counter_program)
        restored = restore_process(dst, images, registry=registry)
        assert restored.restored_lease == "node-7"
        assert MAGIC == 0x4C454153

    def test_unextended_registry_rejects_nothing(self, parked,
                                                 counter_program):
        """A dump from an extended registry still restores through the
        default registry — unknown optional sections must not break
        consumers that never registered the plugin."""
        _, process, _ = parked
        images = dump_process(process,
                              extra={"connections": CONNECTIONS})
        dst = fresh_dst(counter_program)
        restored = restore_process(dst, images)
        assert restored.restored_connections == CONNECTIONS


class TestSocketsPlugin:
    def test_journal_and_reattach(self, parked, counter_program):
        _, process, _ = parked
        images = dump_process(process,
                              extra={"connections": CONNECTIONS})
        assert sockets_img(images).connections == CONNECTIONS
        dst = fresh_dst(counter_program)
        restored = restore_process(dst, images)
        assert restored.restored_connections == CONNECTIONS

    def test_image_round_trip(self):
        image = SocketsImage(CONNECTIONS)
        again = SocketsImage.from_bytes(image.to_bytes())
        assert again.connections == CONNECTIONS

    def test_verify_attributes_findings_to_plugin(self, parked,
                                                  counter_program):
        """Per-plugin verify: a duplicated cid and a connection that
        does not touch the dumped pid are semantic findings stamped
        with the sockets plugin's name."""
        _, process, _ = parked
        bad = [
            {"cid": 1, "src_pid": process.pid, "dst_pid": 999,
             "payload": "a"},
            {"cid": 1, "src_pid": process.pid, "dst_pid": 999,
             "payload": "a"},
            {"cid": 2, "src_pid": 777, "dst_pid": 888, "payload": "b"},
        ]
        images = dump_process(process, extra={"connections": bad})
        report = verify_images(
            images, binary=counter_program.binary("x86_64"),
            raise_on_fail=False)
        codes = {f.code for f in report.findings}
        assert {"socket-dup", "socket-owner"} <= codes
        assert all(f.plugin == "sockets" for f in report.findings)
        assert report.by_plugin()["sockets"] == len(report.findings)


class TestTmpfsPlugin:
    def test_snapshot_and_recreate(self, parked, counter_program):
        machine, process, _ = parked
        machine.tmpfs.write("/var/app.journal", b"aof-bytes")
        images = dump_process(
            process, extra={"tmpfs_paths": ["/var/app.journal"]})
        assert tmpfs_img(images).entries == {
            "/var/app.journal": b"aof-bytes"}
        dst = fresh_dst(counter_program)
        restore_process(dst, images)
        assert dst.tmpfs.read("/var/app.journal") == b"aof-bytes"

    def test_missing_named_path_is_a_dump_error(self, parked):
        _, process, _ = parked
        with pytest.raises(CheckpointError):
            dump_process(process, extra={"tmpfs_paths": ["/no/such"]})

    def test_image_round_trip(self):
        image = TmpfsImage({"/a": b"1", "/b": b""})
        assert TmpfsImage.from_bytes(image.to_bytes()).entries == \
            {"/a": b"1", "/b": b""}


def _text_vaddr(images: ImageSet, binary) -> int:
    text = next(s for s in binary.segments if s.section == ".text")
    for entry in images.pagemap().entries:
        for i in range(entry.nr_pages):
            vaddr = entry.vaddr + i * PAGE_SIZE
            if text.vaddr <= vaddr < text.vaddr + text.size:
                return vaddr
    raise AssertionError("no text page dumped")


def _corrupt_page(images: ImageSet, vaddr: int) -> ImageSet:
    offset = 0
    for entry in images.pagemap().entries:
        for i in range(entry.nr_pages):
            if entry.vaddr + i * PAGE_SIZE == vaddr:
                blob = bytearray(images.pages())
                blob[offset + 7] ^= 0xA5
                mutated = ImageSet(dict(images.files))
                mutated.set_pages(bytes(blob))
                return mutated
            offset += PAGE_SIZE
    raise AssertionError(f"page {vaddr:#x} not dumped")


class TestLazyRestoreGuard:
    """Regression: restore_process_lazy routes through the restore
    guard exactly like restore_process — a corrupt minimal image is
    rejected before the process is built."""

    def test_corrupt_lazy_image_rejected_by_guard(self, parked,
                                                  counter_program):
        _, _, runtime = parked
        binary = counter_program.binary("x86_64")
        images, server = runtime.checkpoint_lazy()
        mutated = _corrupt_page(images, _text_vaddr(images, binary))
        dst = fresh_dst(counter_program)
        with pytest.raises(VerifyError):
            restore_process_lazy(dst, mutated, server, verify=True)
        assert not dst.processes      # nothing half-built

    def test_verify_false_still_bypasses(self, parked, counter_program):
        _, _, runtime = parked
        images, server = runtime.checkpoint_lazy()
        dst = fresh_dst(counter_program)
        restored = restore_process_lazy(dst, images, server,
                                        verify=False)
        code = dst.run_process(restored)
        assert code == 0

    def test_clean_lazy_image_passes_guard(self, parked,
                                           counter_program,
                                           counter_reference_output):
        _, process, runtime = parked
        output_before = process.stdout()
        images, server = runtime.checkpoint_lazy()
        dst = fresh_dst(counter_program)
        restored = restore_process_lazy(dst, images, server, verify=True)
        dst.run_process(restored)
        assert output_before + restored.stdout() == \
            counter_reference_output


class TestDumpContract:
    def test_validate_precedence_is_registry_independent(self, parked):
        """Contract errors come from DumpContext.validate, so they fire
        identically no matter how the registry is extended."""
        machine, process, runtime = parked
        runtime.resume()
        machine.step_all(10)
        with pytest.raises(CheckpointError):
            dump_process(process)           # not stopped
        registry = PluginRegistry([])       # even an EMPTY registry
        with pytest.raises(CheckpointError):
            registry.dump(DumpContext(process))
