"""Smoke tests: every shipped example must run clean end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "heterogeneous_cluster.py",
    "stack_shuffle_defense.py",
    "lazy_migration.py",
    "live_update.py",
    "time_travel_debug.py",
]


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example):
    path = os.path.join(EXAMPLES_DIR, example)
    result = subprocess.run([sys.executable, path], capture_output=True,
                            text=True, timeout=180)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they do"


def test_quickstart_verifies_migration():
    path = os.path.join(EXAMPLES_DIR, "quickstart.py")
    result = subprocess.run([sys.executable, path], capture_output=True,
                            text=True, timeout=180)
    assert "identical to native run: True" in result.stdout


def test_defense_example_reports_mitigation():
    path = os.path.join(EXAMPLES_DIR, "stack_shuffle_defense.py")
    result = subprocess.run([sys.executable, path], capture_output=True,
                            text=True, timeout=180)
    assert "successes: 0/" in result.stdout
