"""Tests for the memory substrate: paging, VMAs, address spaces."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryError_, SegmentationFault
from repro.mem import AddressSpace, PAGE_SIZE, Prot, Vma
from repro.mem.paging import (page_align_down, page_align_up, page_number,
                              pages_spanning)


class TestPaging:
    def test_align_down(self):
        assert page_align_down(0) == 0
        assert page_align_down(4095) == 0
        assert page_align_down(4096) == 4096
        assert page_align_down(8191) == 4096

    def test_align_up(self):
        assert page_align_up(0) == 0
        assert page_align_up(1) == 4096
        assert page_align_up(4096) == 4096

    def test_page_number(self):
        assert page_number(0) == 0
        assert page_number(4096 * 7 + 5) == 7

    def test_pages_spanning(self):
        assert list(pages_spanning(100, 1)) == [0]
        assert list(pages_spanning(4000, 200)) == [0, 4096]
        assert list(pages_spanning(0, 0)) == []

    @given(st.integers(min_value=0, max_value=2 ** 48))
    def test_align_invariants(self, addr):
        down = page_align_down(addr)
        up = page_align_up(addr)
        assert down <= addr <= up
        assert down % PAGE_SIZE == 0
        assert up % PAGE_SIZE == 0
        assert up - down in (0, PAGE_SIZE)


class TestVma:
    def test_basic(self):
        vma = Vma(0x1000, 0x3000, Prot.RW, name="data")
        assert vma.size == 0x2000
        assert vma.contains(0x1000)
        assert vma.contains(0x2FFF)
        assert not vma.contains(0x3000)

    def test_unaligned_rejected(self):
        with pytest.raises(MemoryError_):
            Vma(0x1001, 0x3000, Prot.RW)

    def test_empty_rejected(self):
        with pytest.raises(MemoryError_):
            Vma(0x3000, 0x3000, Prot.RW)

    def test_overlap_detection(self):
        a = Vma(0x1000, 0x3000, Prot.RW)
        b = Vma(0x2000, 0x4000, Prot.RW)
        c = Vma(0x3000, 0x4000, Prot.RW)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_dict_roundtrip(self):
        vma = Vma(0x400000, 0x402000, Prot.RX, name=".text",
                  file_backed=True, file_path="/bin/x", file_offset=0)
        copy = Vma.from_dict(vma.to_dict())
        assert copy.start == vma.start
        assert copy.file_backed
        assert copy.file_path == "/bin/x"

    def test_prot_describe(self):
        assert Prot.describe(Prot.RW) == "rw-"
        assert Prot.describe(Prot.RX) == "r-x"
        assert Prot.describe(0) == "---"


class TestAddressSpace:
    def _space(self):
        space = AddressSpace()
        space.map(Vma(0x1000, 0x5000, Prot.RW, name="data"))
        space.map(Vma(0x400000, 0x401000, Prot.RX, name=".text"))
        return space

    def test_rw_roundtrip(self):
        space = self._space()
        space.write(0x1100, b"hello world")
        assert space.read(0x1100, 11) == b"hello world"

    def test_unwritten_reads_zero(self):
        space = self._space()
        assert space.read(0x2000, 16) == bytes(16)

    def test_cross_page_write(self):
        space = self._space()
        data = bytes(range(256)) * 20
        space.write(0x1F00, data)
        assert space.read(0x1F00, len(data)) == data

    def test_unmapped_read_faults(self):
        space = self._space()
        with pytest.raises(SegmentationFault):
            space.read(0x9000, 1)

    def test_write_to_rx_faults(self):
        space = self._space()
        with pytest.raises(SegmentationFault):
            space.write(0x400000, b"\x90")

    def test_exec_requires_x(self):
        space = self._space()
        with pytest.raises(SegmentationFault):
            space.fetch(0x1000, 4)
        space.write_code(0x400000, b"\x90\x90")
        assert space.fetch(0x400000, 2) == b"\x90\x90"

    def test_straddling_mapping_faults(self):
        space = self._space()
        with pytest.raises(SegmentationFault):
            space.read(0x4FFC, 16)

    def test_overlap_map_rejected(self):
        space = self._space()
        with pytest.raises(MemoryError_):
            space.map(Vma(0x2000, 0x3000, Prot.RW))

    def test_unmap_drops_pages(self):
        space = self._space()
        space.write(0x1100, b"x")
        space.unmap(0x1000, 0x5000)
        assert space.find_vma(0x1100) is None
        assert list(space.populated_pages()) == []

    def test_u64_roundtrip(self):
        space = self._space()
        space.write_u64(0x1200, 0xDEADBEEFCAFEF00D)
        assert space.read_u64(0x1200) == 0xDEADBEEFCAFEF00D
        space.write_i64(0x1208, -42)
        assert space.read_i64(0x1208) == -42

    def test_populated_pages_sorted(self):
        space = self._space()
        space.write(0x3000, b"b")
        space.write(0x1000, b"a")
        bases = [b for b, _ in space.populated_pages()]
        assert bases == sorted(bases)

    def test_install_page_requires_full_page(self):
        space = self._space()
        with pytest.raises(MemoryError_):
            space.install_page(0x1000, b"short")
        space.install_page(0x1000, bytes(PAGE_SIZE))

    def test_clone_is_deep(self):
        space = self._space()
        space.write(0x1100, b"orig")
        copy = space.clone()
        copy.write(0x1100, b"copy")
        assert space.read(0x1100, 4) == b"orig"
        assert copy.read(0x1100, 4) == b"copy"

    def test_vma_by_name(self):
        space = self._space()
        assert space.vma_by_name(".text").start == 0x400000
        assert space.vma_by_name("nope") is None

    def test_read_cstr(self):
        space = self._space()
        space.write(0x1100, b"hello\x00world")
        assert space.read_cstr(0x1100) == "hello"

    def test_missing_page_hook_serves_reads(self):
        space = self._space()
        served = []

        def hook(base):
            served.append(base)
            return b"\xAB" * PAGE_SIZE

        space.missing_page_hook = hook
        assert space.read(0x2000, 2) == b"\xAB\xAB"
        assert served == [0x2000]
        # Second read hits the installed page, not the hook.
        assert space.read(0x2008, 1) == b"\xAB"
        assert served == [0x2000]

    def test_missing_page_hook_none_means_zero(self):
        space = self._space()
        space.missing_page_hook = lambda base: None
        assert space.read(0x2000, 4) == bytes(4)

    @given(st.integers(min_value=0, max_value=0x3F00),
           st.binary(min_size=1, max_size=300))
    def test_write_read_property(self, offset, data):
        space = AddressSpace()
        space.map(Vma(0x0, 0x5000, Prot.RW))
        space.write(offset, data)
        assert space.read(offset, len(data)) == data
