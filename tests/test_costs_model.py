"""Tests for the calibrated cost model and interpreter corner cases."""

import pytest

from repro.compiler import compile_source
from repro.core.costs import (DEFAULT_PROFILES, ethernet_link,
                              infiniband_link, profile_for_arch,
                              rpi_profile, xeon_profile)
from repro.core.migration import exe_path_for, install_program
from repro.isa import ARM_ISA, X86_ISA
from repro.mem.paging import PAGE_SIZE
from repro.vm import Machine


class TestNodeProfiles:
    def test_paper_power_calibration(self):
        # §IV: Xeon 108 W at 7 busy cores; Pi 5.1 W at 3 busy cores.
        assert xeon_profile().power_watts(7) == pytest.approx(108.0)
        assert rpi_profile().power_watts(3) == pytest.approx(5.1)

    def test_power_capped_at_core_count(self):
        pi = rpi_profile()
        assert pi.power_watts(100) == pi.power_watts(pi.cores)

    def test_recode_rate_gap_matches_paper(self):
        # Paper: identical recode logic, ≈4× slower on the Pi.
        ratio = (xeon_profile().recode_bytes_per_s
                 / rpi_profile().recode_bytes_per_s)
        assert 3.5 < ratio < 4.5

    def test_recode_seconds_monotone_in_bytes_and_frames(self):
        profile = xeon_profile()
        assert profile.recode_seconds(2_000_000, 5) < \
            profile.recode_seconds(4_000_000, 5)
        assert profile.recode_seconds(2_000_000, 5) < \
            profile.recode_seconds(2_000_000, 50)

    def test_seconds_for_cycles(self):
        xeon = xeon_profile()
        assert xeon.seconds_for_cycles(xeon.freq_hz * xeon.ipc) == \
            pytest.approx(1.0)

    def test_profile_for_arch(self):
        assert profile_for_arch("x86_64").arch == "x86_64"
        assert profile_for_arch("aarch64").arch == "aarch64"
        assert set(DEFAULT_PROFILES) == {"x86_64", "aarch64"}


class TestLinks:
    def test_transfer_includes_overhead(self):
        link = infiniband_link()
        assert link.transfer_seconds(0) >= link.scp_overhead_s

    def test_page_fault_cost_scales(self):
        link = ethernet_link()
        assert link.page_fault_seconds(10) == \
            pytest.approx(10 * link.page_fault_seconds(1))

    def test_page_fault_includes_roundtrip(self):
        link = ethernet_link()
        assert link.page_fault_seconds(1) > 2 * link.latency_s
        assert link.page_fault_seconds(1) > \
            PAGE_SIZE / link.bandwidth_bytes_per_s


class TestInterpreterCorners:
    def _run(self, source, isa=X86_ISA):
        program = compile_source(source, "corner")
        machine = Machine(isa)
        install_program(machine, program)
        process = machine.spawn_process(exe_path_for("corner", isa.name))
        machine.run_process(process)
        return process

    def test_signed_overflow_wraps_identically(self):
        source = """
        func main() -> int {
            int big;
            big = 0x7FFFFFFFFFFFFF;
            big = big * 1000;
            print(big);
            print(big * big);
            return 0;
        }
        """
        x86 = self._run(source, X86_ISA).stdout()
        arm = self._run(source, ARM_ISA).stdout()
        assert x86 == arm

    def test_shift_count_masked(self):
        source = """
        func main() -> int {
            int x;
            x = 1;
            print(x << 70);
            print((x << 63) >> 63);
            return 0;
        }
        """
        out = self._run(source).stdout()
        assert out.splitlines()[0] == str(1 << (70 & 63))
        assert out.splitlines()[1] == "1"

    def test_negative_modulo_c_semantics(self):
        source = """
        func main() -> int {
            print(-17 % 5);
            print(17 % -5);
            print(-17 / 5);
            return 0;
        }
        """
        assert self._run(source).stdout() == "-2\n2\n-3\n"

    def test_deep_expression_spills(self):
        # Forces the expression-temp pool past its register limit on
        # both ISAs (x86 has only 5 pool registers).
        source = """
        func main() -> int {
            int a;
            a = ((((1 + 2) * (3 + 4)) + ((5 + 6) * (7 + 8)))
                 + (((9 + 10) * (11 + 12)) + ((13 + 14) * (15 + 16))));
            print(a);
            return 0;
        }
        """
        expected = (((1 + 2) * (3 + 4)) + ((5 + 6) * (7 + 8))) + \
            (((9 + 10) * (11 + 12)) + ((13 + 14) * (15 + 16)))
        for isa in (X86_ISA, ARM_ISA):
            assert self._run(source, isa).stdout() == f"{expected}\n"

    def test_large_frame_offsets_arm(self):
        # Arrays larger than the ±1016-byte ldr/str immediate range force
        # the arm backend's big-offset fallback path.
        source = """
        func main() -> int {
            int big[300];
            int i;
            i = 0;
            while (i < 300) {
                big[i] = i;
                i = i + 1;
            }
            print(big[0] + big[299]);
            return 0;
        }
        """
        assert self._run(source, ARM_ISA).stdout() == "299\n"
        assert self._run(source, X86_ISA).stdout() == "299\n"

    def test_cycle_accounting_nonzero(self):
        process = self._run("func main() -> int { print(1); return 0; }")
        assert process.cycle_total >= process.instr_total
