"""Tests for the DapperC lexer and parser."""

import pytest

from repro.compiler import ast_nodes as ast
from repro.compiler.lexer import tokenize
from repro.compiler.parser import parse
from repro.errors import CompileError


class TestLexer:
    def test_numbers(self):
        tokens = tokenize("42 0x1F 0")
        assert [t.value for t in tokens[:-1]] == [42, 0x1F, 0]

    def test_identifiers_and_keywords(self):
        tokens = tokenize("func foo while int returnish")
        kinds = [(t.kind, t.value) for t in tokens[:-1]]
        assert kinds == [("keyword", "func"), ("ident", "foo"),
                         ("keyword", "while"), ("keyword", "int"),
                         ("ident", "returnish")]

    def test_operators_longest_match(self):
        tokens = tokenize("a <= b == c << 2")
        ops = [t.value for t in tokens if t.kind == "op"]
        assert ops == ["<=", "==", "<<"]

    def test_arrow_is_punct(self):
        tokens = tokenize("-> -")
        assert tokens[0].kind == "punct" and tokens[0].value == "->"
        assert tokens[1].kind == "op" and tokens[1].value == "-"

    def test_line_comments(self):
        tokens = tokenize("a // comment here\nb")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]

    def test_block_comments(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError):
            tokenize("a /* never ends")

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3

    def test_unexpected_character(self):
        with pytest.raises(CompileError):
            tokenize("a @ b")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestParser:
    def test_global_declarations(self):
        prog = parse("global int g; global int arr[10]; global int *p;")
        assert len(prog.globals) == 3
        assert prog.globals[0].count == 1
        assert prog.globals[1].count == 10
        assert prog.globals[2].is_pointer

    def test_tls_declaration(self):
        prog = parse("tls int counter;")
        assert prog.tls_vars[0].name == "counter"

    def test_function_with_params(self):
        prog = parse("func f(int a, int *b) -> int { return a; }")
        func = prog.functions[0]
        assert func.name == "f"
        assert [p.name for p in func.params] == ["a", "b"]
        assert func.params[1].is_pointer
        assert func.returns_value

    def test_void_function(self):
        prog = parse("func f() { }")
        assert not prog.functions[0].returns_value

    def test_locals_hoisted_from_nested_blocks(self):
        prog = parse("""
        func f() {
            int a;
            if (a) { int b; b = 1; }
            while (a) { int c; c = 2; }
        }
        """)
        names = [l.name for l in prog.functions[0].locals]
        assert names == ["a", "b", "c"]

    def test_precedence(self):
        prog = parse("func f() -> int { return 1 + 2 * 3; }")
        expr = prog.functions[0].body[0].expr
        assert isinstance(expr, ast.BinOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "*"

    def test_comparison_precedence(self):
        prog = parse("func f() -> int { return 1 + 2 < 3 * 4; }")
        expr = prog.functions[0].body[0].expr
        assert expr.op == "<"

    def test_parenthesized(self):
        prog = parse("func f() -> int { return (1 + 2) * 3; }")
        expr = prog.functions[0].body[0].expr
        assert expr.op == "*"

    def test_assignment_forms(self):
        prog = parse("""
        func f() {
            int x; int a[4]; int *p;
            x = 1;
            a[2] = x;
            *p = 3;
        }
        """)
        body = prog.functions[0].body
        assert isinstance(body[0].target, ast.Var)
        assert isinstance(body[1].target, ast.Index)
        assert isinstance(body[2].target, ast.Deref)

    def test_addr_of(self):
        prog = parse("func f() { int x; int *p; p = &x; }")
        assign = prog.functions[0].body[0]
        assert isinstance(assign.expr, ast.AddrOf)

    def test_addr_of_element(self):
        prog = parse("func f() { int a[4]; int *p; p = &a[2]; }")
        assign = prog.functions[0].body[0]
        assert isinstance(assign.expr.target, ast.Index)

    def test_addr_of_literal_rejected(self):
        with pytest.raises(CompileError):
            parse("func f() { int *p; p = &5; }")

    def test_if_else_chain(self):
        prog = parse("""
        func f(int x) -> int {
            if (x == 1) { return 1; }
            else if (x == 2) { return 2; }
            else { return 3; }
        }
        """)
        node = prog.functions[0].body[0]
        assert isinstance(node, ast.If)
        assert isinstance(node.else_body[0], ast.If)

    def test_while_break_continue(self):
        prog = parse("""
        func f() {
            while (1) { break; continue; }
        }
        """)
        loop = prog.functions[0].body[0]
        assert isinstance(loop.body[0], ast.Break)
        assert isinstance(loop.body[1], ast.Continue)

    def test_call_expression(self):
        prog = parse("func g() -> int { return 0; } "
                     "func f() -> int { return g() + 1; }")
        expr = prog.functions[1].body[0].expr
        assert isinstance(expr.left, ast.Call)

    def test_builtin_flag(self):
        prog = parse("func f() { print(1); }")
        call = prog.functions[0].body[0].expr
        assert call.is_builtin

    def test_expression_statement_with_binop(self):
        prog = parse("func f() { int a; a * 3; }")
        stmt = prog.functions[0].body[0]
        assert isinstance(stmt, ast.ExprStmt)
        assert stmt.expr.op == "*"

    def test_missing_semicolon(self):
        with pytest.raises(CompileError):
            parse("func f() { int x }")

    def test_invalid_assignment_target(self):
        with pytest.raises(CompileError):
            parse("func f() { 5 = 3; }")

    def test_zero_size_array_rejected(self):
        with pytest.raises(CompileError):
            parse("func f() { int a[0]; }")

    def test_unary_operators(self):
        prog = parse("func f(int x) -> int { return -x + !x; }")
        expr = prog.functions[0].body[0].expr
        assert isinstance(expr.left, ast.UnaryOp)
        assert expr.left.op == "-"
        assert expr.right.op == "!"

    def test_logical_operators(self):
        prog = parse("func f(int x) -> int { return x > 1 && x < 5 || !x; }")
        expr = prog.functions[0].body[0].expr
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_index_chains(self):
        prog = parse("func f(int *p) -> int { return p[1]; }")
        expr = prog.functions[0].body[0].expr
        assert isinstance(expr, ast.Index)
