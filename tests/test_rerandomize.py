"""Tests for the periodic re-randomization driver."""

import pytest

from repro.core.migration import exe_path_for, install_program
from repro.core.rerandomize import PeriodicRerandomizer
from repro.isa import ARM_ISA, X86_ISA, get_isa
from repro.vm import Machine


def start(program, arch):
    machine = Machine(get_isa(arch), name="host")
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(program.name, arch))
    return machine, process


@pytest.mark.parametrize("arch", ["x86_64", "aarch64"])
def test_output_preserved_across_epochs(counter_program,
                                        counter_reference_output, arch):
    machine, process = start(counter_program, arch)
    rerandomizer = PeriodicRerandomizer(
        machine, process, counter_program.binary(arch),
        interval_steps=900, seed=5)
    exit_code = rerandomizer.run_to_completion()
    assert exit_code == 0
    assert rerandomizer.output() == counter_reference_output
    assert len(rerandomizer.epochs) >= 2, "should have shuffled repeatedly"


def test_layout_changes_every_epoch(counter_program):
    machine, process = start(counter_program, "x86_64")
    rerandomizer = PeriodicRerandomizer(
        machine, process, counter_program.binary("x86_64"),
        interval_steps=700, seed=9)
    layouts = []
    while rerandomizer.run_epoch():
        record = rerandomizer.active_binary.frames.get("work")
        layouts.append(tuple(sorted((s.slot_id, s.offset)
                                    for s in record.slots)))
        if len(layouts) >= 3:
            break
    assert len(set(layouts)) >= 2, "layouts must actually move"


def test_threaded_rerandomization(threaded_program,
                                  threaded_reference_output):
    machine, process = start(threaded_program, "x86_64")
    rerandomizer = PeriodicRerandomizer(
        machine, process, threaded_program.binary("x86_64"),
        interval_steps=4000, seed=3)
    exit_code = rerandomizer.run_to_completion()
    assert exit_code == 0
    assert rerandomizer.output() == threaded_reference_output


def test_epoch_records(counter_program):
    machine, process = start(counter_program, "x86_64")
    rerandomizer = PeriodicRerandomizer(
        machine, process, counter_program.binary("x86_64"),
        interval_steps=900, seed=1)
    rerandomizer.run_to_completion()
    for i, epoch in enumerate(rerandomizer.epochs, start=1):
        assert epoch.epoch == i
        assert epoch.pairs > 0
        assert epoch.instructions_patched > 0
