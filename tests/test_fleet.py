"""Tests for the fleet orchestration subsystem: the sharded event
core, the storm spec, bucketed placement, concurrent staged migrations
under chaos, and the determinism contracts — shard-count invariance
and bit-identical journal replay."""

import pytest

from repro.chaos import FaultPlan
from repro.errors import FleetError
from repro.fleet import (FleetScheduler, FleetSpec, FleetStorm,
                         LatencyHistogram, Objective, ShardedEventCore,
                         build_fleet, fleet_templates,
                         run_shared_store_migrations)
from repro.replay.engine import Replayer, record_fleet

#: a storm chaotic enough to exercise every code path — node loss,
#: stage retries, and genuine rollbacks — while staying deterministic
STORMY = dict(seed=9, nodes=24, shards=3, duration=30.0,
              max_in_flight=6, update_fraction=0.6)
STORMY_CHAOS = "seed=9,drop=1000,latency=1000,pskill=300,crash=5000"


class TestFleetSpec:
    def test_round_trip(self):
        spec = FleetSpec(seed=7, nodes=128, shards=8, duration=45.5,
                         max_in_flight=32, warm_bp=8500)
        again = FleetSpec.from_spec(spec.to_spec())
        assert again == spec
        assert again.to_spec() == spec.to_spec()

    def test_defaults_round_trip(self):
        spec = FleetSpec()
        assert FleetSpec.from_spec(spec.to_spec()) == spec

    def test_services_default_to_one_per_node(self):
        assert FleetSpec(nodes=10).n_services == 10
        assert FleetSpec(nodes=10, services=3).n_services == 3

    @pytest.mark.parametrize("kwargs", [
        dict(nodes=0),
        dict(nodes=4, shards=5),
        dict(shards=0),
        dict(duration=0.0),
        dict(barrier_dt=-1.0),
        dict(max_in_flight=0),
        dict(warm_bp=10001),
        dict(update_fraction=1.5),
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(FleetError):
            FleetSpec(**kwargs)

    def test_unknown_field_rejected(self):
        with pytest.raises(FleetError):
            FleetSpec(bogus=1)
        with pytest.raises(FleetError):
            FleetSpec.from_spec("nodes=4,bogus=1")

    def test_bad_value_rejected(self):
        with pytest.raises(FleetError):
            FleetSpec.from_spec("nodes=many")


class TestShardedEventCore:
    def test_node_local_and_window_ordering(self):
        """Within a window shards drain independently — the contract
        only promises per-node time order and that earlier windows
        complete before later ones."""
        core = ShardedEventCore(shards=4, barrier_dt=1.0)
        seen = []
        for node in range(8):
            for window in range(2):
                core.schedule_node(window + 0.1 * node + 0.05, node,
                                   lambda n=node, w=window:
                                   seen.append((n, w)))
        fired = core.run_until(2.0)
        assert fired == 16
        assert sorted(seen) == sorted(
            (n, w) for n in range(8) for w in range(2))
        for node in range(8):
            assert [w for n, w in seen if n == node] == [0, 1]
        # both window-0 firings of every node precede every window-1 one
        assert [w for _n, w in seen] == [0] * 8 + [1] * 8

    def test_mail_delivered_in_key_order_not_post_order(self):
        core = ShardedEventCore(shards=2, barrier_dt=1.0)
        seen = []
        # Posted in reverse key order; delivery must sort by key.
        core.post(0.5, (2, "b"), lambda: seen.append("b"))
        core.post(0.5, (1, "a"), lambda: seen.append("a"))
        core.post(0.2, (9, "z"), lambda: seen.append("z"))
        core.run_until(1.0)
        assert seen == ["z", "a", "b"]

    def test_mail_waits_for_its_barrier(self):
        core = ShardedEventCore(shards=1, barrier_dt=0.5)
        seen = []
        core.post(1.2, (1,), lambda: seen.append("late"))
        core.run_until(1.0)
        assert not seen
        core.run_until(2.0)
        assert seen == ["late"]

    def test_post_before_now_rejected(self):
        core = ShardedEventCore(shards=1, barrier_dt=0.5)
        core.run_until(1.0)
        with pytest.raises(FleetError):
            core.post(0.25, (1,), lambda: None)

    def test_barrier_observer_sees_every_window(self):
        core = ShardedEventCore(shards=2, barrier_dt=0.25)
        barriers = []
        core.on_barrier = lambda i, when, fired: barriers.append(
            (i, when, fired))
        core.schedule_node(0.1, 0, lambda: None)
        core.schedule_node(0.6, 1, lambda: None)
        core.run_until(1.0)
        assert [b[0] for b in barriers] == [0, 1, 2, 3]
        assert barriers[-1][1] == pytest.approx(1.0)
        assert sum(b[2] for b in barriers) == 2

    def test_bad_construction_rejected(self):
        with pytest.raises(FleetError):
            ShardedEventCore(shards=0, barrier_dt=1.0)
        with pytest.raises(FleetError):
            ShardedEventCore(shards=1, barrier_dt=0.0)

    def test_merged_trace_keys_are_shard_stable(self):
        core = ShardedEventCore(shards=3, barrier_dt=1.0)
        for node in range(6):
            core.schedule_node(1.5, node, lambda: None)
        keys = core.merged_trace_keys()
        assert keys == sorted(keys)
        assert [shard for _w, shard, _s in keys] == [0, 0, 1, 1, 2, 2]


class TestLatencyHistogram:
    def test_percentiles_track_recorded_mass(self):
        hist = LatencyHistogram()
        hist.record(0.001, count=99)
        hist.record(1.0, count=1)
        # bucket upper bounds: 1000us -> 1.024ms, 1s -> ~1.05s
        assert hist.percentile(0.50) == pytest.approx(0.001024)
        assert hist.percentile(0.98) == pytest.approx(0.001024)
        assert hist.percentile(0.999) == pytest.approx(1.048576)

    def test_empty_percentile_is_zero(self):
        assert LatencyHistogram().percentile(0.99) == 0.0

    def test_merge_adds_counts(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(0.002, count=10)
        b.record(0.002, count=5)
        a.merge(b)
        assert a.total == 15


class TestFleetScheduler:
    def _scheduler(self, nodes=8):
        fleet = build_fleet(FleetSpec(nodes=nodes, shards=1, services=0))
        by_id = {node.id: node for node in fleet}
        return fleet, by_id, FleetScheduler(fleet, Objective())

    def test_place_prefers_empty_nodes(self):
        fleet, by_id, sched = self._scheduler()
        node_id = sched.place()
        assert node_id is not None
        assert by_id[node_id].occupancy() == 0

    def test_place_excludes(self):
        fleet, by_id, sched = self._scheduler(nodes=2)
        excluded = {fleet[0].id}
        assert sched.place(exclude=excluded) not in excluded

    def test_place_all_respects_capacity(self):
        fleet, by_id, sched = self._scheduler(nodes=4)
        placed = sched.place_all(4)
        assert len(placed) == 4
        assert sum(node.reserved for node in fleet) == 4
        for node in fleet:
            assert node.reserved <= node.slots

    def test_dead_nodes_never_placed(self):
        fleet, by_id, sched = self._scheduler(nodes=2)
        for node in fleet[1:]:
            node.kill(until=100.0)
            sched.reindex(node)
        picks = sched.place_all(3)
        assert picks and set(picks) == {fleet[0].id}


class TestStormUnderChaos:
    @pytest.fixture(scope="class")
    def stormy(self):
        spec = FleetSpec(**STORMY)
        plan = FaultPlan.from_spec(STORMY_CHAOS)
        return FleetStorm(spec, plan).run()

    def test_complete_or_rollback_invariant(self, stormy):
        assert stormy.invariant_ok
        assert stormy.started == stormy.completed + stormy.rolled_back

    def test_chaos_actually_bites(self, stormy):
        # The point of this seed: rollbacks and node losses both occur,
        # so the transactional paths are exercised, not just skipped.
        assert stormy.rolled_back > 0
        assert stormy.node_losses > 0
        assert stormy.completed > 0

    def test_in_flight_stays_bounded(self, stormy):
        assert 0 < stormy.peak_in_flight <= STORMY["max_in_flight"]

    def test_storm_tail_latency_dominates_calm_median(self, stormy):
        d = stormy.to_dict()
        assert d["latency_ms"]["p99_storm"] > d["latency_ms"]["p50"]

    def test_traffic_conserved(self, stormy):
        d = stormy.to_dict()["traffic"]
        assert 0 < d["served"] <= d["arrived"]


class TestFleetDeterminism:
    def test_shard_count_invariance(self):
        """Same seed + fault plan => identical journal event streams,
        digests, and RNG draws whether the core runs 1 shard or 3."""
        spec = FleetSpec(**STORMY)
        journals = []
        for shards in (1, STORMY["shards"]):
            variant = FleetSpec.from_spec(spec.to_spec())
            variant.shards = shards
            result = record_fleet(variant.to_spec(), chaos=STORMY_CHAOS)
            journals.append(result.journal)
        one, many = journals
        # Headers legitimately differ (the spec strings embed the shard
        # count); every *recorded* event and digest must not.
        assert one.events == many.events
        assert one.digest_stream() == many.digest_stream()

    def test_recorded_storm_replays_bit_identically(self):
        spec = FleetSpec(seed=3, nodes=16, shards=4, duration=20.0,
                         max_in_flight=4)
        chaos = "seed=3,drop=500,latency=500,pskill=200,crash=2000"
        recorded = record_fleet(spec.to_spec(), chaos=chaos)
        blob = recorded.journal.to_bytes()
        replayed = Replayer(recorded.journal).run()
        assert replayed.journal.to_bytes() == blob

    def test_same_spec_same_journal(self):
        spec = FleetSpec(seed=5, nodes=12, shards=2, duration=15.0)
        a = record_fleet(spec.to_spec()).journal
        b = record_fleet(spec.to_spec()).journal
        assert a.to_bytes() == b.to_bytes()


class TestCalibration:
    def test_warm_migrations_ship_fewer_bytes(self):
        calibration = run_shared_store_migrations("nginx",
                                                  destinations=2,
                                                  warmup_steps=2000)
        assert calibration.warm_bp() > 0
        shipped = [t[0] for t in calibration.transfers]
        assert shipped[1] < shipped[0]
        d = calibration.to_dict()
        assert d["app"] == "nginx"
        assert len(d["transfers"]) == 2


class TestTemplates:
    def test_fleet_templates_come_from_app_registry(self):
        templates = fleet_templates()
        names = [t.name for t in templates]
        assert names == ["nginx", "redis"]
        for template in templates:
            assert template.image_bytes > 0
            assert template.arrival_rps > 0
