"""Tests for the simulated machine: kernel, syscalls, scheduler, ptrace."""

import pytest

from repro.compiler import compile_source
from repro.core.migration import exe_path_for, install_program
from repro.errors import KernelError, PtraceError
from repro.isa import ARM_ISA, X86_ISA
from repro.vm import Machine, Tracer
from repro.vm.cpu import ThreadStatus, to_i64, to_u64
from repro.vm.tmpfs import TmpFs


def run(source, isa=X86_ISA, name="t", max_steps=30_000_000):
    program = compile_source(source, name)
    machine = Machine(isa)
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(name, isa.name))
    machine.run_process(process, max_steps=max_steps)
    return process


class TestCpuHelpers:
    def test_to_i64_wraps(self):
        assert to_i64(2 ** 63) == -(2 ** 63)
        assert to_i64(-1) == -1
        assert to_i64(2 ** 64 + 5) == 5

    def test_to_u64(self):
        assert to_u64(-1) == 2 ** 64 - 1


class TestTmpfs:
    def test_rw(self):
        fs = TmpFs()
        fs.write("/a/b", b"data")
        assert fs.read("/a/b") == b"data"
        assert fs.exists("/a/b")
        assert fs.size("/a/b") == 4

    def test_missing_raises(self):
        with pytest.raises(Exception):
            TmpFs().read("/nope")

    def test_listdir_prefix(self):
        fs = TmpFs()
        fs.write("/img/1/core.img", b"1")
        fs.write("/img/1/mm.img", b"2")
        fs.write("/img/2/core.img", b"3")
        assert fs.listdir("/img/1") == ["/img/1/core.img", "/img/1/mm.img"]

    def test_copy_tree(self):
        src, dst = TmpFs(), TmpFs()
        src.write("/img/a", b"xx")
        src.write("/img/b", b"yyy")
        copied = src.copy_tree("/img", dst)
        assert copied == 5
        assert dst.read("/img/b") == b"yyy"

    def test_copy_tree_dest_prefix(self):
        src, dst = TmpFs(), TmpFs()
        src.write("/img/a", b"x")
        src.copy_tree("/img", dst, "/other")
        assert dst.read("/other/a") == b"x"


class TestBasicExecution:
    def test_exit_code(self):
        process = run("func main() -> int { return 42; }")
        assert process.exit_code == 42

    def test_print_output(self):
        process = run("func main() -> int { print(7); printc(65); "
                      "print(-3); return 0; }")
        assert process.stdout() == "7\nA-3\n"

    def test_arithmetic_semantics(self):
        process = run("""
        func main() -> int {
            print(7 / 2);
            print(-7 / 2);
            print(7 % 3);
            print(-7 % 3);
            print(1 << 10);
            print(1024 >> 3);
            return 0;
        }
        """)
        assert process.stdout() == "3\n-3\n1\n-1\n1024\n128\n"

    def test_division_by_zero_faults(self):
        with pytest.raises(KernelError):
            run("func main() -> int { int z; z = 0; return 5 / z; }")

    def test_sbrk_heap(self):
        process = run("""
        func main() -> int {
            int *p; int *q;
            p = sbrk(16);
            q = sbrk(8);
            *p = 11;
            p[1] = 22;
            *q = 33;
            print(*p + p[1] + *q);
            print(q - p);
            return 0;
        }
        """)
        assert process.stdout() == "66\n16\n"

    def test_gettid_and_now(self):
        process = run("""
        func main() -> int {
            print(self());
            print(now() > 0);
            return 0;
        }
        """)
        assert process.stdout() == "1\n1\n"

    def test_wrong_arch_binary_rejected(self):
        program = compile_source("func main() -> int { return 0; }", "t")
        machine = Machine(X86_ISA)
        machine.tmpfs.write("/bin/t.aarch64",
                            program.binary("aarch64").to_bytes())
        with pytest.raises(KernelError):
            machine.spawn_process("/bin/t.aarch64")


THREAD_SOURCE = """
global int total;
global int mtx;

func worker(int n) {
    int i;
    i = 0;
    while (i < n) {
        lock(&mtx);
        total = total + 1;
        unlock(&mtx);
        i = i + 1;
    }
}

func main() -> int {
    int t1; int t2; int t3;
    t1 = spawn(worker, 10);
    t2 = spawn(worker, 20);
    t3 = spawn(worker, 5);
    join(t1);
    join(t2);
    join(t3);
    print(total);
    return 0;
}
"""


class TestThreads:
    def test_spawn_join_lock(self):
        process = run(THREAD_SOURCE)
        assert process.stdout() == "35\n"
        assert process.exit_code == 0

    def test_deterministic_across_runs(self):
        out1 = run(THREAD_SOURCE).stdout()
        out2 = run(THREAD_SOURCE).stdout()
        assert out1 == out2

    def test_same_result_on_arm(self):
        assert run(THREAD_SOURCE, ARM_ISA).stdout() == "35\n"

    def test_unlock_not_held_faults(self):
        with pytest.raises(KernelError):
            run("""
            global int m;
            func main() -> int { unlock(&m); return 0; }
            """)

    def test_tls_is_per_thread(self):
        process = run("""
        global int sum;
        global int mtx;
        tls int mine;

        func worker(int k) {
            int i;
            i = 0;
            while (i < k) {
                mine = mine + 1;
                i = i + 1;
            }
            lock(&mtx);
            sum = sum + mine;
            unlock(&mtx);
        }

        func main() -> int {
            int t1; int t2;
            t1 = spawn(worker, 3);
            t2 = spawn(worker, 9);
            join(t1);
            join(t2);
            print(sum);
            print(mine);
            return 0;
        }
        """)
        assert process.stdout() == "12\n0\n"


class TestPtrace:
    def _paused_setup(self):
        program = compile_source(THREAD_SOURCE, "t")
        machine = Machine(X86_ISA)
        install_program(machine, program)
        process = machine.spawn_process(exe_path_for("t", "x86_64"))
        machine.step_all(500)
        return program, machine, process

    def test_attach_poke_wait(self):
        program, machine, process = self._paused_setup()
        tracer = Tracer(machine)
        tracer.attach_all(process)
        flag_addr = program.binary("x86_64").symtab.address_of(
            "__dapper_flag")
        tracer.poke_data(flag_addr, 1)
        assert tracer.peek_data(flag_addr) == 1
        tids = tracer.wait_all_trapped()
        assert tids
        for tid in tids:
            thread = tracer.get_regs(tid)
            assert thread.status == ThreadStatus.TRAPPED
            # Parked pc must be a known entry equivalence point.
            point = program.binary("x86_64").stackmaps.by_addr.get(thread.pc)
            assert point is not None and point.kind == "entry"

    def test_cont_resumes(self):
        program, machine, process = self._paused_setup()
        tracer = Tracer(machine)
        tracer.attach_all(process)
        flag_addr = program.binary("x86_64").symtab.address_of(
            "__dapper_flag")
        tracer.poke_data(flag_addr, 1)
        tids = tracer.wait_all_trapped()
        tracer.poke_data(flag_addr, 0)
        for tid in tids:
            tracer.cont(tid)
        tracer.detach_all()
        machine.run_process(process)
        assert process.stdout() == "35\n"

    def test_unattached_tracer_rejects_ops(self):
        machine = Machine(X86_ISA)
        tracer = Tracer(machine)
        with pytest.raises(PtraceError):
            tracer.poke_data(0x1000, 1)

    def test_attach_unknown_tid(self):
        _program, machine, process = self._paused_setup()
        tracer = Tracer(machine)
        with pytest.raises(PtraceError):
            tracer.attach(process, 99)


class TestScheduler:
    def test_step_all_respects_budget(self):
        program = compile_source(THREAD_SOURCE, "t")
        machine = Machine(X86_ISA)
        install_program(machine, program)
        machine.spawn_process(exe_path_for("t", "x86_64"))
        executed = machine.step_all(100)
        assert 0 < executed <= 100

    def test_sigstop_halts_process(self):
        program = compile_source(THREAD_SOURCE, "t")
        machine = Machine(X86_ISA)
        install_program(machine, program)
        process = machine.spawn_process(exe_path_for("t", "x86_64"))
        machine.sigstop(process)
        assert machine.step_all(1000) == 0
        machine.sigcont(process)
        assert machine.step_all(1000) > 0

    def test_kill_removes_process(self):
        program = compile_source(THREAD_SOURCE, "t")
        machine = Machine(X86_ISA)
        install_program(machine, program)
        process = machine.spawn_process(exe_path_for("t", "x86_64"))
        machine.kill(process)
        assert process.pid not in machine.processes
        assert process.exited
