"""Restore guard tests: the multi-pass image verifier, auto-repair,
quarantine, and their integration into the migration pipeline, the
chaos harness, the checkpoint store, and the flight recorder."""

from __future__ import annotations

import pytest

from repro.chaos import FaultInjector, FaultPlan
from repro.chaos.harness import ChaosHarness
from repro.compiler import compile_source
from repro.core.migration import (MigrationPipeline, exe_path_for,
                                  install_program)
from repro.core.runtime import DapperRuntime
from repro.criu.images import ImageSet
from repro.errors import (MigrationRollback, QuarantinedImage,
                          VerifyError)
from repro.isa import X86_ISA, get_isa
from repro.mem.paging import PAGE_SIZE
from repro.replay import Journal, Replayer, pinpoint_divergence, \
    record_migrate
from repro.store import CheckpointStore
from repro.verify import (ImageVerifier, Quarantine, image_page_digests,
                          verify_images)
from repro.vm import Machine, TmpFs
from tests.conftest import COUNTER_SOURCE


@pytest.fixture
def checkpoint(counter_program):
    """A live x86 checkpoint plus its sender-side ground truth."""
    machine = Machine(X86_ISA, name="src")
    install_program(machine, counter_program)
    process = machine.spawn_process(exe_path_for("counter", "x86_64"))
    machine.step_all(2500)
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    images = runtime.checkpoint()
    return {
        "images": images,
        "binary": counter_program.binary("x86_64"),
        "digest": images.content_digest(),
        "pages": image_page_digests(images),
    }


def armed_verifier(cp, store=None):
    return ImageVerifier(binary=cp["binary"], store=store,
                         page_digests=cp["pages"],
                         expected_digest=cp["digest"])


def page_offset(images: ImageSet, vaddr: int) -> int:
    """Byte offset of a page inside pages-1.img."""
    offset = 0
    for entry in images.pagemap().entries:
        for i in range(entry.nr_pages):
            if entry.vaddr + i * PAGE_SIZE == vaddr:
                return offset
            offset += PAGE_SIZE
    raise AssertionError(f"page {vaddr:#x} not dumped")


def corrupt_page(images: ImageSet, vaddr: int) -> ImageSet:
    mutated = ImageSet(dict(images.files))
    blob = bytearray(mutated.pages())
    blob[page_offset(mutated, vaddr) + 7] ^= 0xA5
    mutated.set_pages(bytes(blob))
    return mutated


def text_page(cp) -> int:
    """A dumped page inside the binary's text segment."""
    text = next(s for s in cp["binary"].segments
                if s.section == ".text")
    for vaddr in sorted(cp["pages"]):
        if text.vaddr <= vaddr < text.vaddr + text.size:
            return vaddr
    raise AssertionError("no text page dumped")


def stack_page(cp) -> int:
    """The highest dumped page — stack, so no binary-backed repair."""
    return max(cp["pages"])


# -- the verifier's three passes ----------------------------------------------


class TestVerifierPasses:
    def test_clean_checkpoint_passes(self, checkpoint):
        report = armed_verifier(checkpoint).verify(checkpoint["images"])
        assert report.ok
        assert report.checks > 0
        assert report.passes_run == ["structural", "semantic"]
        assert "ok" in report.summary()

    def test_bad_magic_is_structural_fatal(self, checkpoint):
        images = ImageSet(dict(checkpoint["images"].files))
        blob = bytearray(images.files["mm.img"])
        blob[0] ^= 0xFF
        images.files["mm.img"] = bytes(blob)
        report = armed_verifier(checkpoint).verify(images)
        assert not report.ok
        assert report.failing_pass() == "structural"

    def test_pages_shorter_than_pagemap_flagged(self, checkpoint):
        images = ImageSet(dict(checkpoint["images"].files))
        images.files["pages-1.img"] = \
            images.files["pages-1.img"][:-PAGE_SIZE]
        report = armed_verifier(checkpoint).verify(images)
        assert not report.ok
        assert report.failing_pass() == "structural"

    def test_whole_set_digest_mismatch_is_fatal_without_manifest(
            self, checkpoint):
        """With only the whole-set digest (no per-page manifest), a
        diverged page can't be localized: fatal, not repairable."""
        mutated = corrupt_page(checkpoint["images"],
                               stack_page(checkpoint))
        verifier = ImageVerifier(binary=checkpoint["binary"],
                                 expected_digest=checkpoint["digest"])
        report = verifier.verify(mutated)
        assert not report.ok
        assert any(f.code == "content-digest" and f.severity == "fatal"
                   for f in report.findings)

    def test_manifest_localizes_divergence_to_pages(self, checkpoint):
        mutated = corrupt_page(checkpoint["images"],
                               stack_page(checkpoint))
        report = armed_verifier(checkpoint).verify(mutated)
        assert not report.ok
        page_findings = [f for f in report.findings
                         if f.code == "page-digest"]
        assert [f.vaddr for f in page_findings] == \
            [stack_page(checkpoint)]
        # localized: the unactionable whole-set finding is subsumed
        assert not any(f.code == "content-digest"
                       for f in report.findings)

    def test_pc_off_equivalence_point_is_semantic_fatal(self,
                                                        checkpoint):
        images = ImageSet(dict(checkpoint["images"].files))
        core = images.core(1)
        core.pc += 2
        images.set_core(core)
        verifier = ImageVerifier(binary=checkpoint["binary"])
        report = verifier.verify(images)
        assert not report.ok
        assert report.failing_pass() == "semantic"
        assert any(f.code == "eqpoint" for f in report.findings)

    def test_tls_block_outside_vma_flagged(self, checkpoint):
        images = ImageSet(dict(checkpoint["images"].files))
        core = images.core(1)
        core.tls_base += 64 * PAGE_SIZE
        images.set_core(core)
        report = ImageVerifier(binary=checkpoint["binary"]).verify(images)
        assert not report.ok
        assert any(f.code in ("tls-base", "tls-vma")
                   for f in report.findings)

    def test_verify_images_raises_typed_error(self, checkpoint):
        mutated = corrupt_page(checkpoint["images"],
                               stack_page(checkpoint))
        with pytest.raises(VerifyError) as err:
            verify_images(mutated, binary=checkpoint["binary"],
                          page_digests=checkpoint["pages"],
                          expected_digest=checkpoint["digest"])
        assert err.value.pass_name == "structural"
        assert err.value.findings

    def test_page_digest_manifest_tracks_content(self, checkpoint):
        target = stack_page(checkpoint)
        mutated = corrupt_page(checkpoint["images"], target)
        before = checkpoint["pages"]
        after = image_page_digests(mutated)
        assert set(before) == set(after)
        changed = [v for v in before if before[v] != after[v]]
        assert changed == [target]


# -- pass 3: repair and quarantine --------------------------------------------


class TestRepair:
    def test_text_page_repaired_from_binary(self, checkpoint):
        target = text_page(checkpoint)
        mutated = corrupt_page(checkpoint["images"], target)
        fixed, report = armed_verifier(checkpoint).repair(mutated)
        assert fixed is not None
        assert report.ok
        # one page, even though digest + text checks both indicted it
        assert [f.vaddr for f in report.repaired] == [target]
        assert "repair" in report.passes_run
        assert fixed.content_digest() == checkpoint["digest"]

    def test_any_page_repaired_from_store(self, checkpoint):
        store = CheckpointStore()
        store.put(checkpoint["images"])
        target = stack_page(checkpoint)
        mutated = corrupt_page(checkpoint["images"], target)
        fixed, report = armed_verifier(checkpoint, store=store).repair(
            mutated)
        assert fixed is not None
        assert report.ok
        assert [f.vaddr for f in report.repaired] == [target]
        assert fixed.content_digest() == checkpoint["digest"]

    def test_stack_page_without_store_is_unrepairable(self, checkpoint):
        mutated = corrupt_page(checkpoint["images"],
                               stack_page(checkpoint))
        fixed, report = armed_verifier(checkpoint).repair(mutated)
        assert fixed is None
        assert not report.ok
        assert report.failing_pass() is not None

    def test_clean_set_returned_untouched(self, checkpoint):
        fixed, report = armed_verifier(checkpoint).repair(
            checkpoint["images"])
        assert fixed is checkpoint["images"]
        assert report.ok and not report.repaired


class TestQuarantine:
    def test_roundtrip_over_tmpfs(self, checkpoint):
        mutated = corrupt_page(checkpoint["images"],
                               stack_page(checkpoint))
        _fixed, report = armed_verifier(checkpoint).repair(mutated)
        quarantine = Quarantine(TmpFs())
        qid = quarantine.add(mutated, report, reason="unit test")
        assert quarantine.ids() == [qid]
        diagnosis = quarantine.diagnosis(qid)
        assert diagnosis["failing_pass"] == "structural"
        assert diagnosis["reason"] == "unit test"
        assert diagnosis["findings"]
        again = quarantine.images(qid)
        assert again.content_digest() == mutated.content_digest()
        removed = quarantine.remove(qid)
        assert removed > len(mutated.files)  # files + diagnosis
        assert quarantine.ids() == []

    def test_same_bytes_same_id(self, checkpoint):
        mutated = corrupt_page(checkpoint["images"],
                               stack_page(checkpoint))
        _fixed, report = armed_verifier(checkpoint).repair(mutated)
        quarantine = Quarantine(TmpFs())
        assert quarantine.add(mutated, report) == \
            quarantine.add(mutated, report)
        assert len(quarantine.ids()) == 1

    def test_unknown_id_rejected(self):
        quarantine = Quarantine(TmpFs())
        with pytest.raises(VerifyError):
            quarantine.diagnosis("feedbeef")
        with pytest.raises(VerifyError):
            quarantine.remove("feedbeef")


# -- pipeline integration -----------------------------------------------------


class TestPipelineVerifyStage:
    def test_fault_free_migrate_reports_verify_stats(self,
                                                     counter_program):
        pipeline = MigrationPipeline(
            Machine(get_isa("x86_64"), name="src"),
            Machine(get_isa("aarch64"), name="dst"), counter_program)
        result = pipeline.run_and_migrate(warmup_steps=2500)
        verify_stats = result.stats["verify"]
        assert verify_stats["checks"] > 0
        assert verify_stats["repaired_pages"] == 0
        assert verify_stats["passes"] == ["structural", "semantic"]
        assert result.stage_seconds["verify"] > 0
        assert set(verify_stats["pass_seconds"]) == \
            set(verify_stats["passes"])

    def test_corruption_reaches_guard_and_quarantines(self,
                                                      counter_program):
        """verify-gate mode: the in-stage digest retry is disarmed, so
        injected corruption lands at the guard — which quarantines the
        unrepairable set and rolls the migration back."""
        src = Machine(get_isa("x86_64"), name="src")
        dst = Machine(get_isa("aarch64"), name="dst")
        injector = FaultInjector(FaultPlan(5, corrupt=1.0))
        pipeline = MigrationPipeline(src, dst, counter_program,
                                     injector=injector,
                                     arrival_check=False)
        process = pipeline.start()
        src.step_all(2500)
        with pytest.raises(MigrationRollback) as err:
            pipeline.migrate(process)
        assert err.value.stage == "verify"
        # deterministic verdict: no retries on a quarantine
        assert err.value.txn["attempts"]["verify"] == 1
        quarantine = Quarantine(dst.tmpfs)
        qids = quarantine.ids()
        assert len(qids) == 1
        diagnosis = quarantine.diagnosis(qids[0])
        assert diagnosis["failing_pass"]
        assert injector.counts().get("quarantine") == 1
        # rollback swept the images but left the quarantine in place
        assert not dst.tmpfs.listdir(f"/images/{process.pid}")
        # the source process is unharmed and can run to completion
        src.run_process(process)
        assert process.exit_code == 0

    def test_quarantined_image_error_carries_diagnosis(self,
                                                       counter_program):
        src = Machine(get_isa("x86_64"), name="src")
        dst = Machine(get_isa("aarch64"), name="dst")
        injector = FaultInjector(FaultPlan(5, corrupt=1.0))
        pipeline = MigrationPipeline(src, dst, counter_program,
                                     injector=injector,
                                     arrival_check=False)
        process = pipeline.start()
        src.step_all(2500)
        try:
            pipeline.migrate(process)
        except MigrationRollback as exc:
            assert "quarantined as" in exc.txn["errors"][0]
        else:
            pytest.fail("corrupted migration did not roll back")
        assert isinstance(QuarantinedImage("x"), VerifyError)


class TestChaosVerifyGate:
    def test_corrupt_trials_caught_by_guard(self):
        harness = ChaosHarness("dhrystone", warmup=2000,
                               verify_gate=True)
        caught = 0
        for trial in harness.run_trials(4, corrupt=0.6):
            assert trial.ok, trial.detail
            if trial.faults.get("corrupt"):
                caught += 1
                assert trial.quarantined or trial.repaired_pages
        assert caught > 0

    def test_fault_free_trials_unaffected_by_gate(self):
        harness = ChaosHarness("dhrystone", warmup=2000,
                               verify_gate=True)
        trial = harness.run_trial(FaultPlan(0))
        assert trial.ok, trial.detail
        assert trial.outcome == "completed"
        assert not trial.quarantined


# -- journal + replay ---------------------------------------------------------


class TestVerifyEventsReplay:
    def test_migrate_journals_verify_event_and_replays(self):
        recorded = record_migrate(COUNTER_SOURCE, "counter",
                                  warmup=2500)
        summary = recorded.journal.summary()
        assert summary.get("verify") == 1
        events = [e for e in recorded.journal.events
                  if e.get("label", "").startswith("verify:")]
        assert events[0]["label"] == "verify:ok@migrate"
        assert events[0]["a"] > 0  # checks
        assert events[0]["b"] == 0  # repaired pages
        replayed = Replayer(recorded.journal).run()
        assert pinpoint_divergence(recorded.journal,
                                   replayed.journal) is None


# -- store integration --------------------------------------------------------


class TestStoreMaterializeVerify:
    def test_materialize_with_verify_passes(self, checkpoint):
        store = CheckpointStore()
        put = store.put(checkpoint["images"])
        images = store.materialize(put.checkpoint_id, verify=True,
                                   binary=checkpoint["binary"])
        assert images.content_digest() == checkpoint["digest"]

    def test_materialize_verify_catches_wrong_binary(self, checkpoint):
        """The semantic layer cross-checks against the binary: a set
        materialized for the wrong program fails loudly instead of
        restoring garbage."""
        other = compile_source(
            "func main() -> int { print(123); return 0; }", "other")
        store = CheckpointStore()
        put = store.put(checkpoint["images"])
        with pytest.raises(VerifyError):
            store.materialize(put.checkpoint_id, verify=True,
                              binary=other.binary("x86_64"))
        # opt-in: without verify the same call still materializes
        images = store.materialize(put.checkpoint_id)
        assert images.content_digest() == checkpoint["digest"]
