"""Composing transformation policies — the extensibility the paper
claims (§III): shuffle + cross-ISA in one rewrite pass, and architecture
transformation as a defence in itself."""

import pytest

from repro.core.migration import exe_path_for, install_program
from repro.core.policies.cross_isa import CrossIsaPolicy
from repro.core.policies.stack_shuffle import StackShufflePolicy
from repro.core.rewriter import ProcessRewriter
from repro.core.runtime import DapperRuntime
from repro.criu.restore import restore_process
from repro.isa import ARM_ISA, X86_ISA, get_isa
from repro.vm import Machine


def checkpoint_mid_run(program, arch, steps):
    machine = Machine(get_isa(arch), name="src")
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(program.name, arch))
    machine.step_all(steps)
    assert not process.exited
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    before = process.stdout()
    images = runtime.checkpoint()
    runtime.kill_source()
    return machine, images, before


class TestShuffleThenMigrate:
    def test_sequential_policies_one_rewriter(self, counter_program,
                                              counter_reference_output):
        """Shuffle on the source ISA, then migrate the shuffled process
        to the other ISA — two policies applied back to back."""
        _src, images, before = checkpoint_mid_run(counter_program,
                                                  "x86_64", 2500)
        shuffle = StackShufflePolicy(
            counter_program.binary("x86_64"), seed=77,
            dst_exe_path="/bin/counter.x86_64.shuf")
        migrate = CrossIsaPolicy(
            shuffle.shuffled_binary, counter_program.binary("aarch64"),
            exe_path_for("counter", "aarch64"))
        rewriter = ProcessRewriter([shuffle, migrate])
        reports = rewriter.rewrite(images)
        assert [r.policy for r in reports] == ["stack-shuffle", "cross-isa"]

        dst = Machine(ARM_ISA, name="dst")
        install_program(dst, counter_program)
        restored = restore_process(dst, images)
        dst.run_process(restored)
        assert before + restored.stdout() == counter_reference_output

    def test_migrate_then_shuffle_on_target(self, counter_program,
                                            counter_reference_output):
        """Cross-ISA migration followed by a shuffle under the target
        ISA's binary — the other composition order."""
        _src, images, before = checkpoint_mid_run(counter_program,
                                                  "x86_64", 2500)
        migrate = CrossIsaPolicy(
            counter_program.binary("x86_64"),
            counter_program.binary("aarch64"),
            exe_path_for("counter", "aarch64"))
        shuffle = StackShufflePolicy(
            counter_program.binary("aarch64"), seed=21,
            dst_exe_path="/bin/counter.aarch64.shuf")
        ProcessRewriter().rewrite(images, migrate)
        ProcessRewriter().rewrite(images, shuffle)

        dst = Machine(ARM_ISA, name="dst")
        dst.tmpfs.write(shuffle.dst_exe_path,
                        shuffle.shuffled_binary.to_bytes())
        restored = restore_process(dst, images)
        dst.run_process(restored)
        assert before + restored.stdout() == counter_reference_output


class TestMigrationAsDefence:
    """Paper §IV-B: "by transparently transforming the architecture
    state, DAPPER prevents the payload from succeeding since live values
    on the stack and registers are completely relocated"."""

    def test_x86_layout_knowledge_useless_after_migration(self):
        from repro.compiler import compile_source
        from repro.security.dop import MIN_DOP_SOURCE, MIN_DOP_TARGETS

        program = compile_source(MIN_DOP_SOURCE, "min-dop")
        x86_record = program.binary("x86_64").frames.get("handle_request")
        arm_record = program.binary("aarch64").frames.get("handle_request")
        # The attacker's x86-learned offsets must not coincide with the
        # aarch64 layout for the targeted allocations.
        moved = 0
        for name in MIN_DOP_TARGETS:
            x86_off = x86_record.slot_by_name(name).offset
            arm_off = arm_record.slot_by_name(name).offset
            if x86_off != arm_off:
                moved += 1
        assert moved >= 2, ("cross-ISA transformation must relocate the "
                            "exploit-sensitive allocations")

    def test_attack_fails_across_migration(self):
        """Learn offsets on x86-64, migrate the victim to aarch64, replay
        the payload at the learned offsets: every targeted slot must end
        up unaffected under the aarch64 layout."""
        from repro.compiler import compile_source
        from repro.security.dop import MIN_DOP_SOURCE, MIN_DOP_TARGETS

        program = compile_source(MIN_DOP_SOURCE, "min-dop")
        x86_record = program.binary("x86_64").frames.get("handle_request")
        learned = {name: x86_record.slot_by_name(name).offset
                   for name in MIN_DOP_TARGETS}

        # Park a victim at the vulnerable function on x86, migrate it.
        machine = Machine(X86_ISA, name="src")
        install_program(machine, program)
        process = machine.spawn_process(exe_path_for("min-dop", "x86_64"))
        runtime = DapperRuntime(machine, process)
        entry = program.binary("x86_64").stackmaps.entry_for(
            "handle_request")
        for _ in range(4096):
            runtime.pause_at_equivalence_points()
            if any(t.pc == entry.addr for t in process.live_threads()):
                break
            runtime.resume()
        images = runtime.checkpoint()
        runtime.kill_source()
        migrate = CrossIsaPolicy(program.binary("x86_64"),
                                 program.binary("aarch64"),
                                 exe_path_for("min-dop", "aarch64"))
        ProcessRewriter().rewrite(images, migrate)
        dst = Machine(ARM_ISA, name="dst")
        install_program(dst, program)
        victim = restore_process(dst, images)

        thread = victim.threads[1]
        arm_entry = program.binary("aarch64").stackmaps.entry_for(
            "handle_request")
        assert thread.pc == arm_entry.addr
        fp = thread.fp
        payload = {name: 0x41410000 + i
                   for i, name in enumerate(MIN_DOP_TARGETS)}
        for name, value in payload.items():
            victim.aspace.write_u64(fp + learned[name], value)
        # Check against the *actual* aarch64 layout.
        arm_record = program.binary("aarch64").frames.get("handle_request")
        hits = sum(
            1 for name, value in payload.items()
            if victim.aspace.read_u64(
                fp + arm_record.slot_by_name(name).offset) == value)
        assert hits < len(MIN_DOP_TARGETS), "payload must not fully land"
