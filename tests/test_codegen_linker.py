"""Tests for the backends and the aligning linker."""

import pytest

from repro import sysabi
from repro.binfmt.delf import DATA_BASE, TEXT_BASE
from repro.binfmt.stackmaps import KIND_CALLSITE, KIND_ENTRY, LOC_BOTH
from repro.compiler import compile_source
from repro.compiler.linker import verify_alignment
from repro.errors import LinkError
from repro.isa import ARM_ISA, X86_ISA, get_isa

SOURCE = """
global int g;
global int table[4];
tls int t1;

func add(int a, int b) -> int {
    int c;
    c = a + b;
    return c;
}

func looped(int n) -> int {
    int i; int acc; int buf[3];
    acc = 0;
    i = 0;
    while (i < n) {
        buf[i % 3] = add(acc, i);
        acc = acc + buf[i % 3];
        i = i + 1;
    }
    return acc;
}

func main() -> int {
    g = looped(5);
    print(g);
    return 0;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE, "cg_test")


class TestAlignment:
    def test_symbols_aligned_across_isas(self, program):
        verify_alignment(program.binaries)   # raises on violation
        x86 = program.binary("x86_64").symtab
        arm = program.binary("aarch64").symtab
        for sym in x86:
            assert arm.lookup(sym.name).addr == sym.addr

    def test_dapper_flag_is_first_data_symbol(self, program):
        for binary in program.binaries.values():
            assert binary.symtab.address_of(
                sysabi.DAPPER_FLAG_SYMBOL) == DATA_BASE

    def test_text_sizes_equal_after_padding(self, program):
        assert len(program.binary("x86_64").text) == \
            len(program.binary("aarch64").text)

    def test_functions_16_aligned(self, program):
        for binary in program.binaries.values():
            for sym in binary.symtab.functions():
                assert sym.addr % 16 == 0

    def test_entry_is_start(self, program):
        for binary in program.binaries.values():
            assert binary.entry == binary.symtab.address_of(sysabi.RT_START)

    def test_padding_is_nops(self, program):
        # The byte right before the next function must be a nop filler
        # whenever the encoded body is shorter than the span.
        binary = program.binary("x86_64")
        funcs = binary.symtab.functions()
        assert any(binary.text[sym.addr - TEXT_BASE + sym.size - 1] == 0x90
                   for sym in funcs)


class TestFrameLayouts:
    def test_layouts_differ_across_isas(self, program):
        x86 = program.binary("x86_64").frames.get("looped")
        arm = program.binary("aarch64").frames.get("looped")
        x86_offsets = {s.name: s.offset for s in x86.slots}
        arm_offsets = {s.name: s.offset for s in arm.slots}
        assert x86_offsets != arm_offsets, \
            "the two backends must lay frames out differently"

    def test_same_slot_ids_across_isas(self, program):
        x86 = program.binary("x86_64").frames.get("looped")
        arm = program.binary("aarch64").frames.get("looped")
        assert {s.slot_id: s.name for s in x86.slots} == \
            {s.slot_id: s.name for s in arm.slots}

    def test_arm_param_pairs_marked(self, program):
        arm = program.binary("aarch64").frames.get("add")
        a = arm.slot_by_name("a")
        b = arm.slot_by_name("b")
        assert a.pair_member and b.pair_member
        x86 = program.binary("x86_64").frames.get("add")
        assert not x86.slot_by_name("a").pair_member

    def test_frame_sizes_positive_and_aligned(self, program):
        for binary in program.binaries.values():
            for record in binary.frames.frames:
                assert record.frame_size % 16 == 0

    def test_slots_disjoint(self, program):
        for binary in program.binaries.values():
            for record in binary.frames.frames:
                spans = sorted((s.offset, s.offset + s.size)
                               for s in record.slots)
                for (lo1, hi1), (lo2, hi2) in zip(spans, spans[1:]):
                    assert hi1 <= lo2, f"{record.func}: overlapping slots"

    def test_slots_inside_frame(self, program):
        for binary in program.binaries.values():
            for record in binary.frames.frames:
                for slot in record.slots:
                    assert -record.frame_size <= slot.offset < 0


class TestStackmaps:
    def test_entry_eqpoint_for_every_checked_function(self, program):
        for binary in program.binaries.values():
            for record in binary.frames.frames:
                if record.func == sysabi.RT_THREAD_EXIT:
                    continue
                entry = binary.stackmaps.entry_for(record.func)
                assert entry is not None
                assert record.addr <= entry.addr < record.end_addr

    def test_entry_params_live_in_arg_registers(self, program):
        for arch in ("x86_64", "aarch64"):
            binary = program.binary(arch)
            isa = get_isa(arch)
            entry = binary.stackmaps.entry_for("add")
            by_name = {lv.name: lv for lv in entry.live}
            assert by_name["a"].loc_type == LOC_BOTH
            assert by_name["a"].dwarf_reg == isa.dwarf_of(isa.abi.arg_regs[0])
            assert by_name["b"].dwarf_reg == isa.dwarf_of(isa.abi.arg_regs[1])

    def test_paper_fig4_register_numbers_differ(self, program):
        # Fig. 4: the same variable lives in different DWARF registers on
        # the two ISAs (rdi=5 vs x0=0 for the first argument).
        x86_entry = program.binary("x86_64").stackmaps.entry_for("add")
        arm_entry = program.binary("aarch64").stackmaps.entry_for("add")
        x86_a = x86_entry.live_by_id(0)
        arm_a = arm_entry.live_by_id(0)
        assert x86_a.dwarf_reg == 5     # rdi
        assert arm_a.dwarf_reg == 0     # x0

    def test_callsite_eqpoints_exist(self, program):
        binary = program.binary("x86_64")
        callsites = [p for p in binary.stackmaps.eqpoints
                     if p.kind == KIND_CALLSITE and p.func == "looped"]
        assert callsites, "looped calls add -> needs a callsite eqpoint"
        for point in callsites:
            for live in point.live:
                assert live.on_stack()
                assert not live.in_register()

    def test_eqpoint_ids_pair_across_isas(self, program):
        x86 = program.binary("x86_64").stackmaps
        arm = program.binary("aarch64").stackmaps
        assert set(x86.by_id) == set(arm.by_id)
        for eq_id, point in x86.by_id.items():
            peer = arm.by_id[eq_id]
            assert point.func == peer.func
            assert point.kind == peer.kind
            assert ({lv.value_id for lv in point.live}
                    == {lv.value_id for lv in peer.live})

    def test_trap_addr_recorded_for_entries(self, program):
        for arch in ("x86_64", "aarch64"):
            binary = program.binary(arch)
            isa = get_isa(arch)
            for point in binary.stackmaps.eqpoints:
                if point.kind != KIND_ENTRY:
                    continue
                trap = binary.code_at(point.trap_addr, len(isa.trap_bytes))
                assert trap == isa.trap_bytes

    def test_trap_precedes_resume(self, program):
        for binary in program.binaries.values():
            for point in binary.stackmaps.eqpoints:
                if point.kind == KIND_ENTRY:
                    assert point.trap_addr < point.addr


class TestCheckerInstrumentation:
    def test_checker_reads_flag_and_tls(self, program):
        # Disassemble main's prologue region: must contain a tlsload (the
        # disable flag) and a load of __dapper_flag before the trap.
        for arch in ("x86_64", "aarch64"):
            binary = program.binary(arch)
            isa = get_isa(arch)
            record = binary.frames.get("main")
            entry = binary.stackmaps.entry_for("main")
            code = binary.code_at(record.addr, entry.addr - record.addr)
            ops = [i.op for i in isa.disassemble(code, record.addr)]
            assert "tlsload" in ops
            assert "trap" in ops

    def test_thread_exit_has_no_trap(self, program):
        for arch in ("x86_64", "aarch64"):
            binary = program.binary(arch)
            isa = get_isa(arch)
            record = binary.frames.get(sysabi.RT_THREAD_EXIT)
            code = binary.code_at(record.addr,
                                  record.end_addr - record.addr)
            ops = [i.op for i in isa.disassemble(code, record.addr)]
            assert "trap" not in ops


class TestLinkerErrors:
    def test_verify_alignment_detects_mismatch(self, program):
        import copy
        binaries = dict(program.binaries)
        # Clone the arm symtab with one shifted symbol.
        from repro.binfmt import DelfBinary
        arm = binaries["aarch64"]
        tampered = DelfBinary.from_bytes(arm.to_bytes())
        sym = tampered.symtab.get("main")
        sym.addr += 16
        binaries["aarch64"] = tampered
        with pytest.raises(LinkError):
            verify_alignment(binaries)
