"""Tests for the DELF container and its metadata sections."""

import pytest

from repro.binfmt import (DelfBinary, EqPoint, FrameRecord, FrameSection,
                          LiveValue, LOC_BOTH, LOC_REG, LOC_STACK, Slot,
                          StackMapSection, Symbol, SymbolTable)
from repro.binfmt.delf import TEXT_BASE
from repro.errors import ImageFormatError, LinkError, LoaderError


class TestSymbolTable:
    def _table(self):
        return SymbolTable([
            Symbol("main", 0x400000, 0x100, "func", ".text"),
            Symbol("helper", 0x400100, 0x80, "func", ".text"),
            Symbol("g", 0x600000, 8, "object", ".data"),
            Symbol("t", 8, 8, "tls", ".tls"),
        ])

    def test_lookup(self):
        table = self._table()
        assert table.address_of("main") == 0x400000
        assert table.get("g").size == 8
        assert "main" in table
        assert "nope" not in table

    def test_undefined_raises(self):
        with pytest.raises(LinkError):
            self._table().get("nope")

    def test_duplicate_rejected(self):
        table = self._table()
        with pytest.raises(LinkError):
            table.add(Symbol("main", 0, 0, "func"))

    def test_find_containing(self):
        table = self._table()
        assert table.find_containing(0x400150).name == "helper"
        assert table.find_containing(0x500000) is None

    def test_functions_and_tls(self):
        table = self._table()
        assert {s.name for s in table.functions()} == {"main", "helper"}
        assert [s.name for s in table.tls_symbols()] == ["t"]

    def test_iteration_sorted_by_addr(self):
        names = [s.name for s in self._table()]
        assert names == ["t", "main", "helper", "g"]

    def test_serialization_roundtrip(self):
        table = self._table()
        copy = SymbolTable.from_bytes(table.to_bytes())
        assert len(copy) == len(table)
        assert copy.address_of("helper") == 0x400100


class TestStackMaps:
    def _section(self):
        live = [
            LiveValue(0, "a", LOC_BOTH, dwarf_reg=5, stack_offset=-8,
                      is_pointer=False, size=8),
            LiveValue(1, "p", LOC_STACK, stack_offset=-16, is_pointer=True),
        ]
        return StackMapSection([
            EqPoint(0, "main", "entry", 0x400020, trap_addr=0x40001F,
                    live=live),
            EqPoint(1, "main", "callsite", 0x400050, live=live),
        ])

    def test_lookups(self):
        maps = self._section()
        assert maps.by_id[0].kind == "entry"
        assert maps.by_addr[0x400050].eqpoint_id == 1
        assert maps.by_trap[0x40001F].eqpoint_id == 0
        assert maps.entry_for("main").eqpoint_id == 0
        assert len(maps.for_func("main")) == 2

    def test_duplicate_id_rejected(self):
        maps = self._section()
        with pytest.raises(ImageFormatError):
            maps.add(EqPoint(0, "x", "entry", 0x1000))

    def test_live_value_validation(self):
        with pytest.raises(ImageFormatError):
            LiveValue(0, "a", LOC_REG)          # needs dwarf_reg
        with pytest.raises(ImageFormatError):
            LiveValue(0, "a", LOC_STACK)        # needs stack_offset
        with pytest.raises(ImageFormatError):
            LiveValue(0, "a", "nowhere")

    def test_live_value_location_predicates(self):
        both = LiveValue(0, "a", LOC_BOTH, dwarf_reg=1, stack_offset=-8)
        assert both.in_register() and both.on_stack()
        reg = LiveValue(0, "a", LOC_REG, dwarf_reg=1)
        assert reg.in_register() and not reg.on_stack()

    def test_serialization_roundtrip(self):
        maps = self._section()
        copy = StackMapSection.from_bytes(maps.to_bytes())
        assert len(copy) == 2
        point = copy.by_id[0]
        assert point.trap_addr == 0x40001F
        assert point.live[0].dwarf_reg == 5
        assert point.live[1].is_pointer
        assert point.live[1].stack_offset == -16

    def test_bad_kind_rejected(self):
        with pytest.raises(ImageFormatError):
            EqPoint(5, "f", "middle", 0x1000)


class TestFrames:
    def _record(self):
        return FrameRecord("main", 0x400000, 0x400100, 48, 0, [
            Slot(0, "a", -8, 8, "param"),
            Slot(1, "arr", -40, 32, "array"),
            Slot(2, "p", -48, 8, "local", is_pointer=True,
                 pair_member=True),
        ])

    def test_slot_lookup(self):
        record = self._record()
        assert record.slot_by_id(1).name == "arr"
        assert record.slot_by_name("p").is_pointer
        assert record.slot_by_id(9) is None

    def test_slot_containing(self):
        record = self._record()
        assert record.slot_containing(-8).name == "a"
        assert record.slot_containing(-24).name == "arr"   # inside array
        assert record.slot_containing(-9).name == "arr"
        assert record.slot_containing(-100) is None

    def test_positive_offset_rejected(self):
        with pytest.raises(ImageFormatError):
            Slot(0, "bad", 8, 8)

    def test_section_lookup(self):
        section = FrameSection([self._record()])
        assert section.get("main").frame_size == 48
        assert section.containing(0x400050).func == "main"
        assert section.containing(0x500000) is None
        with pytest.raises(ImageFormatError):
            section.get("nope")

    def test_duplicate_rejected(self):
        section = FrameSection([self._record()])
        with pytest.raises(ImageFormatError):
            section.add(self._record())

    def test_serialization_roundtrip(self):
        section = FrameSection([self._record()])
        copy = FrameSection.from_bytes(section.to_bytes())
        record = copy.get("main")
        assert record.frame_size == 48
        assert record.slot_by_name("p").pair_member
        assert record.slot_by_name("arr").size == 32


class TestDelfBinary:
    def _binary(self):
        return DelfBinary(
            arch="x86_64", entry=TEXT_BASE, source_name="t",
            text=b"\x90" * 64, data=b"\x00" * 16,
            symtab=SymbolTable([Symbol("main", TEXT_BASE, 64, "func")]),
            stackmaps=StackMapSection([]),
            frames=FrameSection([]),
            tls_template=b"\x00" * 16,
            extra_sections={".note": b"hello"})

    def test_roundtrip(self):
        binary = self._binary()
        copy = DelfBinary.from_bytes(binary.to_bytes())
        assert copy.arch == "x86_64"
        assert copy.text == binary.text
        assert copy.extra_sections[".note"] == b"hello"
        assert copy.symtab.address_of("main") == TEXT_BASE
        assert copy.tls_size == 16

    def test_bad_magic(self):
        with pytest.raises(LoaderError):
            DelfBinary.from_bytes(b"NOPE" + b"\x00" * 10)

    def test_code_at(self):
        binary = self._binary()
        assert binary.code_at(TEXT_BASE + 8, 4) == b"\x90" * 4
        with pytest.raises(LoaderError):
            binary.code_at(TEXT_BASE + 100, 8)

    def test_section_data(self):
        binary = self._binary()
        assert binary.section_data(".text") == binary.text
        assert binary.section_data(".note") == b"hello"
        with pytest.raises(LoaderError):
            binary.section_data(".bogus")

    def test_default_segments(self):
        binary = self._binary()
        sections = {s.section for s in binary.segments}
        assert sections == {".text", ".data"}


class TestDecodingEdgeCases:
    """Edge cases the time-travel debugger leans on when decoding
    frames and live variables from arbitrary mid-run pc values."""

    # -- empty sections -----------------------------------------------

    def test_empty_frame_section(self):
        section = FrameSection()
        assert len(section) == 0
        assert section.containing(0x400000) is None
        with pytest.raises(ImageFormatError):
            section.get("main")

    def test_empty_frame_section_roundtrip(self):
        copy = FrameSection.from_bytes(FrameSection().to_bytes())
        assert len(copy) == 0
        assert copy.containing(0) is None

    def test_empty_stackmap_section(self):
        maps = StackMapSection()
        assert maps.by_addr.get(0x400000) is None
        assert maps.entry_for("main") is None
        copy = StackMapSection.from_bytes(maps.to_bytes())
        assert len(copy) == 0

    # -- pc between and outside frame extents -------------------------

    def _section(self):
        return FrameSection([
            FrameRecord("first", 0x400000, 0x400080, 16, 0,
                        [Slot(0, "x", -8, 8)]),
            FrameRecord("second", 0x400100, 0x400180, 16, 1,
                        [Slot(0, "y", -8, 8)]),
        ])

    def test_pc_in_gap_between_functions(self):
        section = self._section()
        # [0x400080, 0x400100) belongs to no function (padding)
        assert section.containing(0x400080) is None
        assert section.containing(0x4000FF) is None

    def test_pc_at_extent_boundaries(self):
        section = self._section()
        assert section.containing(0x400000).func == "first"
        assert section.containing(0x40007F).func == "first"
        assert section.containing(0x400100).func == "second"
        assert section.containing(0x40017F).func == "second"

    def test_pc_outside_all_extents(self):
        section = self._section()
        assert section.containing(0x3FFFFF) is None
        assert section.containing(0x400180) is None
        assert section.containing(0) is None

    def test_pc_between_eqpoints_has_no_livemap(self):
        maps = StackMapSection([
            EqPoint(0, "f", "entry", 0x400010),
            EqPoint(1, "f", "callsite", 0x400040),
        ])
        # mid-function pc that is not an equivalence point: no record,
        # the debugger falls back to frame slots
        assert maps.by_addr.get(0x400020) is None
        assert maps.by_addr.get(0x400010).kind == "entry"

    # -- variables spanning registers and stack slots ------------------

    def test_both_location_roundtrip(self):
        live = [
            LiveValue(0, "n", LOC_BOTH, dwarf_reg=5, stack_offset=-8,
                      size=8),
            LiveValue(1, "r", LOC_REG, dwarf_reg=0, size=8),
            LiveValue(2, "s", LOC_STACK, stack_offset=-24, size=16),
        ]
        maps = StackMapSection([EqPoint(0, "f", "entry", 0x400010,
                                        live=live)])
        copy = StackMapSection.from_bytes(maps.to_bytes())
        n, r, s = copy.by_id[0].live
        assert n.in_register() and n.on_stack()
        assert n.dwarf_reg == 5 and n.stack_offset == -8
        assert r.in_register() and not r.on_stack()
        assert s.on_stack() and not s.in_register()
        assert s.size == 16

    def test_wide_stack_value_spans_slots(self):
        record = FrameRecord("f", 0x400000, 0x400100, 48, 0, [
            Slot(0, "lo", -8, 8),
            Slot(1, "wide", -24, 16),
        ])
        # every byte of the 16-byte value resolves to the same slot
        for off in range(-24, -8):
            assert record.slot_containing(off).name == "wide"
        assert record.slot_containing(-8).name == "lo"
        assert record.slot_containing(-25) is None
