"""Tests for the protobuf-like wire format."""

import pytest
from hypothesis import given, strategies as st

from repro import wire
from repro.errors import WireError


class TestVarint:
    def test_zero(self):
        assert wire.encode_varint(0) == b"\x00"

    def test_small_values_single_byte(self):
        for value in range(128):
            assert len(wire.encode_varint(value)) == 1

    def test_128_takes_two_bytes(self):
        assert wire.encode_varint(128) == b"\x80\x01"

    def test_decode_roundtrip_specific(self):
        for value in (0, 1, 127, 128, 300, 2 ** 32, 2 ** 63):
            data = wire.encode_varint(value)
            decoded, pos = wire.decode_varint(data)
            assert decoded == value
            assert pos == len(data)

    def test_negative_rejected(self):
        with pytest.raises(WireError):
            wire.encode_varint(-1)

    def test_truncated_raises(self):
        with pytest.raises(WireError):
            wire.decode_varint(b"\x80")

    def test_decode_with_offset(self):
        data = b"\xff" + wire.encode_varint(300)
        value, pos = wire.decode_varint(data, 1)
        assert value == 300
        assert pos == len(data)

    @given(st.integers(min_value=0, max_value=2 ** 64 - 1))
    def test_roundtrip_property(self, value):
        decoded, _ = wire.decode_varint(wire.encode_varint(value))
        assert decoded == value


class TestZigzag:
    def test_known_values(self):
        assert wire.zigzag_encode(0) == 0
        assert wire.zigzag_encode(-1) == 1
        assert wire.zigzag_encode(1) == 2
        assert wire.zigzag_encode(-2) == 3

    @given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
    def test_roundtrip_property(self, value):
        assert wire.zigzag_decode(wire.zigzag_encode(value)) == value

    @given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
    def test_signed_varint_roundtrip(self, value):
        data = wire.encode_signed_varint(value)
        decoded, _ = wire.decode_signed_varint(data)
        assert decoded == value


class TestFields:
    def test_int_field_roundtrip(self):
        data = wire.encode_field(3, -42)
        fields = list(wire.iter_fields(data))
        assert fields == [(3, wire.WIRE_VARINT, -42)]

    def test_bytes_field_roundtrip(self):
        data = wire.encode_field(5, b"hello")
        fields = list(wire.iter_fields(data))
        assert fields == [(5, wire.WIRE_LEN, b"hello")]

    def test_str_field_encodes_utf8(self):
        data = wire.encode_field(1, "héllo")
        fields = list(wire.iter_fields(data))
        assert fields[0][2] == "héllo".encode("utf-8")

    def test_bool_encodes_as_int(self):
        data = wire.encode_field(1, True)
        assert list(wire.iter_fields(data))[0][2] == 1

    def test_unsupported_type_raises(self):
        with pytest.raises(WireError):
            wire.encode_field(1, 3.14)

    def test_truncated_length_delimited(self):
        data = wire.encode_field(1, b"hello")[:-2]
        with pytest.raises(WireError):
            list(wire.iter_fields(data))


NESTED = wire.Schema("inner", [
    wire.field(1, "x", "int"),
    wire.field(2, "tag", "str"),
])

OUTER = wire.Schema("outer", [
    wire.field(1, "name", "str"),
    wire.field(2, "count", "int"),
    wire.field(3, "blob", "bytes"),
    wire.field(4, "items", "message", repeated=True, message=NESTED),
    wire.field(5, "numbers", "int", repeated=True),
])


class TestSchema:
    def test_roundtrip(self):
        obj = {"name": "abc", "count": -7, "blob": b"\x00\x01",
               "items": [{"x": 1, "tag": "a"}, {"x": -2, "tag": "b"}],
               "numbers": [1, 2, 3]}
        decoded = OUTER.decode(OUTER.encode(obj))
        assert decoded == obj

    def test_absent_repeated_decodes_empty(self):
        decoded = OUTER.decode(OUTER.encode({"name": "x"}))
        assert decoded["items"] == []
        assert decoded["numbers"] == []

    def test_unknown_field_name_raises(self):
        with pytest.raises(WireError):
            OUTER.encode({"bogus": 1})

    def test_unknown_field_number_raises(self):
        data = wire.encode_field(99, 1)
        with pytest.raises(WireError):
            OUTER.decode(data)

    def test_duplicate_field_number_rejected(self):
        with pytest.raises(WireError):
            wire.Schema("bad", [wire.field(1, "a", "int"),
                                wire.field(1, "b", "int")])

    def test_duplicate_field_name_rejected(self):
        with pytest.raises(WireError):
            wire.Schema("bad", [wire.field(1, "a", "int"),
                                wire.field(2, "a", "int")])

    def test_message_kind_requires_schema(self):
        with pytest.raises(WireError):
            wire.field(1, "m", "message")

    def test_wrong_wire_type_raises(self):
        # field 2 ("count") is an int; feed it a length-delimited value
        data = wire.encode_field(2, b"oops")
        with pytest.raises(WireError):
            OUTER.decode(data)

    @given(st.lists(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
                    max_size=20),
           st.binary(max_size=64), st.text(max_size=32))
    def test_roundtrip_property(self, numbers, blob, name):
        obj = {"name": name, "blob": blob, "numbers": numbers, "items": []}
        assert OUTER.decode(OUTER.encode(obj)) == obj


class TestDecoderFuzz:
    """Truncated and garbage input must raise WireError — never hang,
    never read past the buffer, never leak a non-wire exception.

    The flight-recorder journal decoder sits on top of this layer, so a
    corrupt journal file must surface as a clean error."""

    def _decode_all(self, data):
        # Force the iter_fields generator to completion.
        return list(wire.iter_fields(data))

    def test_truncated_varint_every_prefix(self):
        data = wire.encode_varint(2 ** 56 - 1)
        for cut in range(len(data)):
            with pytest.raises(WireError):
                wire.decode_varint(data[:cut] if cut else b"")

    def test_overlong_varint_rejected(self):
        # 11 continuation bytes exceed the 70-bit shift limit.
        with pytest.raises(WireError):
            wire.decode_varint(b"\x80" * 11 + b"\x01")

    def test_length_prefix_beyond_buffer(self):
        # claims an on-wire length far past the end of the data
        data = wire._encode_key(1, wire.WIRE_LEN) + wire.encode_varint(1000)
        with pytest.raises(WireError):
            self._decode_all(data + b"short")

    def test_huge_length_prefix_does_not_allocate(self):
        data = wire._encode_key(1, wire.WIRE_LEN) \
            + wire.encode_varint(2 ** 62)
        with pytest.raises(WireError):
            self._decode_all(data)

    def test_unsupported_wire_types_rejected(self):
        for wire_type in (1, 3, 4, 5, 6, 7):
            with pytest.raises(WireError):
                self._decode_all(wire.encode_varint((1 << 3) | wire_type))

    def test_truncated_message_every_prefix(self):
        full = OUTER.encode({"name": "hello", "count": 7,
                             "blob": b"\x01\x02\x03",
                             "numbers": [1, -2, 3]})
        for cut in range(len(full)):
            try:
                OUTER.decode(full[:cut])
            except WireError:
                pass  # rejecting a truncation is always acceptable

    def test_invalid_utf8_in_str_field_raises_wire_error(self):
        data = wire._encode_key(1, wire.WIRE_LEN) \
            + wire.encode_varint(2) + b"\xff\xfe"
        with pytest.raises(WireError):
            OUTER.decode(data)

    @given(st.binary(max_size=256))
    def test_garbage_never_escapes_wire_error(self, data):
        try:
            self._decode_all(data)
        except WireError:
            pass

    @given(st.binary(max_size=256))
    def test_schema_decode_garbage_never_escapes_wire_error(self, data):
        try:
            OUTER.decode(data)
        except WireError:
            pass

    @given(st.binary(max_size=128), st.integers(0, 127))
    def test_corrupted_valid_message(self, noise, position):
        base = OUTER.encode({"name": "seed", "count": 1,
                             "blob": b"abc", "numbers": [5, 6]})
        data = base[:position % (len(base) + 1)] + noise
        try:
            OUTER.decode(data)
        except WireError:
            pass
