"""Tests for IR generation and the equivalence-point middle-end pass."""

import pytest

from repro import sysabi
from repro.compiler import ir, irgen
from repro.compiler.passes import count_eqpoints, run_middle_end
from repro.errors import CompileError


def lower(source):
    program = irgen.lower(source, "t")
    run_middle_end(program)
    return program


class TestPrelude:
    def test_runtime_functions_injected(self):
        program = lower("func main() -> int { return 0; }")
        names = [f.name for f in program.functions]
        assert sysabi.RT_START in names
        assert sysabi.RT_POLL in names
        assert sysabi.RT_THREAD_EXIT in names

    def test_thread_exit_has_no_checker(self):
        program = lower("func main() -> int { return 0; }")
        assert program.function(sysabi.RT_THREAD_EXIT).no_checker
        assert not program.function("main").no_checker

    def test_missing_main_rejected(self):
        with pytest.raises(CompileError):
            irgen.lower("func f() { }", "t")


class TestSlots:
    def test_params_then_locals(self):
        program = lower("""
        func f(int a, int b) -> int { int c; int d[3]; return a; }
        func main() -> int { return f(1, 2); }
        """)
        slots = program.function("f").slots
        assert [s.name for s in slots[:4]] == ["a", "b", "c", "d"]
        assert slots[3].kind == ir.SLOT_ARRAY
        assert slots[3].size == 24

    def test_pointer_slots_marked(self):
        program = lower("""
        func f(int *p) -> int { int *q; q = p; return *q; }
        func main() -> int { int x; return f(&x); }
        """)
        func = program.function("f")
        assert func.slot_by_name("p").is_pointer
        assert func.slot_by_name("q").is_pointer

    def test_call_results_get_calltmp_slots(self):
        program = lower("""
        func g() -> int { return 1; }
        func main() -> int { int x; x = g() + g(); return x; }
        """)
        main = program.function("main")
        calltmps = [s for s in main.slots if s.kind == ir.SLOT_CALLTMP]
        assert len(calltmps) == 2

    def test_duplicate_local_rejected(self):
        with pytest.raises(CompileError):
            lower("func main() -> int { int a; int a; return 0; }")

    def test_too_many_params_rejected(self):
        with pytest.raises(CompileError):
            lower("func f(int a, int b, int c, int d, int e, int f, int g)"
                  " -> int { return 0; } func main() -> int { return 0; }")


class TestHoisting:
    def test_no_call_survives_inside_expression(self):
        program = lower("""
        func g(int x) -> int { return x; }
        func main() -> int {
            int y;
            y = g(g(1) + 2) * g(3);
            print(g(y));
            return g(y) + 1;
        }
        """)
        # Every CallIr must be a statement-level instruction; check that
        # call args are temps computed from slot reads, not nested calls.
        main = program.function("main")
        calls = [i for i in main.body if isinstance(i, ir.CallIr)]
        assert len(calls) == 5   # g(1), g(..+2), g(3), g(y), g(y)

    def test_call_in_condition_reevaluated_in_loop(self):
        program = lower("""
        func check(int i) -> int { return i < 3; }
        func main() -> int {
            int i;
            i = 0;
            while (check(i)) { i = i + 1; }
            return i;
        }
        """)
        main = program.function("main")
        body = main.body
        # The call to check() must appear after the loop-top label so the
        # condition is re-evaluated each iteration.
        label_idx = next(i for i, instr in enumerate(body)
                         if isinstance(instr, ir.Label)
                         and instr.name.startswith(".Lwhile"))
        call_idx = next(i for i, instr in enumerate(body)
                        if isinstance(instr, ir.CallIr)
                        and instr.func == "check")
        assert call_idx > label_idx

    def test_void_call_as_value_rejected(self):
        with pytest.raises(CompileError):
            lower("""
            func v() { }
            func main() -> int { int x; x = v() + 1; return x; }
            """)


class TestBuiltins:
    def test_print_becomes_syscall(self):
        program = lower("func main() -> int { print(1); return 0; }")
        syscalls = [i for i in program.function("main").body
                    if isinstance(i, ir.SyscallIr)]
        assert any(s.number == sysabi.SYS_PRINT_INT for s in syscalls)

    def test_lock_becomes_polling_loop(self):
        program = lower("""
        global int m;
        func main() -> int { lock(&m); unlock(&m); return 0; }
        """)
        main = program.function("main")
        numbers = [i.number for i in main.body
                   if isinstance(i, ir.SyscallIr)]
        assert sysabi.SYS_TRY_LOCK in numbers
        assert sysabi.SYS_UNLOCK in numbers
        polls = [i for i in main.body if isinstance(i, ir.CallIr)
                 and i.func == sysabi.RT_POLL]
        assert polls, "lock must poll through __poll (an eqpoint)"

    def test_join_becomes_polling_loop(self):
        program = lower("""
        func w(int x) { }
        func main() -> int { int t; t = spawn(w, 1); join(t); return 0; }
        """)
        main = program.function("main")
        numbers = [i.number for i in main.body
                   if isinstance(i, ir.SyscallIr)]
        assert sysabi.SYS_SPAWN in numbers
        assert sysabi.SYS_TRY_JOIN in numbers

    def test_spawn_requires_function_name(self):
        with pytest.raises(CompileError):
            lower("func main() -> int { int x; spawn(x, 1); return 0; }")

    def test_spawn_arg_limit(self):
        with pytest.raises(CompileError):
            lower("""
            func w(int a, int b) { }
            func main() -> int { spawn(w, 1); return 0; }
            """)

    def test_sbrk_result_is_pointer_calltmp(self):
        program = lower("""
        func main() -> int { int *p; p = sbrk(64) + 1; return *p; }
        """)
        main = program.function("main")
        calltmps = [s for s in main.slots if s.kind == ir.SLOT_CALLTMP]
        assert calltmps and calltmps[0].is_pointer

    def test_unknown_variable_rejected(self):
        with pytest.raises(CompileError):
            lower("func main() -> int { return nope; }")

    def test_wrong_arity_rejected(self):
        with pytest.raises(CompileError):
            lower("""
            func g(int a) -> int { return a; }
            func main() -> int { return g(1, 2); }
            """)


class TestEqPointAssignment:
    def test_every_function_has_entry_eqpoint(self):
        program = lower("""
        func a() -> int { return 1; }
        func main() -> int { return a(); }
        """)
        for func in program.functions:
            assert func.entry_eqpoint is not None

    def test_callsites_get_unique_ids(self):
        program = lower("""
        func a() -> int { return 1; }
        func main() -> int { return a() + a(); }
        """)
        ids = set()
        for func in program.functions:
            ids.add(func.entry_eqpoint)
            for instr in func.body:
                if isinstance(instr, ir.CallIr):
                    assert instr.eqpoint_id is not None
                    ids.add(instr.eqpoint_id)
        total = count_eqpoints(program)
        assert len(ids) == total

    def test_ids_deterministic(self):
        src = """
        func a() -> int { return 1; }
        func main() -> int { return a(); }
        """
        p1, p2 = lower(src), lower(src)
        assert ([f.entry_eqpoint for f in p1.functions]
                == [f.entry_eqpoint for f in p2.functions])


class TestPointerArithmetic:
    def test_pointer_plus_int_scales(self):
        # p + 1 must advance by 8 bytes: verified behaviourally elsewhere;
        # here check the IR contains the scaling multiply.
        program = lower("""
        func main() -> int {
            int a[4]; int *p;
            p = &a[0];
            p = p + 1;
            return *p;
        }
        """)
        main = program.function("main")
        muls = [i for i in main.body if isinstance(i, ir.Bin)
                and i.op == "mul"]
        assert muls
