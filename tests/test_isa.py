"""Tests for the two simulated ISAs: encode/decode, sizes, ABI, DWARF."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodingError, EncodingError
from repro.isa import ARM_ISA, ISAS, X86_ISA, Instruction, get_isa, other_isa
from repro.isa.arm import expand_movi
from repro.isa.registers import ARM_REGISTERS, X86_REGISTERS


class TestRegisters:
    def test_x86_dwarf_numbering_matches_sysv(self):
        assert X86_REGISTERS.dwarf("rax") == 0
        assert X86_REGISTERS.dwarf("rdx") == 1
        assert X86_REGISTERS.dwarf("rbp") == 6
        assert X86_REGISTERS.dwarf("rsp") == 7
        assert X86_REGISTERS.dwarf("r15") == 15

    def test_arm_dwarf_numbering(self):
        assert ARM_REGISTERS.dwarf("x0") == 0
        assert ARM_REGISTERS.dwarf("x30") == 30
        assert ARM_REGISTERS.dwarf("sp") == 31

    def test_register_counts_riscs_have_more(self):
        # The paper's footnote: RISC architectures tend to have more GPRs.
        assert len(ARM_REGISTERS) > len(X86_REGISTERS)

    def test_lookup_by_index_and_name_agree(self):
        for isa in (X86_ISA, ARM_ISA):
            for reg in isa.registers:
                assert isa.reg(reg.name) == reg.index
                assert isa.reg_name(reg.index) == reg.name
                assert isa.index_of_dwarf(reg.dwarf) == reg.index


class TestLookup:
    def test_get_isa(self):
        assert get_isa("x86_64") is X86_ISA
        assert get_isa("aarch64") is ARM_ISA

    def test_get_isa_unknown(self):
        with pytest.raises(KeyError):
            get_isa("mips")

    def test_other_isa(self):
        assert other_isa("x86_64") is ARM_ISA
        assert other_isa("aarch64") is X86_ISA


class TestTrapEncodings:
    def test_x86_trap_is_int3(self):
        assert X86_ISA.trap_bytes == b"\xcc"

    def test_arm_trap_is_paper_brk(self):
        # Paper footnote 2: "the instruction of bytes 0xD4200000".
        assert ARM_ISA.trap_bytes == bytes([0xD4, 0x20, 0x00, 0x00])

    def test_x86_ret_is_c3(self):
        assert X86_ISA.ret_bytes == b"\xc3"


def _roundtrip(isa, instr):
    instr.addr = instr.addr or 0x1000
    data = isa.encode(instr)
    decoded = isa.decode(data, 0, instr.addr)
    assert decoded.size == len(data)
    return decoded


class TestX86Encoding:
    def test_mov_roundtrip(self):
        d = _roundtrip(X86_ISA, Instruction("mov", rd=3, rn=5))
        assert (d.op, d.rd, d.rn) == ("mov", 3, 5)

    def test_movi_negative(self):
        d = _roundtrip(X86_ISA, Instruction("movi", rd=1, imm=-123456789))
        assert d.imm == -123456789

    def test_load_store_offsets(self):
        d = _roundtrip(X86_ISA, Instruction("load", rd=2, rn=6, imm=-4096))
        assert (d.op, d.rd, d.rn, d.imm) == ("load", 2, 6, -4096)
        d = _roundtrip(X86_ISA, Instruction("store", rd=2, rn=6, imm=8))
        assert (d.op, d.rd, d.rn, d.imm) == ("store", 2, 6, 8)

    def test_binops_roundtrip(self):
        for op in ("add", "sub", "mul", "sdiv", "srem", "and", "orr",
                   "eor", "lsl", "lsr"):
            d = _roundtrip(X86_ISA, Instruction(op, rd=4, rn=4, rm=7))
            assert (d.op, d.rd, d.rm) == (op, 4, 7)

    def test_two_operand_constraint(self):
        with pytest.raises(EncodingError):
            X86_ISA.encode(Instruction("add", rd=1, rn=2, rm=3))

    def test_branch_rel32_forward_and_back(self):
        for target in (0x1100, 0x0F00):
            instr = Instruction("b", target=target)
            instr.addr = 0x1000
            d = X86_ISA.decode(X86_ISA.encode(instr), 0, 0x1000)
            assert d.target == target

    def test_conditional_branches(self):
        for cond in ("eq", "ne", "lt", "le", "gt", "ge"):
            instr = Instruction("bcc", cond=cond, target=0x2000)
            instr.addr = 0x1000
            d = X86_ISA.decode(X86_ISA.encode(instr), 0, 0x1000)
            assert (d.op, d.cond, d.target) == ("bcc", cond, 0x2000)

    def test_call_roundtrip(self):
        instr = Instruction("call", target=0x400000)
        instr.addr = 0x400100
        d = X86_ISA.decode(X86_ISA.encode(instr), 0, 0x400100)
        assert d.target == 0x400000

    def test_tls_ops(self):
        d = _roundtrip(X86_ISA, Instruction("tlsload", rd=0, imm=24))
        assert (d.op, d.rd, d.imm) == ("tlsload", 0, 24)
        d = _roundtrip(X86_ISA, Instruction("tlsstore", rd=3, imm=16))
        assert (d.op, d.rd, d.imm) == ("tlsstore", 3, 16)

    def test_push_pop(self):
        assert _roundtrip(X86_ISA, Instruction("push", rd=6)).rd == 6
        assert _roundtrip(X86_ISA, Instruction("pop", rd=6)).op == "pop"

    def test_syscall(self):
        assert _roundtrip(X86_ISA, Instruction("syscall")).op == "syscall"

    def test_size_matches_encoding_for_all_ops(self):
        samples = [
            Instruction("nop"), Instruction("trap"), Instruction("ret"),
            Instruction("push", rd=1), Instruction("pop", rd=1),
            Instruction("mov", rd=1, rn=2),
            Instruction("movi", rd=1, imm=99),
            Instruction("load", rd=1, rn=6, imm=-8),
            Instruction("store", rd=1, rn=6, imm=-8),
            Instruction("lea", rd=1, rn=6, imm=-8),
            Instruction("add", rd=1, rn=1, rm=2),
            Instruction("addi", rd=1, rn=1, imm=5),
            Instruction("cmp", rn=1, rm=2),
            Instruction("cmpi", rn=1, imm=5),
            Instruction("syscall"),
            Instruction("tlsload", rd=1, imm=8),
        ]
        for instr in samples:
            instr.addr = 0
            assert len(X86_ISA.encode(instr)) == X86_ISA.size_of(instr)

    def test_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            X86_ISA.encode(Instruction("frobnicate"))

    def test_arm_only_op_rejected(self):
        with pytest.raises(EncodingError):
            X86_ISA.size_of(Instruction("ldp", rd=0, rm=1, imm=0))

    def test_bad_register_byte_decode(self):
        with pytest.raises(DecodingError):
            X86_ISA.decode(bytes([0x89, 99, 0]), 0, 0)

    def test_unknown_opcode_decode(self):
        with pytest.raises(DecodingError):
            X86_ISA.decode(b"\x06", 0, 0)

    def test_immediate_range_checked(self):
        with pytest.raises(EncodingError):
            X86_ISA.encode(Instruction("addi", rd=1, rn=1, imm=1 << 40))


class TestArmEncoding:
    def test_fixed_width(self):
        assert ARM_ISA.fixed_width == 4

    def test_mov_roundtrip(self):
        d = _roundtrip(ARM_ISA, Instruction("mov", rd=29, rn=31))
        assert (d.rd, d.rn) == (29, 31)

    def test_ldp_stp_scaled_offsets(self):
        d = _roundtrip(ARM_ISA, Instruction("stp", rd=0, rm=1, imm=-48))
        assert (d.op, d.rd, d.rm, d.imm) == ("stp", 0, 1, -48)
        d = _roundtrip(ARM_ISA, Instruction("ldp", rd=2, rm=3, imm=120))
        assert (d.op, d.imm) == ("ldp", 120)

    def test_load_offset_must_be_aligned(self):
        with pytest.raises(EncodingError):
            ARM_ISA.encode(Instruction("load", rd=0, rn=29, imm=-13))

    def test_load_offset_range(self):
        with pytest.raises(EncodingError):
            ARM_ISA.encode(Instruction("load", rd=0, rn=29, imm=-2048))

    def test_movi_expansion_minimal(self):
        assert len(expand_movi(0, 0x1234)) == 1
        assert len(expand_movi(0, 0x12345)) == 2
        assert len(expand_movi(0, 0x123456789)) == 3
        assert len(expand_movi(0, 1 << 60)) == 4

    def test_movi_full_always_four_words(self):
        instr = Instruction("movi_full", rd=0, imm=5)
        assert ARM_ISA.size_of(instr) == 16
        assert len(ARM_ISA.encode(instr)) == 16

    def test_movi_negative_uses_full_chunks(self):
        instr = Instruction("movi", rd=0, imm=-1)
        instr.addr = 0
        data = ARM_ISA.encode(instr)
        assert len(data) == 16   # all four 16-bit chunks are 0xFFFF

    def test_branch_roundtrip(self):
        instr = Instruction("b", target=0x40_0000)
        instr.addr = 0x40_1000
        d = ARM_ISA.decode(ARM_ISA.encode(instr), 0, 0x40_1000)
        assert d.target == 0x40_0000

    def test_branch_misaligned_rejected(self):
        instr = Instruction("b", target=0x1002)
        instr.addr = 0x1000
        with pytest.raises(EncodingError):
            ARM_ISA.encode(instr)

    def test_bcc_roundtrip(self):
        for cond in ("eq", "ne", "lt", "le", "gt", "ge"):
            instr = Instruction("bcc", cond=cond, target=0x1100)
            instr.addr = 0x1000
            d = ARM_ISA.decode(ARM_ISA.encode(instr), 0, 0x1000)
            assert (d.cond, d.target) == (cond, 0x1100)

    def test_addi_negative_becomes_subi(self):
        d = _roundtrip(ARM_ISA, Instruction("addi", rd=1, rn=2, imm=-16))
        assert (d.op, d.imm) == ("addi", -16)

    def test_addi_range(self):
        with pytest.raises(EncodingError):
            ARM_ISA.encode(Instruction("addi", rd=1, rn=2, imm=300))

    def test_x86_only_op_rejected(self):
        with pytest.raises(EncodingError):
            ARM_ISA.size_of(Instruction("push", rd=0))

    def test_whole_word_decodes(self):
        from repro.isa.arm import BYTES_NOP, BYTES_RET, BYTES_SVC
        assert ARM_ISA.decode(BYTES_NOP, 0, 0).op == "nop"
        assert ARM_ISA.decode(BYTES_RET, 0, 0).op == "ret"
        assert ARM_ISA.decode(BYTES_SVC, 0, 0).op == "syscall"
        assert ARM_ISA.decode(ARM_ISA.trap_bytes, 0, 0).op == "trap"

    def test_truncated_word(self):
        with pytest.raises(DecodingError):
            ARM_ISA.decode(b"\x01\x02", 0, 0)


class TestDisassembler:
    def test_linear_sweep_with_junk(self):
        code = (X86_ISA.encode_block(
            [Instruction("nop"), Instruction("ret")], 0)
            + b"\x06\x07"     # junk bytes
            + b"\xc3")
        instrs = X86_ISA.disassemble(code, 0)
        ops = [i.op for i in instrs]
        assert ops == ["nop", "ret", ".byte", ".byte", "ret"]

    def test_addresses_assigned(self):
        code = X86_ISA.encode_block(
            [Instruction("movi", rd=0, imm=7), Instruction("ret")], 0x400000)
        instrs = X86_ISA.disassemble(code, 0x400000)
        assert instrs[0].addr == 0x400000
        assert instrs[1].addr == 0x40000A

    def test_arm_sweep(self):
        block = [Instruction("mov", rd=0, rn=1), Instruction("ret")]
        code = ARM_ISA.encode_block(block, 0)
        instrs = ARM_ISA.disassemble(code, 0)
        assert [i.op for i in instrs] == ["mov", "ret"]


class TestCostModel:
    def test_default_cost_is_one(self):
        assert X86_ISA.cost(Instruction("nop")) == 1

    def test_memory_ops_cost_more(self):
        assert X86_ISA.cost(Instruction("load", rd=0, rn=6, imm=0)) > 1
        assert ARM_ISA.cost(Instruction("sdiv", rd=0, rn=1, rm=2)) > 4


@given(st.sampled_from(["add", "sub", "mul", "and", "orr", "eor"]),
       st.integers(min_value=0, max_value=15),
       st.integers(min_value=0, max_value=15))
def test_x86_binop_roundtrip_property(op, rd, rm):
    instr = Instruction(op, rd=rd, rn=rd, rm=rm)
    instr.addr = 0
    decoded = X86_ISA.decode(X86_ISA.encode(instr), 0, 0)
    assert (decoded.op, decoded.rd, decoded.rm) == (op, rd, rm)


@given(st.integers(min_value=0, max_value=31),
       st.integers(min_value=0, max_value=31),
       st.integers(min_value=-128, max_value=127))
def test_arm_load_roundtrip_property(rt, rn, scaled):
    instr = Instruction("load", rd=rt, rn=rn, imm=scaled * 8)
    instr.addr = 0
    decoded = ARM_ISA.decode(ARM_ISA.encode(instr), 0, 0)
    assert (decoded.rd, decoded.rn, decoded.imm) == (rt, rn, scaled * 8)


@given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
def test_movi_roundtrip_both_isas_property(value):
    for isa in ISAS.values():
        instr = Instruction("movi", rd=0, imm=value)
        instr.addr = 0
        data = isa.encode(instr)
        if isa.fixed_width:
            # movz/movk sequence: execute it mentally via decode sweep.
            acc = 0
            offset = 0
            while offset < len(data):
                part = isa.decode(data, offset, offset)
                if part.op == "movz":
                    acc = part.imm
                else:
                    shift = {"movk1": 16, "movk2": 32, "movk3": 48}[part.op]
                    acc |= part.imm << shift
                offset += part.size
            signed = acc - (1 << 64) if acc >> 63 else acc
            assert signed == value
        else:
            assert isa.decode(data, 0, 0).imm == value
