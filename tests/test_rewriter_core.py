"""Tests for ImageMemory, unwinding, register mapping and TLS adjustment."""

import pytest

from repro.core.migration import exe_path_for, install_program
from repro.core.regmap import register_mapping, translate_registers
from repro.core.rewriter import ImageMemory, ProcessRewriter
from repro.core.runtime import DapperRuntime
from repro.core.stack_rewrite import unwind_thread
from repro.core.tlsmod import tls_block_address, translate_tls_base
from repro.errors import RewriteError
from repro.isa import ARM_ISA, X86_ISA
from repro.mem.paging import PAGE_SIZE
from repro.vm import Machine


@pytest.fixture
def checkpoint(counter_program):
    machine = Machine(X86_ISA)
    install_program(machine, counter_program)
    process = machine.spawn_process(exe_path_for("counter", "x86_64"))
    machine.step_all(2500)
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    return runtime.checkpoint()


class TestImageMemory:
    def test_read_write_words(self, checkpoint):
        memory = ImageMemory(checkpoint)
        base = memory.page_bases()[0]
        memory.write_u64(base + 8, 0xABCDEF0102030405)
        assert memory.read_u64(base + 8) == 0xABCDEF0102030405
        memory.write_i64(base + 16, -7)
        assert memory.read_i64(base + 16) == -7

    def test_write_materializes_missing_page(self, checkpoint):
        memory = ImageMemory(checkpoint)
        fresh = 0x7000000
        assert not memory.has_page(fresh)
        memory.write_u64(fresh + 24, 99)
        assert memory.has_page(fresh)
        assert memory.read_u64(fresh + 24) == 99

    def test_read_missing_page_is_zero(self, checkpoint):
        memory = ImageMemory(checkpoint)
        assert memory.read(0x7100000, 16) == bytes(16)

    def test_add_drop_page(self, checkpoint):
        memory = ImageMemory(checkpoint)
        memory.add_page(0x7200000, b"\xAA" * PAGE_SIZE)
        assert memory.read(0x7200000, 2) == b"\xAA\xAA"
        memory.drop_page(0x7200000)
        assert not memory.has_page(0x7200000)
        with pytest.raises(RewriteError):
            memory.add_page(0x7200000, b"short")

    def test_flush_roundtrips_through_images(self, checkpoint):
        memory = ImageMemory(checkpoint)
        base = memory.page_bases()[0]
        memory.write_u64(base, 0x1122334455667788)
        memory.flush()
        memory2 = ImageMemory(checkpoint)
        assert memory2.read_u64(base) == 0x1122334455667788

    def test_cross_page_write(self, checkpoint):
        memory = ImageMemory(checkpoint)
        base = memory.page_bases()[0]
        data = bytes(range(256))
        memory.write(base + PAGE_SIZE - 100, data)
        assert memory.read(base + PAGE_SIZE - 100, 256) == data

    def test_rewriter_requires_policy(self, checkpoint):
        with pytest.raises(RewriteError):
            ProcessRewriter().rewrite(checkpoint)


class TestUnwinding:
    def test_unwind_reaches_start(self, checkpoint, counter_program):
        memory = ImageMemory(checkpoint)
        core = checkpoint.cores()[0]
        unwound = unwind_thread(memory, core,
                                counter_program.binary("x86_64"))
        funcs = [f.func for f in unwound.frames]
        # Innermost is whatever parked; outermost must be _start.
        assert funcs[-1] == "_start"
        assert unwound.frames[-1].saved_fp == 0

    def test_innermost_is_entry_eqpoint(self, checkpoint, counter_program):
        memory = ImageMemory(checkpoint)
        core = checkpoint.cores()[0]
        unwound = unwind_thread(memory, core,
                                counter_program.binary("x86_64"))
        assert unwound.frames[0].eqpoint.kind == "entry"
        for frame in unwound.frames[1:]:
            assert frame.eqpoint.kind == "callsite"

    def test_live_values_read(self, checkpoint, counter_program):
        memory = ImageMemory(checkpoint)
        core = checkpoint.cores()[0]
        unwound = unwind_thread(memory, core,
                                counter_program.binary("x86_64"))
        for frame in unwound.frames:
            assert set(frame.values) == \
                {lv.value_id for lv in frame.eqpoint.live}

    def test_bad_pc_rejected(self, checkpoint, counter_program):
        memory = ImageMemory(checkpoint)
        core = checkpoint.cores()[0]
        core.pc = 0x400001   # not an eqpoint
        with pytest.raises(RewriteError):
            unwind_thread(memory, core, counter_program.binary("x86_64"))


class TestRegisterMapping:
    def test_fig4_style_mapping(self, counter_program):
        x86_entry = counter_program.binary("x86_64").stackmaps.entry_for(
            "work")
        arm_entry = counter_program.binary("aarch64").stackmaps.entry_for(
            "work")
        mapping = register_mapping(x86_entry, arm_entry)
        assert mapping, "parameters must map register-to-register"
        name, src_dwarf, dst_dwarf = mapping[0]
        assert name == "i"
        assert src_dwarf == 5      # rdi
        assert dst_dwarf == 0      # x0

    def test_translate_concrete_values(self, counter_program):
        x86_entry = counter_program.binary("x86_64").stackmaps.entry_for(
            "work")
        arm_entry = counter_program.binary("aarch64").stackmaps.entry_for(
            "work")
        translated = translate_registers({5: 1234}, x86_entry, arm_entry)
        assert translated == {0: 1234}

    def test_mismatched_eqpoints_rejected(self, counter_program):
        maps = counter_program.binary("x86_64").stackmaps
        entry_a = maps.entry_for("work")
        entry_b = maps.entry_for("main")
        with pytest.raises(RewriteError):
            register_mapping(entry_a, entry_b)

    def test_missing_source_register_rejected(self, counter_program):
        x86_entry = counter_program.binary("x86_64").stackmaps.entry_for(
            "work")
        arm_entry = counter_program.binary("aarch64").stackmaps.entry_for(
            "work")
        with pytest.raises(RewriteError):
            translate_registers({}, x86_entry, arm_entry)


class TestTlsTranslation:
    def test_block_address_invariant(self):
        # The TLS block must stay at the same virtual address after the
        # thread-pointer adjustment (paper §III-C).
        tp_src = 0x20000000
        block = tls_block_address(tp_src, "x86_64")
        tp_dst = translate_tls_base(tp_src, "x86_64", "aarch64")
        assert tls_block_address(tp_dst, "aarch64") == block

    def test_roundtrip_identity(self):
        tp = 0x20000000
        there = translate_tls_base(tp, "x86_64", "aarch64")
        back = translate_tls_base(there, "aarch64", "x86_64")
        assert back == tp

    def test_same_arch_is_identity(self):
        assert translate_tls_base(0x1234000, "x86_64", "x86_64") == 0x1234000

    def test_offsets_actually_differ(self):
        assert X86_ISA.abi.tls_block_offset != ARM_ISA.abi.tls_block_offset
