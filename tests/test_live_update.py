"""Tests for the live-update policy (DSU over Dapper's rewriter)."""

import pytest

from repro.compiler import compile_source
from repro.core.migration import exe_path_for, install_program
from repro.core.policies.live_update import LiveUpdatePolicy
from repro.core.rewriter import ProcessRewriter
from repro.core.runtime import DapperRuntime
from repro.criu.restore import restore_process
from repro.errors import PolicyError
from repro.isa import ARM_ISA, X86_ISA, get_isa
from repro.vm import Machine

# v1: a long-running server computing a per-request "price" with a buggy
# formula. v2 patches the formula (no new calls), adds a new local and a
# new global counter — a classic hotfix.
V1_SOURCE = """
global int served;

func price(int amount) -> int {
    int fee;
    fee = amount / 10;
    return amount + fee;
}

func serve(int request) -> int {
    int quote;
    quote = price(request);
    served = served + 1;
    return quote;
}

func main() -> int {
    int i; int acc;
    acc = 0;
    i = 1;
    while (i <= 60) {
        acc = (acc + serve(i * 7)) % 1000000007;
        print(serve(i));
        i = i + 1;
    }
    print(acc);
    print(served);
    return 0;
}
"""

# The patch: fee becomes 15% with a new rounding local, and a new global
# audit counter is introduced (grows .data).
V2_SOURCE = """
global int served;
global int audited;

func price(int amount) -> int {
    int fee;
    int rounded;
    fee = (amount * 15) / 100;
    rounded = fee - fee % 1;
    audited = audited + 1;
    return amount + rounded;
}

func serve(int request) -> int {
    int quote;
    quote = price(request);
    served = served + 1;
    return quote;
}

func main() -> int {
    int i; int acc;
    acc = 0;
    i = 1;
    while (i <= 60) {
        acc = (acc + serve(i * 7)) % 1000000007;
        print(serve(i));
        i = i + 1;
    }
    print(acc);
    print(served);
    return 0;
}
"""

# An incompatible update: price() gains a *call*, shifting every later
# equivalence-point id.
V3_INCOMPATIBLE = """
global int served;

func audit(int x) -> int { return x; }

func price(int amount) -> int {
    int fee;
    fee = audit(amount) / 10;
    return amount + fee;
}

func serve(int request) -> int {
    int quote;
    quote = price(request);
    served = served + 1;
    return quote;
}

func main() -> int {
    int i; int acc;
    acc = 0;
    i = 1;
    while (i <= 60) {
        acc = (acc + serve(i * 7)) % 1000000007;
        print(serve(i));
        i = i + 1;
    }
    print(acc);
    print(served);
    return 0;
}
"""


def park_mid_run(arch, program, steps=3000):
    machine = Machine(get_isa(arch), name="host")
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(program.name, arch))
    machine.step_all(steps)
    assert not process.exited
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    return machine, process, runtime


@pytest.fixture(scope="module")
def v1():
    return compile_source(V1_SOURCE, "pricing")


@pytest.fixture(scope="module")
def v2():
    return compile_source(V2_SOURCE, "pricing")


@pytest.mark.parametrize("arch", ["x86_64", "aarch64"])
def test_live_update_mid_run(v1, v2, arch):
    machine, process, runtime = park_mid_run(arch, v1)
    before = process.stdout()
    images = runtime.checkpoint()
    runtime.kill_source()

    policy = LiveUpdatePolicy(v1.binary(arch), v2.binary(arch),
                              f"/bin/pricing.{arch}.v2")
    report = ProcessRewriter().rewrite(images, policy)[0]
    machine.tmpfs.write(policy.dst_exe_path, v2.binary(arch).to_bytes())
    updated = restore_process(machine, images)
    machine.run_process(updated)
    assert updated.exit_code == 0
    # The new global grew the data segment.
    assert report.stats["data_bytes_added"] == 8

    # Output before the update follows v1 pricing; output after follows
    # v2 pricing: splice the expected stream at the update point.
    lines_before = before.count("\n")
    full_v2 = _native_output(v2, arch)
    expected = before + "".join(
        full_v2.splitlines(keepends=True)[lines_before:-2])
    got = before + updated.stdout()
    got_lines = got.splitlines()
    exp_lines = expected.splitlines()
    # Every post-update quote must match v2's formula.
    assert got_lines[lines_before:len(exp_lines)] == \
        exp_lines[lines_before:]


def _native_output(program, arch):
    machine = Machine(get_isa(arch))
    install_program(machine, program)
    process = machine.spawn_process(exe_path_for(program.name, arch))
    machine.run_process(process)
    return process.stdout()


def test_update_changes_behaviour(v1, v2):
    # Sanity: the two versions really price differently.
    assert _native_output(v1, "x86_64") != _native_output(v2, "x86_64")


def test_incompatible_update_rejected(v1):
    v3 = compile_source(V3_INCOMPATIBLE, "pricing")
    machine, _process, runtime = park_mid_run("x86_64", v1)
    images = runtime.checkpoint()
    policy = LiveUpdatePolicy(v1.binary("x86_64"), v3.binary("x86_64"),
                              "/bin/pricing.v3")
    with pytest.raises(PolicyError):
        ProcessRewriter().rewrite(images, policy)


def test_cross_isa_update_rejected(v1, v2):
    with pytest.raises(PolicyError):
        LiveUpdatePolicy(v1.binary("x86_64"), v2.binary("aarch64"),
                         "/bin/x")


def test_different_program_rejected(v1, counter_program):
    with pytest.raises(PolicyError):
        LiveUpdatePolicy(v1.binary("x86_64"),
                         counter_program.binary("x86_64"), "/bin/x")


def test_update_at_every_pause_point(v1, v2):
    """The update must be applicable at any equivalence point the
    runtime happens to park on (v2 preserves the call structure)."""
    for steps in (800, 2000, 5000, 9000):
        machine, process, runtime = park_mid_run("x86_64", v1, steps)
        images = runtime.checkpoint()
        runtime.kill_source()
        policy = LiveUpdatePolicy(v1.binary("x86_64"),
                                  v2.binary("x86_64"),
                                  "/bin/pricing.v2")
        ProcessRewriter().rewrite(images, policy)
        machine.tmpfs.write(policy.dst_exe_path,
                            v2.binary("x86_64").to_bytes())
        updated = restore_process(machine, images)
        machine.run_process(updated)
        assert updated.exit_code == 0
