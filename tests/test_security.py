"""Tests for the security evaluation: gadgets, DOP, BOPC, CVE sims."""

import pytest

from repro.apps import get_app
from repro.baselines import hcontainer_program, popcorn_program
from repro.errors import SecurityHarnessError
from repro.security import count_gadgets, gadget_reduction, run_attack_trials
from repro.security.bopc import (SplStatement, SPL_EXECVE, SPL_WRITE_MEM,
                                 build_bopc_attack, discover_blocks,
                                 nginx_payloads, synthesize)
from repro.security.cves import (build_nginx_cve_2013_2028,
                                 build_redis_cve_2015_4335)
from repro.security.dop import MIN_DOP_TARGETS, build_min_dop_attack


class TestGadgetCounting:
    def test_counts_positive(self, counter_program):
        for arch in ("x86_64", "aarch64"):
            assert count_gadgets(counter_program.binary(arch)) > 0

    def test_popcorn_inflates_attack_surface(self):
        spec = get_app("cg")
        dapper = spec.compile("small")
        popcorn = popcorn_program(spec)
        hcontainer = hcontainer_program(spec)
        for arch in ("x86_64", "aarch64"):
            d = count_gadgets(dapper.binary(arch))
            h = count_gadgets(hcontainer.binary(arch))
            p = count_gadgets(popcorn.binary(arch))
            assert d < h < p, \
                "dapper < h-container < popcorn attack surface"

    def test_reduction_in_paper_band(self):
        # Paper Fig. 11: avg 59.28 % (x86-64) and 71.91 % (aarch64).
        reductions = {"x86_64": [], "aarch64": []}
        for name in ("cg", "mg", "nginx", "redis", "dhrystone"):
            spec = get_app(name)
            dapper = spec.compile("small")
            popcorn = popcorn_program(spec)
            for arch in reductions:
                reductions[arch].append(
                    gadget_reduction(dapper.binary(arch),
                                     popcorn.binary(arch)))
        x86_avg = sum(reductions["x86_64"]) / len(reductions["x86_64"])
        arm_avg = sum(reductions["aarch64"]) / len(reductions["aarch64"])
        assert 45.0 < x86_avg < 75.0
        assert 60.0 < arm_avg < 85.0
        assert arm_avg > x86_avg, "aarch64 reduction exceeds x86-64's"

    def test_reduction_zero_for_identical(self, counter_program):
        binary = counter_program.binary("x86_64")
        assert gadget_reduction(binary, binary) == pytest.approx(0.0)


class TestMinDop:
    @pytest.fixture(scope="class")
    def attack(self):
        return build_min_dop_attack("x86_64")

    def test_unprotected_attack_succeeds(self, attack):
        outcome = attack.run_trial(shuffle_seed=None)
        assert outcome.succeeded
        assert outcome.slots_hit == len(MIN_DOP_TARGETS) == 3

    def test_paper_entropy_and_probability(self, attack):
        # The handler frame is built to carry the paper's 4 bits; the
        # analytic success probability is then 0.125³ ≈ 0.19 %.
        assert attack.entropy_bits == 4
        assert attack.expected_success_probability() == \
            pytest.approx(0.001953125)

    def test_shuffled_attacks_mitigated(self, attack):
        successes, rate = run_attack_trials(attack, trials=10)
        # 10 trials at P≈0.002: any success at all would be suspicious.
        assert successes == 0

    def test_unknown_slot_rejected(self):
        from repro.security.attacker import StackAttack
        from repro.compiler import compile_source
        from repro.security.dop import MIN_DOP_SOURCE
        program = compile_source(MIN_DOP_SOURCE, "min-dop")
        with pytest.raises(SecurityHarnessError):
            StackAttack(program, "x86_64", "handle_request", ["nonexistent"])


class TestBopc:
    @pytest.fixture(scope="class")
    def nginx_program(self):
        return get_app("nginx").compile("small")

    def test_block_discovery(self, nginx_program):
        blocks = discover_blocks(nginx_program.binary("x86_64"),
                                 "handle_dynamic")
        kinds = {b.kind for b in blocks}
        assert "write" in kinds and "read" in kinds
        slots = {b.slot_name for b in blocks}
        assert "status" in slots

    def test_synthesis_binds_blocks(self, nginx_program):
        payload = [SplStatement(SPL_WRITE_MEM, "status"),
                   SplStatement(SPL_WRITE_MEM, "body")]
        synthesized = synthesize(nginx_program.binary("x86_64"),
                                 "handle_dynamic", payload)
        assert synthesized.target_slots() == ["status", "body"]
        offsets = synthesized.learned_offsets()
        assert all(off < 0 for off in offsets.values())

    def test_execve_needs_write_and_dispatch(self, nginx_program):
        synthesized = synthesize(nginx_program.binary("x86_64"),
                                 "handle_dynamic",
                                 [SplStatement(SPL_EXECVE)])
        assert len(synthesized.bindings) == 2

    def test_unbindable_payload_rejected(self, nginx_program):
        with pytest.raises(SecurityHarnessError):
            synthesize(nginx_program.binary("x86_64"), "handle_dynamic",
                       [SplStatement(SPL_WRITE_MEM, "no_such_var")])

    def test_all_paper_payloads_synthesize(self, nginx_program):
        for name, payload in nginx_payloads().items():
            synthesized = synthesize(nginx_program.binary("x86_64"),
                                     "handle_dynamic", payload)
            assert synthesized.bindings, name

    def test_bopc_attack_end_to_end(self, nginx_program):
        attack = build_bopc_attack(
            nginx_program, "x86_64", "handle_dynamic",
            nginx_payloads()["mem_write"])
        unprotected = attack.run_trial(shuffle_seed=None)
        assert unprotected.succeeded
        successes, _rate = run_attack_trials(attack, trials=6)
        assert successes == 0


class TestCves:
    def test_redis_cve_2015_4335(self):
        attack = build_redis_cve_2015_4335("x86_64")
        assert attack.run_trial(shuffle_seed=None).succeeded
        successes, _ = run_attack_trials(attack, trials=6)
        assert successes == 0

    def test_nginx_cve_2013_2028(self):
        attack = build_nginx_cve_2013_2028("x86_64")
        assert attack.run_trial(shuffle_seed=None).succeeded
        successes, _ = run_attack_trials(attack, trials=6)
        assert successes == 0
