#!/usr/bin/env python3
"""Heterogeneous-cluster batch processing (paper §IV-A-b, Fig. 8).

Simulates the paper's testbed — an 8-core Xeon plus Raspberry Pi boards —
processing an infinite queue of NPB class-B jobs for 30 minutes. Dapper's
eviction scheduler migrates jobs to the Pis whenever the server runs out
of CPU, improving both throughput and jobs-per-kilojoule.

Per-benchmark speed ratios and migration latencies are *measured* from
real runs of the simulator (the jobs really execute, checkpoint, rewrite
and restore); only the wall-clock/power scale comes from the calibrated
node profiles.

Run:  python examples/heterogeneous_cluster.py
"""

from repro.apps import get_app
from repro.cluster import BatchExperiment, measure_job_template

BENCHMARKS = ("cg", "mg", "ep", "ft")


def main() -> None:
    print("measuring job templates (real cross-ISA migrations) ...\n")
    header = (f"{'bench':6s} {'pis':>3s} {'jobs':>6s} {'energy kJ':>10s} "
              f"{'jobs/kJ':>8s} {'thr gain':>9s} {'eff gain':>9s} "
              f"{'evictions':>9s}")
    print(header)
    print("-" * len(header))
    for name in BENCHMARKS:
        template = measure_job_template(get_app(name), "B")
        experiment = BatchExperiment(template, duration_s=1800.0)
        results = experiment.sweep([0, 1, 3])
        base = results[0]
        for pis in (0, 1, 3):
            result = results[pis]
            thr = (f"+{result.throughput_gain_over(base):.1f}%"
                   if pis else "—")
            eff = (f"+{result.efficiency_gain_over(base):.1f}%"
                   if pis else "—")
            print(f"{name:6s} {pis:3d} {result.completed:6d} "
                  f"{result.energy_kj:10.1f} {result.jobs_per_kj:8.3f} "
                  f"{thr:>9s} {eff:>9s} {result.evictions:9d}")
        print()
    print("paper's bands at 3 Pis: throughput +37–52%, "
          "energy efficiency +15–39%")


if __name__ == "__main__":
    main()
