#!/usr/bin/env python3
"""Stack shuffling as a moving-target defence (paper §IV-B).

Runs the Min-DOP attack — a data-oriented exploit that needs three stack
allocations (a privilege flag, a secret pointer, a length guard) at the
offsets it learned from the deployed binary — against:

1. an unprotected victim: the exploit lands, and
2. victims periodically re-randomized by Dapper's stack-shuffle policy:
   the allocations move, the gadget chain dereferences the wrong slots,
   and the exploit collapses to the analytic (1/2n)^k success bound.

Run:  python examples/stack_shuffle_defense.py
"""

from repro.core.entropy import possible_frames
from repro.security import run_attack_trials
from repro.security.dop import MIN_DOP_TARGETS, build_min_dop_attack

TRIALS = 12


def main() -> None:
    print("building the Min-DOP attack against the vulnerable server ...")
    attack = build_min_dop_attack("x86_64")
    print(f"  victim function : {attack.victim_func}")
    print(f"  targeted slots  : {', '.join(MIN_DOP_TARGETS)}")
    print(f"  learned offsets : {attack.learned_offsets}")
    print(f"  frame entropy   : {attack.entropy_bits} bits "
          f"({possible_frames(attack.entropy_bits)} possible frames)")

    print("\n[1] attacking an unprotected victim ...")
    outcome = attack.run_trial(shuffle_seed=None)
    print(f"  {outcome}")
    assert outcome.succeeded

    print(f"\n[2] attacking {TRIALS} freshly shuffled victims ...")
    successes, rate = run_attack_trials(attack, TRIALS)
    print(f"  successes: {successes}/{TRIALS} (empirical rate {rate:.3f})")
    print(f"  analytic bound: "
          f"{attack.expected_success_probability():.5f} "
          f"(the paper's 0.125^3 ≈ 0.19%)")
    print("\nDapper's shuffling relocates the exploit-sensitive "
          "allocations; the DOP gadget chain dispatches incorrectly.")


if __name__ == "__main__":
    main()
