#!/usr/bin/env python3
"""Quickstart: compile one program for two ISAs, run it, and migrate it
live from the x86-64 "Xeon" to the aarch64 "Raspberry Pi" mid-run.

This walks the full Dapper pipeline of the paper's Fig. 2:

    compile (one IR → two aligned binaries with stackmaps)
      → run under the Dapper runtime
      → pause at equivalence points (ptrace monitors + inline checkers)
      → CRIU checkpoint → cross-ISA rewrite → scp → restore
      → continue on the other architecture

Run:  python examples/quickstart.py
"""

from repro import Machine, MigrationPipeline, compile_source
from repro.core.migration import exe_path_for, install_program
from repro.isa import ARM_ISA, X86_ISA

SOURCE = """
global int checksum;
tls int calls;

func fib(int n) -> int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}

func record(int value) {
    calls = calls + 1;
    checksum = (checksum * 31 + value) % 1000000007;
}

func main() -> int {
    int i;
    i = 0;
    while (i < 18) {
        record(fib(i));
        print(fib(i));
        i = i + 1;
    }
    print(checksum);
    print(calls);
    return 0;
}
"""


def main() -> None:
    print("compiling one DapperC source for x86_64 and aarch64 ...")
    program = compile_source(SOURCE, "quickstart")
    for arch, binary in sorted(program.binaries.items()):
        print(f"  {arch:8s}: text={len(binary.text)}B "
              f"eqpoints={len(binary.stackmaps)} "
              f"functions={len(binary.symtab.functions())}")

    print("\nnative reference run on x86_64 ...")
    reference_machine = Machine(X86_ISA, name="ref")
    install_program(reference_machine, program)
    reference = reference_machine.spawn_process(
        exe_path_for("quickstart", "x86_64"))
    reference_machine.run_process(reference)
    print(f"  exit={reference.exit_code}, "
          f"{len(reference.stdout().splitlines())} lines of output")

    print("\nlive migration x86_64 → aarch64 mid-run ...")
    pipeline = MigrationPipeline(Machine(X86_ISA, name="xeon"),
                                 Machine(ARM_ISA, name="rpi"), program)
    result = pipeline.run_and_migrate(warmup_steps=60_000)
    print("  stage latencies:",
          {k: f"{v * 1e3:.2f}ms" for k, v in result.stage_seconds.items()})
    print("  rewrite stats:", result.stats)

    match = result.combined_output() == reference.stdout()
    print(f"\nmigrated output identical to native run: {match}")
    if not match:
        raise SystemExit("outputs diverged — this is a bug")
    print("output tail:")
    for line in result.combined_output().splitlines()[-3:]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
