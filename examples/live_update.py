#!/usr/bin/env python3
"""Live software update through Dapper's rewriter (paper §I/§III-A:
"Other possible policies can be live software updates...").

A pricing server is patched *while it runs*: Dapper parks it at an
equivalence point, checkpoints it, retargets the images onto the v2
binary (new formula, a new local, a new global — the data segment
grows), and resumes. Requests served before the update use the v1
formula; every request after it uses v2's. No request is lost.

Run:  python examples/live_update.py
"""

from repro import Machine, compile_source
from repro.core.migration import exe_path_for, install_program
from repro.core.policies.live_update import LiveUpdatePolicy
from repro.core.rewriter import ProcessRewriter
from repro.core.runtime import DapperRuntime
from repro.criu.restore import restore_process
from repro.isa import X86_ISA

V1 = """
global int served;

func price(int amount) -> int {
    int fee;
    fee = amount / 10;          // v1: 10% fee
    return amount + fee;
}

func main() -> int {
    int i;
    i = 1;
    while (i <= 40) {
        print(price(i * 100));
        served = served + 1;
        i = i + 1;
    }
    print(served);
    return 0;
}
"""

V2 = V1.replace("fee = amount / 10;          // v1: 10% fee",
                "fee = (amount * 15) / 100;  // v2: hotfixed to 15%")


def main() -> None:
    v1 = compile_source(V1, "pricing")
    v2 = compile_source(V2, "pricing")
    machine = Machine(X86_ISA, name="prod")
    install_program(machine, v1)

    process = machine.spawn_process(exe_path_for("pricing", "x86_64"))
    machine.step_all(900)       # serve a few requests under v1
    runtime = DapperRuntime(machine, process)
    runtime.pause_at_equivalence_points()
    print("served under v1 (10% fee):")
    for line in process.stdout().splitlines():
        print(f"  {line}")

    images = runtime.checkpoint()
    runtime.kill_source()
    policy = LiveUpdatePolicy(v1.binary("x86_64"), v2.binary("x86_64"),
                              "/bin/pricing.x86_64.v2")
    report = ProcessRewriter().rewrite(images, policy)[0]
    machine.tmpfs.write(policy.dst_exe_path, v2.binary("x86_64").to_bytes())
    print(f"\nlive update applied: {report.stats}")

    updated = restore_process(machine, images)
    machine.run_process(updated)
    print("\nserved under v2 (15% fee), same process state:")
    for line in updated.stdout().splitlines():
        print(f"  {line}")
    assert updated.exit_code == 0


if __name__ == "__main__":
    main()
