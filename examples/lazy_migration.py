#!/usr/bin/env python3
"""Vanilla vs post-copy (lazy) migration of a Redis-like server
(paper §III-D3 and Fig. 7).

Checkpoints the key/value server mid-stream at three in-memory database
sizes and migrates it x86-64 → aarch64 both ways: vanilla (copy every
page up front) and lazy (copy task state + stacks; serve the heap from a
page server on demand). The bigger the database, the bigger lazy's win.

Run:  python examples/lazy_migration.py
"""

from repro.compiler import compile_source
from repro.apps import get_app
from repro.core.costs import infiniband_link
from repro.core.migration import MigrationPipeline
from repro.isa import ARM_ISA, X86_ISA
from repro.vm import Machine

SIZES = (("db-small", 2.5e6), ("db-medium", 6.5e6), ("db-large", 16e6))


def main() -> None:
    link = infiniband_link()
    print(f"{'database':10s} {'mode':8s} {'ckpt':>8s} {'recode':>8s} "
          f"{'scp':>8s} {'restore':>8s} {'indirect':>9s} {'total':>9s} "
          f"{'pages served':>13s}")
    print("-" * 88)
    for size, footprint in SIZES:
        source = get_app("redis").source(size)
        program = compile_source(source, f"redis-{size}")
        for lazy in (False, True):
            pipeline = MigrationPipeline(
                Machine(X86_ISA, name="xeon"), Machine(ARM_ISA, name="rpi"),
                program, target_footprint_bytes=footprint)
            result = pipeline.run_and_migrate(warmup_steps=30_000,
                                              lazy=lazy)
            assert result.process.exit_code == 0
            stages = result.stage_seconds
            indirect = result.indirect_restore_seconds(link)
            if lazy:
                indirect *= max(1.0, footprint / 60_000)
            served = (result.page_server.pages_served
                      if result.page_server else 0)
            print(f"{size:10s} {'lazy' if lazy else 'vanilla':8s} "
                  f"{stages['checkpoint'] * 1e3:8.1f} "
                  f"{stages['recode'] * 1e3:8.1f} "
                  f"{stages['scp'] * 1e3:8.1f} "
                  f"{stages['restore'] * 1e3:8.1f} "
                  f"{indirect * 1e3:9.1f} "
                  f"{(result.total_seconds + indirect) * 1e3:9.1f} "
                  f"{served:13d}")
        print()
    print("lazy migration wins more the larger the in-memory database "
          "(the paper's Redis series in Fig. 7)")


if __name__ == "__main__":
    main()
