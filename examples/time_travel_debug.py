#!/usr/bin/env python3
"""Time-travel debugging smoke: a scripted DAP session over a recording.

The flow a human would follow when a run misbehaves, end to end and
fully scripted (this is also what the CI ``debug-smoke`` job runs):

1. record a faulty run — a helper silently corrupts a global
   ``sentinel`` mid-run — into a journal;
2. spawn ``repro-debug`` on that journal as a real subprocess and
   connect over TCP with the bundled DAP client;
3. set a source-line breakpoint, hit it, read a local variable, and
   assert the value matches the live run's arithmetic exactly;
4. step backward twice across a snapshot boundary and assert the
   instruction counter walks back exactly;
5. set a watchpoint on ``sentinel`` and reverse-continue: digest-style
   bisection over the snapshot index lands on the one corrupting
   write, with the pre-corruption value visible one step earlier.

Run:  python examples/time_travel_debug.py
"""

import os
import re
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.debug import DapClient               # noqa: E402
from repro.replay import record_run             # noqa: E402

SOURCE = """
global int sentinel;
global int acc;
func work(int i) -> int {
    acc = acc + i;
    if (i == 150) { sentinel = 666; }
    return acc;
}
func main() -> int {
    int i;
    sentinel = 12345;
    i = 0;
    while (i < 300) { work(i); i = i + 1; }
    print(sentinel);
    print(acc);
    return 0;
}
"""

WORK_LINE = 4  # a line inside work(): binds to work()'s entry


def main() -> int:
    # 1. record the faulty run
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = os.path.join(tmp, "faulty.jrn")
        recorded = record_run(SOURCE, "faulty", digest_every=8)
        recorded.journal.save(journal_path)
        print(f"recorded faulty run: exit={recorded.exit_code} "
              f"instr={recorded.recorder.instructions}")

        # 2. serve it with a real repro-debug subprocess
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.tools.debug", journal_path,
             "--snapshot-every", "16"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True,
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(
                     [os.path.join(os.path.dirname(__file__), "..",
                                   "src"),
                      os.environ.get("PYTHONPATH", "")])})
        try:
            line = server.stdout.readline()
            match = re.search(r"listening on (\S+):(\d+)", line)
            assert match, f"no listen banner, got {line!r}"
            host, port = match.group(1), int(match.group(2))
            print(f"repro-debug up at {host}:{port}")

            with DapClient(host, port) as dap:
                dap.initialize()
                dap.launch()
                bps = dap.set_breakpoints([WORK_LINE])
                assert bps[0]["verified"], bps
                dap.configuration_done()

                # 3. hit work() twice; i must match the live run (the
                # k-th call of work() runs with i == k)
                for expected in (0, 1):
                    stop = dap.continue_()
                    assert stop["body"]["reason"] == "breakpoint"
                    tid = stop["body"]["threadId"]
                    frame = dap.stack_trace(tid)[0]
                    assert frame["name"] == "work"
                    value = dap.locals_of(frame["id"])["i"]
                    assert value == str(expected), \
                        f"i == {value}, live run had {expected}"
                print("source-line breakpoint: i matches the live run")

                # 4. step backward twice across a snapshot boundary
                before = dap.time_travel()["instruction"]
                dap.step_back()
                dap.step_back()
                after = dap.time_travel()["instruction"]
                assert after == before - 2, (before, after)
                print(f"reverse step: {before} -> {after} "
                      f"(exactly -2 instructions)")

                # 5. watchpoint + reverse-continue to the corrupting
                # write, from the very end of the recording
                dap.set_breakpoints([])
                tid = dap.threads()[0]["id"]
                frame = dap.stack_trace(tid)[0]
                info = dap.data_breakpoint_info("sentinel",
                                                frame["id"])
                assert info["dataId"], info
                total = dap.time_travel()["totalInstructions"]
                dap.request("timeTravel", {"instruction": total})
                assert dap.set_data_breakpoints(
                    [info["dataId"]])[0]["verified"]
                stop = dap.reverse_continue()
                assert stop["body"]["reason"] == "data breakpoint", stop
                assert "666" in stop["body"]["text"] or \
                    "0x29a" in stop["body"]["text"], stop
                # one step earlier the sentinel is still intact
                dap.set_data_breakpoints([])
                dap.step_back()
                tid = dap.threads()[0]["id"]
                frame = dap.stack_trace(tid)[0]
                sentinel = dap.evaluate("sentinel", frame["id"])
                assert sentinel == "12345", sentinel
                print("watchpoint bisection: corrupting write found; "
                      "sentinel == 12345 one step earlier")

                dap.disconnect()
        finally:
            server.terminate()
            server.wait(timeout=30)
    print("time-travel debug smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
